"""Shared benchmark helpers.

Each benchmark file regenerates one table/figure of §5 at a reduced
scale (2 enterprises x 2 shards, short windows) so the whole directory
runs in minutes.  Every measured point is declared as a
:class:`repro.scenarios.ScenarioSpec` (via
:func:`repro.bench.runner.point_spec`) and measured through the one
generic ``run_point``.  ``python -m repro.bench --experiment <id>
--scale full`` runs the paper-scale version; EXPERIMENTS.md records
results.
"""

import os

import pytest

from repro.bench.runner import point_spec, run_point
from repro.workload.generator import WorkloadMix

#: Offered load low enough that no system saturates; latency is then
#: protocol-dominated and directly comparable.
BENCH_RATE = float(os.environ.get("QANAAT_BENCH_RATE", 4000))


def bench_spec(system: str, mix: WorkloadMix, rate: float = BENCH_RATE, **extra):
    """The benchmark directory's small-but-meaningful scenario: 2
    enterprises x 2 shards, short warmup/measure/drain windows."""
    kwargs = dict(
        enterprises=("A", "B"),
        shards=2,
        warmup=0.1,
        measure=0.25,
        drain=0.15,
    )
    kwargs.update(extra)
    return point_spec(system, rate, mix, **kwargs)


def measure(system: str, mix: WorkloadMix, rate: float = BENCH_RATE, **extra):
    return run_point(bench_spec(system, mix, rate, **extra))


@pytest.fixture
def bench_point(benchmark):
    """Run one measurement point under pytest-benchmark and report it."""

    def _run(system: str, mix: WorkloadMix, rate: float = BENCH_RATE, **extra):
        result = benchmark.pedantic(
            measure,
            args=(system, mix),
            kwargs=dict(rate=rate, **extra),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["system"] = system
        benchmark.extra_info["offered_tps"] = result.offered_tps
        benchmark.extra_info["throughput_tps"] = round(result.throughput_tps)
        benchmark.extra_info["latency_ms"] = round(result.mean_latency_ms, 2)
        print("\n      " + result.row())
        return result

    return _run
