"""Shared benchmark helpers.

Each benchmark file regenerates one table/figure of §5 at a reduced
scale (2 enterprises x 2 shards, short windows) so the whole directory
runs in minutes.  ``python -m repro.bench --experiment <id> --scale
full`` runs the paper-scale version; EXPERIMENTS.md records results.
"""

import os

import pytest

from repro.bench.runner import run_point
from repro.workload.generator import WorkloadMix

#: Small-but-meaningful measurement settings for pytest-benchmark runs.
BENCH_KWARGS = dict(
    enterprises=("A", "B"),
    shards=2,
    warmup=0.1,
    measure=0.25,
    drain=0.15,
)

#: Offered load low enough that no system saturates; latency is then
#: protocol-dominated and directly comparable.
BENCH_RATE = float(os.environ.get("QANAAT_BENCH_RATE", 4000))


def measure(system: str, mix: WorkloadMix, rate: float = BENCH_RATE, **extra):
    kwargs = dict(BENCH_KWARGS)
    kwargs.update(extra)
    return run_point(system, rate, mix, **kwargs)


@pytest.fixture
def bench_point(benchmark):
    """Run one measurement point under pytest-benchmark and report it."""

    def _run(system: str, mix: WorkloadMix, rate: float = BENCH_RATE, **extra):
        result = benchmark.pedantic(
            measure,
            args=(system, mix),
            kwargs=dict(rate=rate, **extra),
            rounds=1,
            iterations=1,
        )
        benchmark.extra_info["system"] = system
        benchmark.extra_info["offered_tps"] = result.offered_tps
        benchmark.extra_info["throughput_tps"] = round(result.throughput_tps)
        benchmark.extra_info["latency_ms"] = round(result.mean_latency_ms, 2)
        print("\n      " + result.row())
        return result

    return _run
