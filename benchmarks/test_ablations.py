"""Ablation benches for the design choices DESIGN.md calls out."""

import pytest

from repro.bench.experiments import ablation_gamma
from repro.workload.generator import WorkloadMix

MIX = WorkloadMix(cross=0.10, cross_type="isce")


@pytest.mark.parametrize("batch_size", [1, 16, 64])
def test_ablation_batching(bench_point, batch_size):
    """Batching is where intra-cluster throughput comes from."""
    bench_point("Flt-C", MIX, rate=2000, batch_size=batch_size)


def test_ablation_gamma_reduction(benchmark):
    """γ transitive reduction shrinks IDs without changing semantics."""
    sizes = benchmark.pedantic(ablation_gamma, rounds=1, iterations=1)
    assert sizes["reduced"] < sizes["full"]


@pytest.mark.parametrize("system", ["Flt-B", "Flt-B(PF)"])
def test_ablation_firewall_overhead(bench_point, system):
    """Fig 4 configurations: firewall vs combined Byzantine cluster."""
    bench_point(system, MIX, rate=3000)


@pytest.mark.parametrize("system", ["Fig4a", "Fig4b", "Fig4c", "Fig4d"])
def test_ablation_fig4_infrastructure(bench_point, system):
    """The Figure 4 ladder: every step of trust reduction has a price."""
    bench_point(system, MIX, rate=2000)


@pytest.mark.parametrize("interval", [0, 16, 256])
def test_ablation_checkpoint_interval(bench_point, interval):
    """Checkpoint votes ride the consensus CPU/network: tight intervals
    cost throughput; 0 disables checkpointing (unbounded log)."""
    bench_point("Flt-C", MIX, rate=2000, checkpoint_interval=interval)
