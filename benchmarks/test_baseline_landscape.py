"""Related-work landscape (§6): Caper and SharPer/AHL vs Qanaat.

Two comparable slices, scoped exactly as §5 scopes them:

- Caper has no subset collections: every confidential pair
  collaboration is promoted to its global chain across ALL enterprises
  — expect its throughput to fall behind Qanaat as the subset share
  grows, and its confidentiality surface to include uninvolved
  enterprises (asserted in tests/test_baselines_related.py).
- SharPer and AHL are single-enterprise sharded systems; they are only
  comparable on cross-shard intra-enterprise workloads, where Qanaat's
  csie protocols are their direct descendants.
"""

import pytest

from repro.workload.generator import WorkloadMix


@pytest.mark.parametrize("system", ["Flt-B", "Caper"])
@pytest.mark.parametrize("pct", [10, 50])
def test_subset_collaborations(bench_point, system, pct):
    bench_point(system, WorkloadMix(cross=pct / 100.0, cross_type="isce"))


@pytest.mark.parametrize("system", ["Flt-B", "Crd-B", "SharPer", "AHL"])
def test_cross_shard_single_enterprise(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.10, cross_type="csie"))
