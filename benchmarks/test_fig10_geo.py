"""Figure 10: scalability across spatial domains.

Clusters are spread over the paper's four AWS regions (TY/SU/VA/CA RTT
matrix, §5.4).  Expected shape: WAN round-trips dominate latency; the
flattened protocols suffer most for cross-enterprise traffic; the
privacy-firewall overhead shrinks relative to WAN latency.
"""

import pytest

from repro.bench.experiments import SCALES, _wan_latency
from repro.workload.generator import WorkloadMix

SYSTEMS = ["Flt-C", "Crd-C", "Flt-B", "Crd-B", "Crd-B(PF)"]


def _latency():
    return _wan_latency(SCALES["fast"])


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig10a_isce_wan(bench_point, system):
    bench_point(
        system,
        WorkloadMix(cross=0.10, cross_type="isce"),
        latency=_latency(),
    )


@pytest.mark.parametrize("system", ["Flt-C", "Crd-B"])
def test_fig10b_csie_wan(bench_point, system):
    bench_point(
        system,
        WorkloadMix(cross=0.10, cross_type="csie"),
        latency=_latency(),
    )


@pytest.mark.parametrize("system", ["Crd-B", "Flt-B"])
def test_fig10c_csce_wan(bench_point, system):
    bench_point(
        system,
        WorkloadMix(cross=0.10, cross_type="csce"),
        latency=_latency(),
    )
