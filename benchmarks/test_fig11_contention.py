"""Figure 11: performance under Zipfian contention.

Expected shape (paper, §5.7): Qanaat is nearly flat under skew
(order-then-execute, sequential execution); Fabric and FastFabric
collapse (~90% throughput loss at s=2) to MVCC invalidation; Fabric++
loses much less thanks to reordering and early abort.
"""

import pytest

from repro.workload.generator import WorkloadMix

QANAAT = ["Flt-C", "Crd-B"]
FABRICS = ["Fabric", "Fabric++", "FastFabric"]


def _mix(skew):
    return WorkloadMix(
        cross=0.10, cross_type="isce", zipf_s=skew, accounts_per_shard=500
    )


@pytest.mark.parametrize("system", QANAAT + FABRICS)
@pytest.mark.parametrize("skew", [0.0, 1.0, 2.0])
def test_fig11(bench_point, system, skew):
    bench_point(system, _mix(skew), rate=3000)


def test_fig11_shape_fabric_collapses_qanaat_does_not():
    """The headline claim: skew breaks Fabric, not Qanaat."""
    from benchmarks.conftest import measure

    qanaat_flat = measure("Flt-C", _mix(0.0), rate=3000)
    qanaat_skew = measure("Flt-C", _mix(2.0), rate=3000)
    fabric_flat = measure("Fabric", _mix(0.0), rate=3000)
    fabric_skew = measure("Fabric", _mix(2.0), rate=3000)
    assert qanaat_skew.throughput_tps > 0.8 * qanaat_flat.throughput_tps
    assert fabric_skew.throughput_tps < 0.6 * fabric_flat.throughput_tps
