"""Figure 7: workloads with intra-shard cross-enterprise transactions.

Expected shape (paper, §5.1): Qanaat crash protocols fastest; Fabric an
order of magnitude slower than Flt-C; FastFabric in between; the
privacy firewall costs a few percent of throughput and a latency
constant; higher cross-enterprise percentages hurt everyone, flattened
latency degrading fastest.
"""

import pytest

from repro.workload.generator import WorkloadMix

SYSTEMS = ["Flt-C", "Crd-C", "Flt-B", "Crd-B", "Flt-B(PF)", "Crd-B(PF)",
           "Fabric", "Fabric++", "FastFabric"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig7a_10pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.10, cross_type="isce"))


@pytest.mark.parametrize("system", ["Flt-C", "Flt-B", "Crd-B", "Fabric"])
def test_fig7b_50pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.50, cross_type="isce"))


@pytest.mark.parametrize("system", ["Flt-C", "Flt-B", "Crd-B"])
def test_fig7c_90pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.90, cross_type="isce"), rate=2500)
