"""Figure 8: workloads with cross-shard intra-enterprise transactions.

Expected shape (paper, §5.2): Flt-C (the CFT fast path applies inside
one enterprise) has the best performance in all three workloads;
Flt-B overtakes Crd-B as the cross-shard percentage grows.
"""

import pytest

from repro.workload.generator import WorkloadMix

SYSTEMS = ["Flt-C", "Crd-C", "Flt-B", "Crd-B", "Flt-B(PF)", "Crd-B(PF)"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig8a_10pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.10, cross_type="csie"))


@pytest.mark.parametrize("system", ["Flt-C", "Flt-B", "Crd-B"])
def test_fig8b_50pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.50, cross_type="csie"))


@pytest.mark.parametrize("system", ["Flt-C", "Flt-B", "Crd-B"])
def test_fig8c_90pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.90, cross_type="csie"), rate=2500)
