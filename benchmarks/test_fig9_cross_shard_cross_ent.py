"""Figure 9: workloads with cross-shard cross-enterprise transactions.

Expected shape (paper, §5.3): the coordinator-based protocols win —
the flattened all-to-all phases across many clusters of many
enterprises blow up latency; Flt-C is not much better than Flt-B
because cross-enterprise agreement is BFT regardless.
"""

import pytest

from repro.workload.generator import WorkloadMix

SYSTEMS = ["Crd-C", "Crd-B", "Flt-C", "Flt-B", "Crd-B(PF)"]


@pytest.mark.parametrize("system", SYSTEMS)
def test_fig9a_10pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.10, cross_type="csce"))


@pytest.mark.parametrize("system", ["Crd-B", "Flt-B"])
def test_fig9b_50pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.50, cross_type="csce"), rate=3000)


@pytest.mark.parametrize("system", ["Crd-B", "Flt-B"])
def test_fig9c_90pct(bench_point, system):
    bench_point(system, WorkloadMix(cross=0.90, cross_type="csce"), rate=1500)
