"""Table 2: performance with a varying number of enterprises.

Expected shape (paper, §5.5): throughput grows almost linearly with
the number of enterprises (90% of traffic is internal and clusters
work in parallel); latency stays nearly flat.
"""

import pytest

from repro.workload.generator import WorkloadMix

MIX = WorkloadMix(cross=0.10, cross_type="isce")


@pytest.mark.parametrize("system", ["Flt-C", "Crd-C", "Flt-B", "Crd-B"])
@pytest.mark.parametrize("count", [2, 4])
def test_table2(bench_point, system, count):
    enterprises = tuple("ABCDEFGH"[:count])
    result = bench_point(
        system,
        MIX,
        rate=2000.0 * count,
        enterprises=enterprises,
    )
    # Near-linear scaling: the offered load scales with the enterprise
    # count and the system must keep up (not saturate).
    assert result.throughput_tps > 0.85 * result.offered_tps
