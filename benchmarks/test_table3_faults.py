"""Table 3: performance with faulty nodes.

Expected shape (paper, §5.6): quorums survive f=1 failures, so one
crashed backup (plus one execution node and one filter under the
privacy firewall) costs only modest throughput/latency.
"""

import pytest

from repro.workload.generator import WorkloadMix

MIX = WorkloadMix(cross=0.10, cross_type="isce")
SYSTEMS = ["Flt-C", "Crd-B", "Flt-B", "Crd-B(PF)", "Fabric"]


@pytest.mark.parametrize("system", SYSTEMS)
@pytest.mark.parametrize("failures", [0, 1])
def test_table3(bench_point, system, failures):
    result = bench_point(system, MIX, rate=3000, crash_nodes=failures)
    # A single tolerated failure must not stall the system.
    assert result.throughput_tps > 0.6 * result.offered_tps
