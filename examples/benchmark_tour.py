"""A guided tour of the benchmark harness (the evaluation of §5).

Runs one small latency-vs-throughput comparison — Qanaat's crash
flattened protocol vs Hyperledger Fabric — and one contention
comparison, printing paper-style rows.  Takes about a minute; the full
experiments live behind ``python -m repro.bench`` (``--list`` shows
them all).

Every system label resolves to a :class:`repro.api.SystemDriver`
implementation behind the one generic ``run_point`` — Qanaat
protocols, the Fabric family, Caper, and SharPer/AHL all measure
through the same loop.  Each measured point is described by a
declarative :class:`repro.scenarios.ScenarioSpec`; ``point_spec``
folds the classic (system, rate, mix) surface into one.

    python examples/benchmark_tour.py
"""

from repro.bench.runner import point_spec, run_point
from repro.workload.generator import WorkloadMix

FAST = dict(enterprises=("A", "B"), shards=2, warmup=0.1, measure=0.3, drain=0.1)


def main() -> None:
    mix = WorkloadMix(cross=0.10, cross_type="isce")
    print("== load curve: Flt-C vs Fabric (10% cross-enterprise) ==")
    for rate in (2_000, 6_000, 12_000):
        for system in ("Flt-C", "Fabric"):
            spec = point_spec(system, rate, mix, **FAST)
            print("  " + run_point(spec).row())

    print("\n== contention: uniform vs zipf s=2 (Fig 11's mechanism) ==")
    for skew in (0.0, 2.0):
        skewed = WorkloadMix(
            cross=0.10, cross_type="isce", zipf_s=skew, accounts_per_shard=500
        )
        for system in ("Flt-C", "Fabric", "Fabric++"):
            point = run_point(point_spec(system, 3_000, skewed, **FAST))
            print(f"  s={skew}  " + point.row())
    print(
        "\nQanaat orders-then-executes, so skew barely matters; Fabric's"
        "\nMVCC validation invalidates conflicting transactions, and"
        "\nFabric++ claws part of that back by reordering/early abort."
    )


if __name__ == "__main__":
    main()
