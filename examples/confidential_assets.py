"""Confidential assets: the §3.2 privacy-preserving verification extension.

Enterprise A mints coins on its private collection d_A, deposits one
into the shared collection d_AB with Pedersen-commitment proofs, and
pays enterprise B confidentially.  B's execution nodes verify coin
existence, well-formedness (range proofs), and conservation — without
ever learning any amount.

    python examples/confidential_assets.py
"""

from repro.core import Deployment, DeploymentConfig
from repro.core.assets import AssetWallet
from repro.datamodel import Operation


def run(deployment, client, scope, operation, key):
    tx = client.make_transaction(scope, operation, keys=(key,))
    rid = client.submit(tx)
    deployment.run(2.0)
    results = {c[0]: c[2] for c in client.completed}
    return results.get(rid)


def main() -> None:
    config = DeploymentConfig(
        enterprises=("A", "B"),
        failure_model="crash",
        batch_size=2,
        batch_wait=0.001,
    )
    deployment = Deployment(config)
    deployment.create_workflow("payments", ("A", "B"), contract="assets")
    alice = deployment.create_client("A")
    bob = deployment.create_client("B")
    wallet = AssetWallet("A", seed=42)

    # 1. Mint on d_A: the plaintext amount exists only on A's executors.
    print("mint 500 on d_A:", run(
        deployment, alice, {"A"}, wallet.mint_op("coin-1", 500), "coin-1"
    ))

    # 2. Deposit into d_AB: commitment + opening proof + range proof.
    #    B's replicas verify all three during execution (§3.2: "verify
    #    the existence of the coins ... without reading the records").
    print("deposit into d_AB:", run(
        deployment, alice, {"A", "B"}, wallet.deposit_op("coin-1"), "coin-1"
    ))

    # 3. B checks existence: gets the commitment, never the amount.
    print("B existence check:", run(
        deployment, bob, {"A", "B"},
        Operation("assets", "exists", ("coin-1",)), "coin-1",
    ))

    # 4. Confidential payment: 180 to B, 320 change back to A.  The
    #    outputs balance homomorphically and each carries a range proof
    #    so no negative change can hide an overdraw.
    transfer = wallet.transfer_op(
        ("coin-1",), (("pay-b", 180, "B"), ("change-a", 320, "A"))
    )
    print("confidential transfer:", run(
        deployment, alice, {"A", "B"}, transfer, "coin-1"
    ))

    # 5. A shares the opening with B out of band; B settles by opening
    #    the commitment on-chain.
    bob_wallet = AssetWallet("B", seed=43)
    bob_wallet.track("pay-b", *wallet.coins["pay-b"])
    print("B reveals its coin:", run(
        deployment, bob, {"A", "B"}, bob_wallet.reveal_op("pay-b"), "coin-1"
    ))

    # What each side's storage actually holds:
    exec_b = deployment.executors_of("B1")[0]
    print("d_AB coin record on B:", exec_b.store.read("AB", "coin:change-a"))
    print("d_A mint record on B:", exec_b.store.read("A", "coin:coin-1"),
          "(d_A is never replicated to B)")


if __name__ == "__main__":
    main()
