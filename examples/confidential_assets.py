"""Confidential assets: the §3.2 privacy-preserving verification extension.

Enterprise A mints coins on its private collection d_A, deposits one
into the shared collection d_AB with Pedersen-commitment proofs, and
pays enterprise B confidentially.  B's execution nodes verify coin
existence, well-formedness (range proofs), and conservation — without
ever learning any amount.

    python examples/confidential_assets.py
"""

from repro.api import Network
from repro.core.assets import AssetWallet
from repro.scenarios import example_scenario


def main() -> None:
    with Network.from_scenario(example_scenario("confidential-assets")) as net:
        net.workflow("payments", ("A", "B"), contract="assets")
        alice = net.session("A", contract="assets")
        bob = net.session("B", contract="assets")
        wallet = AssetWallet("A", seed=42)

        # 1. Mint on d_A: the plaintext amount exists only on A's executors.
        print("mint 500 on d_A:", alice.submit(
            {"A"}, wallet.mint_op("coin-1", 500), keys=("coin-1",)).value())

        # 2. Deposit into d_AB: commitment + opening proof + range proof.
        #    B's replicas verify all three during execution (§3.2: "verify
        #    the existence of the coins ... without reading the records").
        print("deposit into d_AB:", alice.submit(
            {"A", "B"}, wallet.deposit_op("coin-1"), keys=("coin-1",)).value())

        # 3. B checks existence: gets the commitment, never the amount.
        print("B existence check:", bob.invoke(
            {"A", "B"}, "assets", "exists", "coin-1", keys=("coin-1",)).value())

        # 4. Confidential payment: 180 to B, 320 change back to A.  The
        #    outputs balance homomorphically and each carries a range proof
        #    so no negative change can hide an overdraw.
        transfer = wallet.transfer_op(
            ("coin-1",), (("pay-b", 180, "B"), ("change-a", 320, "A"))
        )
        print("confidential transfer:", alice.submit(
            {"A", "B"}, transfer, keys=("coin-1",)).value())

        # 5. A shares the opening with B out of band; B settles by opening
        #    the commitment on-chain.
        bob_wallet = AssetWallet("B", seed=43)
        bob_wallet.track("pay-b", *wallet.coins["pay-b"])
        print("B reveals its coin:", bob.submit(
            {"A", "B"}, bob_wallet.reveal_op("pay-b"), keys=("coin-1",)).value())

        # What each side's storage actually holds:
        net.settle()
        print("d_AB coin record on B:", bob.read({"A", "B"}, "coin:change-a"))
        print("d_A mint record on B:", bob.read({"A"}, "coin:coin-1"),
              "(d_A is never replicated to B)")


if __name__ == "__main__":
    main()
