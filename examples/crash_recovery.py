"""Crash recovery: durable storage rebuilds a dead replica from disk.

Runs a two-enterprise network on the WAL storage backend with
checkpointing enabled, kills a backup replica, and rebuilds its
execution state purely from the write-ahead log and snapshots — no
re-consensus, and the recovered state digest matches the pre-crash
one bit for bit.

    python examples/crash_recovery.py
"""

import shutil
import tempfile

from repro.api import Network, wait_all
from repro.core.executor import ExecutionUnit
from repro.scenarios import example_scenario
from repro.storage import make_backend


def main() -> None:
    # The registry's WAL-backed topology; the on-disk root is a
    # runtime value, so it rides in as a config override.
    storage_dir = tempfile.mkdtemp(prefix="qanaat-example-")
    net = Network.from_scenario(
        example_scenario("crash-recovery"), storage_dir=storage_dir
    )
    net.workflow("durable", ("A", "B"))
    session = net.session("A")

    # 1. Commit some traffic so checkpoints move the durability frontier.
    handles = [session.put({"A"}, f"key-{i}", i) for i in range(30)]
    wait_all(handles)
    net.settle(2.0)  # let checkpoint votes stabilize the frontier

    deployment = net.deployment
    victim_id = net.cluster_members("A1")[-1]
    victim = deployment.nodes[victim_id]
    pre_digest = victim.executor.state_digest("A", 0)
    height = victim.executor.ledger.height("A", 0)
    stable = victim.checkpoints.stable_seq("A", 0)
    print(f"replica {victim_id}: chain height {height}, "
          f"stable checkpoint at {stable}")
    print(f"pre-crash state digest:  {pre_digest}")

    # 2. "Crash": drop every in-memory structure, keep only the disk.
    net.close()
    del victim

    # 3. Rebuild from the write-ahead log + snapshots.
    recovered, stats = ExecutionUnit.recover(
        victim_id,
        deployment.collections,
        deployment.contracts,
        deployment.schema,
        shard=0,
        backend=make_backend("wal", storage_dir, victim_id),
    )
    post_digest = recovered.state_digest("A", 0)
    print(f"post-recovery digest:    {post_digest}")
    print(f"replayed {stats.records_replayed} records across "
          f"{stats.namespaces} namespace(s), "
          f"{stats.snapshots_loaded} snapshot(s) loaded")
    assert post_digest == pre_digest, "recovery must be exact"
    assert recovered.executed_count == 0, "no re-execution, no re-consensus"
    print("recovered state matches the crashed replica exactly")
    recovered.backend.close()
    shutil.rmtree(storage_dir, ignore_errors=True)


if __name__ == "__main__":
    main()
