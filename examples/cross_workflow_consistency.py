"""Cross-workflow consistency (§3.2, Figure 2c / requirement R2).

A supplier (L) provisions materials for two vaccine programs — the
K/L/M workflow ("pfizer") and the L/M/N workflow ("moderna").  Because
Qanaat creates ONE collection per scope, the supplier's local
collection d_L and the shared collection d_LM are the same datastore
in both workflows: orders from either program update one inventory.

    python examples/cross_workflow_consistency.py
"""

from repro.core import Deployment, DeploymentConfig
from repro.datamodel import Operation


def main() -> None:
    config = DeploymentConfig(
        enterprises=("K", "L", "M", "N"),
        shards_per_enterprise=1,
        failure_model="crash",
        batch_size=4,
        batch_wait=0.001,
    )
    deployment = Deployment(config)
    pfizer = deployment.create_workflow("pfizer", ("K", "L", "M"))
    moderna = deployment.create_workflow("moderna", ("L", "M", "N"))
    d_lm_1 = pfizer.create_private_collaboration({"L", "M"})
    d_lm_2 = moderna.create_private_collaboration({"L", "M"})
    print("d_LM shared across workflows:", d_lm_1 is d_lm_2)

    client_k = deployment.create_client("K")
    client_n = deployment.create_client("N")
    client_l = deployment.create_client("L")

    # Each program books materials against the SAME d_LM collection.
    for client, qty in ((client_k, 300), (client_n, 450)):
        tx = client.make_transaction(
            {"L", "M"},
            Operation("kv", "incr", ("lipids-demand", qty)),
            keys=("lipids-demand",),
        )
        client.submit(tx)
        deployment.run(2.0)

    # The supplier provisions based on the total demand across BOTH
    # workflows — the consistency the paper's example requires.
    tx = client_l.make_transaction(
        {"L"},
        Operation("kv", "copy_from", ("lipids-demand", "LM")),
        keys=("lipids-demand",),
    )
    client_l.submit(tx)
    deployment.run(2.0)

    exec_l = deployment.executors_of("L1")[0]
    total = exec_l.store.read("LM", "lipids-demand")
    provisioned = exec_l.store.read("L", "lipids-demand")
    print(f"demand booked on d_LM: {total} (300 from pfizer + 450 from moderna)")
    print(f"supplier provisioned on d_L: {provisioned}")
    assert total == provisioned == 750


if __name__ == "__main__":
    main()
