"""Cross-workflow consistency (§3.2, Figure 2c / requirement R2).

A supplier (L) provisions materials for two vaccine programs — the
K/L/M workflow ("pfizer") and the L/M/N workflow ("moderna").  Because
Qanaat creates ONE collection per scope, the supplier's local
collection d_L and the shared collection d_LM are the same datastore
in both workflows: orders from either program update one inventory.

    python examples/cross_workflow_consistency.py
"""

from repro.api import Network
from repro.scenarios import example_scenario


def main() -> None:
    spec = example_scenario("cross-workflow-consistency")
    with Network.from_scenario(spec) as net:
        pfizer = net.workflow("pfizer", ("K", "L", "M"))
        moderna = net.workflow("moderna", ("L", "M", "N"))
        d_lm_1 = pfizer.create_private_collaboration({"L", "M"})
        d_lm_2 = moderna.create_private_collaboration({"L", "M"})
        print("d_LM shared across workflows:", d_lm_1 is d_lm_2)

        session_k = net.session("K")
        session_n = net.session("N")
        session_l = net.session("L")

        # Each program books materials against the SAME d_LM collection.
        for session, qty in ((session_k, 300), (session_n, 450)):
            session.invoke(
                {"L", "M"}, "kv", "incr", "lipids-demand", qty,
                keys=("lipids-demand",),
            ).result()

        # The supplier provisions based on the total demand across BOTH
        # workflows — the consistency the paper's example requires.
        session_l.invoke(
            {"L"}, "kv", "copy_from", "lipids-demand", "LM",
            keys=("lipids-demand",),
        ).result()
        net.settle()

        total = session_l.read({"L", "M"}, "lipids-demand")
        provisioned = session_l.read({"L"}, "lipids-demand")
        print(f"demand booked on d_LM: {total} "
              "(300 from pfizer + 450 from moderna)")
        print(f"supplier provisioned on d_L: {provisioned}")
        assert total == provisioned == 750


if __name__ == "__main__":
    main()
