"""Multi-platform crowdworking (§1, the SEPAR setting).

Three platforms share a cross-platform task board (root collection)
with a global fair-work cap, keep their matching engines private
(local collections), and settle bilateral relay agreements on
intermediate collections — confidential from the third platform.

The global cap is the cross-workflow consistency showcase (R2): a
worker splitting work across platforms hits ONE counter, because every
scope maps to exactly one collection.

    python examples/crowdworking_platform.py
"""

from repro.api import Network
from repro.apps.crowdwork import WORK_CAP, build_crowdwork_network
from repro.scenarios import example_scenario


def main() -> None:
    spec = example_scenario("crowdworking-platform")
    platforms = spec.topology.enterprises
    with Network.from_scenario(spec) as net:
        scopes = build_crowdwork_network(net, platforms)
        x = net.session("X", contract="crowdwork")
        y = net.session("Y", contract="crowdwork")
        z = net.session("Z", contract="crowdwork")

        # A worker registers once, globally.
        print("register:", x.invoke(
            scopes["board"], None, "register_worker", "w-1",
            keys=("worker:w-1",)).value())

        # Platforms post tasks to the shared board.
        for i in range(WORK_CAP + 1):
            session = x if i % 2 == 0 else y
            session.invoke(
                scopes["board"], None, "post_task", f"t-{i}", f"req-{i}",
                "annotate", 10, keys=(f"task:t-{i}",),
            ).result()

        # The worker claims through BOTH platforms; the cap binds globally.
        for i in range(WORK_CAP + 1):
            session = x if i % 2 == 0 else y
            result = session.invoke(
                scopes["board"], None, "claim_task", f"t-{i}", "w-1",
                keys=(f"task:t-{i}",),
            ).value()
            print(f"claim t-{i} via {'X' if session is x else 'Y'}: {result}")

        # Platform X's confidential matching engine reads the public board
        # (the §3.2 read rule) but never leaves d_X.
        print("internal match:", x.invoke(
            frozenset({"X"}), None, "match_internally", "t-0", "w-1", 2,
            keys=("match:t-0",)).value())

        # X and Y settle a relayed task under their bilateral agreement —
        # Z cannot see it.
        scope_xy = scopes["pairs"][("X", "Y")]
        print("agreement:", x.invoke(
            scope_xy, None, "agree_revenue_share", "a-1", 0.3,
            keys=("agreement:a-1",)).value())
        print("settlement share:", x.invoke(
            scope_xy, None, "settle_relay", "a-1", "t-1", 100,
            keys=("agreement:a-1",)).value())

        net.settle()
        print("\nZ sees the board:        ",
              z.read(scopes["board"], "task:t-0") is not None)
        print("Z sees the XY agreement: ", z.sees(scope_xy))
        worker = z.read(scopes["board"], "worker:w-1")
        print(f"global tasks taken by w-1: {worker['tasks_taken']} "
              f"(cap {WORK_CAP})")


if __name__ == "__main__":
    main()
