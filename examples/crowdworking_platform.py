"""Multi-platform crowdworking (§1, the SEPAR setting).

Three platforms share a cross-platform task board (root collection)
with a global fair-work cap, keep their matching engines private
(local collections), and settle bilateral relay agreements on
intermediate collections — confidential from the third platform.

The global cap is the cross-workflow consistency showcase (R2): a
worker splitting work across platforms hits ONE counter, because every
scope maps to exactly one collection.

    python examples/crowdworking_platform.py
"""

from repro.apps.crowdwork import WORK_CAP, build_crowdwork_network
from repro.core import Deployment, DeploymentConfig
from repro.datamodel import Operation


def run_op(deployment, client, scope, name, args, key):
    op = Operation("crowdwork", name, args)
    tx = client.make_transaction(scope, op, keys=(key,))
    rid = client.submit(tx)
    deployment.run(1.5)
    return {c[0]: c[2] for c in client.completed}.get(rid)


def main() -> None:
    platforms = ("X", "Y", "Z")
    config = DeploymentConfig(
        enterprises=platforms,
        failure_model="crash",
        batch_size=2,
        batch_wait=0.001,
    )
    deployment = Deployment(config)
    scopes = build_crowdwork_network(deployment, platforms)
    x = deployment.create_client("X")
    y = deployment.create_client("Y")

    # A worker registers once, globally.
    print("register:", run_op(deployment, x, scopes["board"],
                              "register_worker", ("w-1",), "worker:w-1"))

    # Platforms post tasks to the shared board.
    for i in range(WORK_CAP + 1):
        client = x if i % 2 == 0 else y
        run_op(deployment, client, scopes["board"],
               "post_task", (f"t-{i}", f"req-{i}", "annotate", 10), f"task:t-{i}")

    # The worker claims through BOTH platforms; the cap binds globally.
    for i in range(WORK_CAP + 1):
        client = x if i % 2 == 0 else y
        result = run_op(deployment, client, scopes["board"],
                        "claim_task", (f"t-{i}", "w-1"), f"task:t-{i}")
        print(f"claim t-{i} via {'X' if client is x else 'Y'}: {result}")

    # Platform X's confidential matching engine reads the public board
    # (the §3.2 read rule) but never leaves d_X.
    print("internal match:", run_op(deployment, x, frozenset({"X"}),
                                    "match_internally", ("t-0", "w-1", 2),
                                    "match:t-0"))

    # X and Y settle a relayed task under their bilateral agreement —
    # Z cannot see it.
    scope_xy = scopes["pairs"][("X", "Y")]
    print("agreement:", run_op(deployment, x, scope_xy,
                               "agree_revenue_share", ("a-1", 0.3),
                               "agreement:a-1"))
    print("settlement share:", run_op(deployment, x, scope_xy,
                                      "settle_relay", ("a-1", "t-1", 100),
                                      "agreement:a-1"))

    exec_z = deployment.executors_of("Z1")[0]
    print("\nZ sees the board:        ",
          exec_z.store.read("XYZ", "task:t-0") is not None)
    print("Z sees the XY agreement: ",
          ("XY", 0) in exec_z.store.namespaces())
    worker = exec_z.store.read("XYZ", "worker:w-1")
    print(f"global tasks taken by w-1: {worker['tasks_taken']} "
          f"(cap {WORK_CAP})")


if __name__ == "__main__":
    main()
