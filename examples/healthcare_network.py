"""Healthcare collaboration: hospital, insurer, pharmacy (§1).

Runs a patient journey across the collection lattice: clinical records
stay on the hospital (d_H), the insurance claim lives on d_{H,I}
(invisible to the pharmacy), the prescription on d_{H,P} (invisible to
the insurer), and the public vaccination attestation on the root —
verifiable by everyone, which is the paper's anti-fraud requirement.

    python examples/healthcare_network.py
"""

from repro.api import Network
from repro.apps.healthcare import build_healthcare_network
from repro.scenarios import example_scenario


def main() -> None:
    # Hospital, Insurer, Pharmacy on full BFT clusters.
    with Network.from_scenario(example_scenario("healthcare-network")) as net:
        scopes = build_healthcare_network(net)
        hospital = net.session("H", contract="healthcare")
        insurer = net.session("I", contract="healthcare")
        pharmacy = net.session("P", contract="healthcare")

        # Clinical care happens on the hospital's private collection d_H.
        print("admit:", hospital.invoke(
            scopes["clinical"], None, "admit_patient", "alice", "influenza",
            keys=("chart:alice",)).value())
        print("treat:", hospital.invoke(
            scopes["clinical"], None, "record_treatment", "alice",
            "antiviral", 120, keys=("chart:alice",)).value())

        # Public attestation on the root collection d_{HIP}.
        print("attest:", hospital.invoke(
            scopes["registry"], None, "attest_vaccination", "at-1", "alice",
            "flu-24", keys=("attest:at-1",)).value())

        # Confidential claim on d_{H,I}; validated against the attestation
        # through the §3.2 read rule (d_HI is order-dependent on the root).
        print("claim:", hospital.invoke(
            scopes["claims"], None, "file_claim", "cl-1", "alice", 120,
            "at-1", keys=("claim:cl-1",)).value())
        print("adjudicate:", insurer.invoke(
            scopes["claims"], None, "adjudicate_claim", "cl-1", 120,
            keys=("claim:cl-1",)).value())

        # Confidential prescription on d_{H,P}.
        print("prescribe:", hospital.invoke(
            scopes["prescriptions"], None, "prescribe", "rx-1", "alice",
            "oseltamivir", "2/day", keys=("rx:rx-1",)).value())
        print("dispense:", pharmacy.invoke(
            scopes["prescriptions"], None, "dispense", "rx-1",
            keys=("rx:rx-1",)).value())

        # Who sees what:
        net.settle()
        print("\ninsurer sees claim:      ",
              insurer.read(scopes["claims"], "claim:cl-1")["status"])
        print("insurer sees rx records: ", insurer.sees(scopes["prescriptions"]))
        print("pharmacy sees claims:    ", pharmacy.sees(scopes["claims"]))
        print("pharmacy sees attestation:",
              pharmacy.read(scopes["registry"], "attest:at-1")["verified"])


if __name__ == "__main__":
    main()
