"""Healthcare collaboration: hospital, insurer, pharmacy (§1).

Runs a patient journey across the collection lattice: clinical records
stay on the hospital (d_H), the insurance claim lives on d_{H,I}
(invisible to the pharmacy), the prescription on d_{H,P} (invisible to
the insurer), and the public vaccination attestation on the root —
verifiable by everyone, which is the paper's anti-fraud requirement.

    python examples/healthcare_network.py
"""

from repro.apps.healthcare import build_healthcare_network
from repro.core import Deployment, DeploymentConfig
from repro.datamodel import Operation


def run_op(deployment, client, scope, name, args, key):
    op = Operation("healthcare", name, args)
    tx = client.make_transaction(scope, op, keys=(key,))
    rid = client.submit(tx)
    deployment.run(1.5)
    return {c[0]: c[2] for c in client.completed}.get(rid)


def main() -> None:
    config = DeploymentConfig(
        enterprises=("H", "I", "P"),   # Hospital, Insurer, Pharmacy
        failure_model="byzantine",      # full BFT clusters
        batch_size=2,
        batch_wait=0.001,
    )
    deployment = Deployment(config)
    scopes = build_healthcare_network(deployment)
    hospital = deployment.create_client("H")
    insurer = deployment.create_client("I")
    pharmacy = deployment.create_client("P")

    # Clinical care happens on the hospital's private collection d_H.
    print("admit:", run_op(deployment, hospital, scopes["clinical"],
                           "admit_patient", ("alice", "influenza"), "chart:alice"))
    print("treat:", run_op(deployment, hospital, scopes["clinical"],
                           "record_treatment", ("alice", "antiviral", 120),
                           "chart:alice"))

    # Public attestation on the root collection d_{HIP}.
    print("attest:", run_op(deployment, hospital, scopes["registry"],
                            "attest_vaccination", ("at-1", "alice", "flu-24"),
                            "attest:at-1"))

    # Confidential claim on d_{H,I}; validated against the attestation
    # through the §3.2 read rule (d_HI is order-dependent on the root).
    print("claim:", run_op(deployment, hospital, scopes["claims"],
                           "file_claim", ("cl-1", "alice", 120, "at-1"),
                           "claim:cl-1"))
    print("adjudicate:", run_op(deployment, insurer, scopes["claims"],
                                "adjudicate_claim", ("cl-1", 120), "claim:cl-1"))

    # Confidential prescription on d_{H,P}.
    print("prescribe:", run_op(deployment, hospital, scopes["prescriptions"],
                               "prescribe", ("rx-1", "alice", "oseltamivir",
                                             "2/day"), "rx:rx-1"))
    print("dispense:", run_op(deployment, pharmacy, scopes["prescriptions"],
                              "dispense", ("rx-1",), "rx:rx-1"))

    # Who sees what:
    exec_i = deployment.executors_of("I1")[0]
    exec_p = deployment.executors_of("P1")[0]
    print("\ninsurer sees claim:      ",
          exec_i.store.read("HI", "claim:cl-1")["status"])
    print("insurer sees rx records: ",
          ("HP", 0) in exec_i.store.namespaces())
    print("pharmacy sees claims:    ",
          ("HI", 0) in exec_p.store.namespaces())
    print("pharmacy sees attestation:",
          exec_p.store.read("HIP", "attest:at-1")["verified"])


if __name__ == "__main__":
    main()
