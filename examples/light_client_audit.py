"""Light-client auditing: verifiable queries over an untrusted replica.

A regulator (light client) audits a two-enterprise collaboration
without replicating anything: it collects chain-head attestations from
f+1 replicas, then verifies membership and range proofs served by a
single — possibly lying — replica.  Forged records and silent
omissions are caught.  Archived history verifies the same way through
the archive view.

    python examples/light_client_audit.py
"""

import dataclasses

from repro.api import Network, wait_all
from repro.datamodel import Operation
from repro.ledger import (
    ArchivedLedgerView,
    LedgerArchiver,
    attested_head,
    prove_membership,
    prove_range,
    verify_membership,
    verify_range,
)
from repro.scenarios import example_scenario


def main() -> None:
    with Network.from_scenario(example_scenario("light-client-audit")) as net:
        config = net.config
        net.workflow("audited", ("A", "B"))
        session = net.session("A")
        handles = [
            session.put({"A", "B"}, f"entry-{i}", i) for i in range(10)
        ]
        wait_all(handles)
        net.settle()

        # 1. Trusted head: f+1 matching attestations across enterprises.
        ledgers = net.replica_ledgers("A") + net.replica_ledgers("B")
        heads = [ledger.content_head("AB") for ledger in ledgers]
        trusted = attested_head(heads, quorum=config.f + 1)
        print("attested head:", trusted)

        # 2. One (untrusted) replica serves a membership proof.
        prover = ledgers[0]
        record, proof = prove_membership(prover, "AB", 4)
        print("record 4 verified:", verify_membership(record, proof, trusted))

        # 3. The same replica tries to lie about the content.
        forged_tx = dataclasses.replace(
            record.otx.tx, operation=Operation("kv", "set", ("entry-3", 999))
        )
        forged = dataclasses.replace(
            record,
            otx=dataclasses.replace(record.otx, tx=forged_tx),
        )
        print("forged record verified:",
              verify_membership(forged, proof, trusted))

        # 4. Range audit: completeness within the range is enforced.
        records, range_proof = prove_range(prover, "AB", 2, 6)
        print("range 2..6 verified:",
              verify_range(records, range_proof, trusted))
        print("range with omission:",
              verify_range(records[:-1], range_proof, trusted))

        # 5. Archive the cold prefix; proofs still span the boundary.
        archiver = LedgerArchiver(prover)
        archiver.archive_chain("AB", 0, 5)
        view = ArchivedLedgerView(prover, archiver)
        archived_record, archived_proof = prove_membership(view, "AB", 3)
        print("archived record verified:",
              verify_membership(archived_record, archived_proof, trusted))
        print("archive continuity:", archiver.verify_continuity("AB"))


if __name__ == "__main__":
    main()
