"""Privacy firewall demo (§3.4 / requirement R3).

A Byzantine cluster with separated ordering and execution nodes and an
(h+1) x (h+1) filter grid.  A compromised execution node tries to leak
plaintext to a client two ways — directly (no physical route) and by
smuggling through the filters (dropped by the honest row).  The
protocol still completes: the client gets its certified reply.

    python examples/privacy_firewall_demo.py
"""

from repro.api import Network, TxStatus
from repro.firewall.execution import LeakyExecutionNode
from repro.scenarios import example_scenario


def main() -> None:
    with Network.from_scenario(example_scenario("privacy-firewall")) as net:
        net.workflow("wf", ("A", "B"))
        session = net.session("A")

        firewall = net.firewalls["A1"]
        print("cluster A1:",
              f"{len(net.cluster_members('A1'))} ordering nodes,",
              f"{len(firewall.execution_nodes)} execution nodes,",
              f"{len(firewall.rows)}x{len(firewall.rows[0])} filters")

        # Compromise one execution node.
        victim = firewall.execution_nodes[0]
        victim.__class__ = LeakyExecutionNode
        victim.accomplice = session.client.node_id
        victim.leak_attempts = 0
        victim.executor.on_executed = victim._on_executed

        handle = session.put({"A"}, "patient-record", "POSITIVE")
        print("\nrequest body sealed for:",
              sorted(handle.tx.sealed_operation.audience))
        result = handle.result()
        net.settle()

        completed = int(result.status is TxStatus.COMMITTED)
        print(f"\nclient completed: {completed} (reply certificate verified)")
        print(f"leak attempts by compromised exec node: {victim.leak_attempts * 2}")
        print(f"leaks that reached the client: {len(session.received_leaks)}")
        dropped = sum(f.dropped_messages for row in firewall.rows for f in row)
        print(f"messages dropped by honest filters: {dropped}")
        assert session.received_leaks == []


if __name__ == "__main__":
    main()
