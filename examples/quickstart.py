"""Quickstart: a two-enterprise Qanaat network in ~40 lines.

Builds a crash-fault-tolerant deployment, runs an internal transaction
and a confidential cross-enterprise transaction, and audits the
ledgers.

    python examples/quickstart.py
"""

from repro.core import Deployment, DeploymentConfig
from repro.datamodel import Operation
from repro.ledger import shared_chains_consistent


def main() -> None:
    config = DeploymentConfig(
        enterprises=("A", "B"),
        shards_per_enterprise=1,
        failure_model="crash",
        cross_protocol="flattened",
        batch_size=8,
        batch_wait=0.001,
    )
    deployment = Deployment(config)
    deployment.create_workflow("quickstart", ("A", "B"))
    client = deployment.create_client("A")

    # 1. An internal transaction on A's private collection d_A.
    internal = client.make_transaction(
        {"A"}, Operation("kv", "set", ("recipe", "secret sauce")), keys=("recipe",)
    )
    client.submit(internal)

    # 2. A cross-enterprise transaction on the shared collection d_AB.
    shared = client.make_transaction(
        {"A", "B"}, Operation("kv", "set", ("contract", "signed")), keys=("contract",)
    )
    client.submit(shared)
    deployment.run(2.0)

    print(f"completed {len(client.completed)} transactions")
    exec_a = deployment.executors_of("A1")[0]
    exec_b = deployment.executors_of("B1")[0]
    print("d_A  on A:", exec_a.store.read("A", "recipe"))
    print("d_AB on A:", exec_a.store.read("AB", "contract"))
    print("d_AB on B:", exec_b.store.read("AB", "contract"))
    print("d_A  on B:", exec_b.store.read("A", "recipe"), "(B never sees it)")
    consistent = shared_chains_consistent([exec_a.ledger, exec_b.ledger])
    print("shared chains consistent across enterprises:", consistent)


if __name__ == "__main__":
    main()
