"""Quickstart: a two-enterprise Qanaat network in ~40 lines.

Opens the registry's ``quickstart`` scenario — a crash-fault-tolerant
two-enterprise topology — through the session API, runs an internal
transaction and a confidential cross-enterprise transaction, and
audits the ledgers.

    python examples/quickstart.py
"""

from repro.api import Network, TxStatus, wait_all
from repro.ledger import shared_chains_consistent
from repro.scenarios import example_scenario


def main() -> None:
    with Network.from_scenario(example_scenario("quickstart")) as net:
        net.workflow("quickstart", ("A", "B"))
        alice = net.session("A")
        bob = net.session("B")

        # 1. An internal transaction on A's private collection d_A.
        internal = alice.put({"A"}, "recipe", "secret sauce")

        # 2. A cross-enterprise transaction on the shared collection d_AB.
        shared = alice.put({"A", "B"}, "contract", "signed")
        results = wait_all([internal, shared])
        net.settle()

        done = sum(r.status is TxStatus.COMMITTED for r in results)
        print(f"completed {done} transactions")
        print("d_A  on A:", alice.read({"A"}, "recipe"))
        print("d_AB on A:", alice.read({"A", "B"}, "contract"))
        print("d_AB on B:", bob.read({"A", "B"}, "contract"))
        print("d_A  on B:", bob.read({"A"}, "recipe"), "(B never sees it)")
        consistent = shared_chains_consistent(
            [net.ledger("A"), net.ledger("B")]
        )
        print("shared chains consistent across enterprises:", consistent)


if __name__ == "__main__":
    main()
