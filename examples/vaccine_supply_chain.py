"""The paper's motivating scenario (§2, Figure 1): a vaccine supply
chain with a manufacturer (M), supplier (S), logistics provider (L),
transportation company (T), and hospitals (H).

- Public steps T1..T8 run on the root collection d_MSLTH.
- The manufacturer's production steps run on its local collection d_M.
- A confidential price quotation between M and S runs on d_MS —
  invisible to L, T, and H.

    python examples/vaccine_supply_chain.py
"""

from repro.api import Network
from repro.apps import SupplyChainContract
from repro.scenarios import example_scenario


def main() -> None:
    # Mutually distrustful parties: Byzantine clusters, coordinator-led
    # cross-enterprise commits.
    spec = example_scenario("vaccine-supply-chain")
    enterprises = spec.topology.enterprises
    with Network.from_scenario(spec) as net:
        net.contracts.register(SupplyChainContract())
        workflow = net.workflow("vaccines", enterprises, contract="supplychain")
        workflow.create_private_collaboration({"M", "S"})
        sessions = {
            e: net.session(e, contract="supplychain") for e in enterprises
        }

        def run_tx(enterprise, scope, op_name, *args, key):
            return sessions[enterprise].invoke(
                frozenset(scope), None, op_name, *args, keys=(key,)
            ).result()

        root = set(enterprises)
        # T1/T2: the manufacturer places orders via supplier and logistics.
        run_tx("M", root, "place_order", "order-1", "M", "S", "mRNA lipids",
               160, key="order-1")
        # T3: logistics arranges shipment with the transporter.
        run_tx("L", root, "arrange_shipment", "order-1", "T", key="order-1")
        # T5/T6: transporter picks and delivers the materials.
        run_tx("T", root, "pick_order", "order-1", "T", key="order-1")
        run_tx("T", root, "deliver_order", "order-1", "M", key="order-1")

        # Internal manufacturing on d_M (reads the public order via the
        # order-dependency read rule).
        for step in ("reception", "ingredients", "coupling", "formulation",
                     "filling", "packaging"):
            run_tx("M", {"M"}, "manufacture_step", "lot-7", step, "order-1",
                   key="batch:lot-7")

        # Confidential price quotation on d_MS: hidden from L, T, H.
        run_tx("M", {"M", "S"}, "quote_price", "quote-1", "mRNA lipids",
               12_500, key="quote-1")

        # Provenance: anyone in the workflow can track the order end-to-end.
        history = run_tx("H", root, "track", "order-1", key="order-1").value
        print("order-1 provenance:", *history, sep="\n  - ")

        net.settle()
        manufacturer = sessions["M"]
        hospital = sessions["H"]
        batch = manufacturer.read({"M"}, "batch:lot-7")
        print("\nmanufacturing steps on d_M:", batch["steps"])
        print("order data pulled into d_M:", batch["order"]["item"])
        print("\nd_MS quote on M:", manufacturer.read({"M", "S"}, "quote-1"))
        print("d_MS quote on H:", hospital.read({"M", "S"}, "quote-1"),
              "(hospitals never see it)")
        print("d_M batch on H:", hospital.read({"M"}, "batch:lot-7"),
              "(nor the formula)")


if __name__ == "__main__":
    main()
