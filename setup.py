"""Legacy setup shim.

The evaluation environment has no network and no `wheel` package, so
PEP 517 editable installs fail.  `python setup.py develop` (or
`pip install -e . --no-build-isolation` on toolchains with wheel)
installs the package from src/.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
)
