"""Qanaat reproduction: a scalable multi-enterprise permissioned
blockchain with confidentiality guarantees (Amiri et al., VLDB 2022).

Public API tour
---------------

>>> from repro import Deployment, DeploymentConfig, Operation
>>> config = DeploymentConfig(enterprises=("A", "B"), batch_size=8)
>>> deployment = Deployment(config)
>>> workflow = deployment.create_workflow("demo", ("A", "B"))
>>> client = deployment.create_client("A")
>>> tx = client.make_transaction(
...     {"A", "B"}, Operation("kv", "set", ("k", 1)), keys=("k",))
>>> _ = client.submit(tx)
>>> deployment.run(2.0)
>>> len(client.completed)
1

Packages: :mod:`repro.datamodel` (collections, IDs, stores),
:mod:`repro.ledger` (DAG ledger, provenance, verifiable queries,
archives), :mod:`repro.consensus` (Paxos, PBFT, checkpointing,
coordinator-based and flattened cross-cluster protocols),
:mod:`repro.firewall` (privacy firewall), :mod:`repro.core` (system
assembly, contracts, confidential assets, reconfiguration, adversary
injection), :mod:`repro.baselines` (Fabric family, Caper,
SharPer/AHL), :mod:`repro.storage` (durable WAL/snapshot
backends and crash recovery), :mod:`repro.workload` and
:mod:`repro.bench` (evaluation), :mod:`repro.apps` (supply chain,
healthcare, crowdworking).
"""

from repro.core.assets import AssetWallet, ConfidentialAssetContract
from repro.core.config import DeploymentConfig
from repro.core.deployment import Deployment
from repro.core.reconfig import Reconfigurator
from repro.datamodel.collections import CollectionRegistry, DataCollection
from repro.datamodel.transaction import Operation, Transaction
from repro.datamodel.txid import LocalPart, TxId
from repro.datamodel.workflow import CollaborationWorkflow
from repro.ledger.dag import DagLedger
from repro.ledger.validation import audit_ledger, shared_chains_consistent

__version__ = "1.0.0"

__all__ = [
    "AssetWallet",
    "ConfidentialAssetContract",
    "Deployment",
    "DeploymentConfig",
    "CollaborationWorkflow",
    "CollectionRegistry",
    "DataCollection",
    "Operation",
    "Reconfigurator",
    "Transaction",
    "TxId",
    "LocalPart",
    "DagLedger",
    "audit_ledger",
    "shared_chains_consistent",
    "__version__",
]
