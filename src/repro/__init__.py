"""Qanaat reproduction: a scalable multi-enterprise permissioned
blockchain with confidentiality guarantees (Amiri et al., VLDB 2022).

Public API tour
---------------

>>> from repro import DeploymentConfig, Network
>>> config = DeploymentConfig(enterprises=("A", "B"), batch_size=8)
>>> with Network(config) as net:
...     _ = net.workflow("demo", ("A", "B"))
...     session = net.session("A")
...     session.put({"A", "B"}, "k", 1).result().status.value
'committed'

Packages: :mod:`repro.api` (Network/Session/TxHandle client surface
and the SystemDriver protocol), :mod:`repro.datamodel` (collections, IDs, stores),
:mod:`repro.ledger` (DAG ledger, provenance, verifiable queries,
archives), :mod:`repro.consensus` (Paxos, PBFT, checkpointing,
coordinator-based and flattened cross-cluster protocols),
:mod:`repro.firewall` (privacy firewall), :mod:`repro.core` (system
assembly, contracts, confidential assets, reconfiguration, adversary
injection), :mod:`repro.baselines` (Fabric family, Caper,
SharPer/AHL), :mod:`repro.storage` (durable WAL/snapshot
backends and crash recovery), :mod:`repro.scenarios` (declarative
scenario specs, fault timelines, the named-scenario registry),
:mod:`repro.workload` and :mod:`repro.bench` (evaluation),
:mod:`repro.apps` (supply chain, healthcare, crowdworking).
"""

from repro.api import (
    Network,
    Session,
    SystemDriver,
    TxHandle,
    TxResult,
    TxStatus,
    wait_all,
)
from repro.core.assets import AssetWallet, ConfidentialAssetContract
from repro.core.config import DeploymentConfig
from repro.core.deployment import Deployment
from repro.core.reconfig import Reconfigurator
from repro.datamodel.collections import CollectionRegistry, DataCollection
from repro.datamodel.transaction import Operation, Transaction
from repro.datamodel.txid import LocalPart, TxId
from repro.datamodel.workflow import CollaborationWorkflow
from repro.ledger.dag import DagLedger
from repro.ledger.validation import audit_ledger, shared_chains_consistent

__version__ = "1.0.0"

__all__ = [
    "AssetWallet",
    "ConfidentialAssetContract",
    "Deployment",
    "DeploymentConfig",
    "Network",
    "Session",
    "SystemDriver",
    "TxHandle",
    "TxResult",
    "TxStatus",
    "wait_all",
    "CollaborationWorkflow",
    "CollectionRegistry",
    "DataCollection",
    "Operation",
    "Reconfigurator",
    "Transaction",
    "TxId",
    "LocalPart",
    "DagLedger",
    "audit_ledger",
    "shared_chains_consistent",
    "__version__",
]
