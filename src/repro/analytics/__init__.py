"""SQL-backed ledger analytics: off-replica indexed queries.

Qanaat's replicas answer point queries from in-process state
(:mod:`repro.ledger.queries`, :mod:`repro.ledger.provenance`), but
collaborative workflows also need history scans, point-in-time reads,
and provenance closures that should not compete with consensus for
replica cycles.  This package moves those to an off-replica analytics
database fed from the durable journal:

- :mod:`repro.analytics.schema` — typed, indexed tables (transactions,
  key versions, provenance edges, segment manifests) plus materialized
  listing views (per-entity latest state, per-chain heads);
- :mod:`repro.analytics.ingest` — incremental watermark catch-up from
  read-only journal connections, snapshot floors for compacted logs;
- :mod:`repro.analytics.engine` — the query API (window-function SQL:
  ``key_history``, ``provenance_chain``, ``as_of``, window
  aggregates), every family cross-checkable against the in-process
  implementation;
- ``python -m repro.analytics`` — ad-hoc CLI over a journal file or
  directory.

The fill/bench halves (:mod:`repro.analytics.fill`,
:mod:`repro.analytics.bench`) import the execution stack and are left
out of the package namespace on purpose — importing the query side
must stay cheap.
"""

from repro.analytics.engine import AnalyticsEngine, HistoryEntry
from repro.analytics.ingest import AnalyticsIngest, IngestStats
from repro.analytics.schema import SCHEMA_VERSION, initialize, open_analytics

__all__ = [
    "AnalyticsEngine",
    "AnalyticsIngest",
    "HistoryEntry",
    "IngestStats",
    "SCHEMA_VERSION",
    "initialize",
    "open_analytics",
]
