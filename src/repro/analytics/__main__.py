"""Ad-hoc ledger analytics from the command line.

Point ``--journal`` at a replica journal (one ``.sqlite`` file or a
directory of them) and the CLI ingests whatever is new into an
analytics database before answering; point ``--db`` at an existing
analytics database to query it without touching any journal.  Results
print as JSON, one document per invocation.

    python -m repro.analytics --journal out/analytics_data/journal.sqlite heads
    python -m repro.analytics --journal out/node0.sqlite history k000001
    python -m repro.analytics --db analytics_cli.db chain A 0 512 --max-hops 4
    python -m repro.analytics --db analytics_cli.db sql \\
        "SELECT client, COUNT(*) FROM txs GROUP BY client ORDER BY client"

The default analytics database deliberately uses a ``.db`` suffix:
directory ingest consumes every ``*.sqlite`` file, and the CLI's own
output must never match that glob.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
from pathlib import Path

from repro.analytics.engine import AnalyticsEngine
from repro.analytics.ingest import AnalyticsIngest
from repro.analytics.schema import open_analytics


def default_db_path(journal: Path) -> Path:
    if journal.is_dir():
        return journal / "analytics_cli.db"
    return journal.with_name(journal.stem + ".analytics.db")


def _emit(payload) -> None:
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        payload = dataclasses.asdict(payload)
    if isinstance(payload, list):
        payload = [
            dataclasses.asdict(item)
            if dataclasses.is_dataclass(item) and not isinstance(item, type)
            else item
            for item in payload
        ]
    print(json.dumps(payload, indent=2, sort_keys=True, default=list))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analytics",
        description="SQL-backed ledger analytics over replica journals.",
    )
    parser.add_argument(
        "--journal",
        type=Path,
        help="replica journal to ingest first (.sqlite file or directory)",
    )
    parser.add_argument(
        "--db",
        type=Path,
        help="analytics database (default: derived from --journal)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("ingest", help="catch the analytics database up and stop")
    sub.add_parser("heads", help="per-chain heights and content heads")
    sub.add_parser("tables", help="row counts per analytics table")

    history = sub.add_parser("history", help="every transaction declaring a key")
    history.add_argument("key")
    history.add_argument("--label")
    history.add_argument("--shard", type=int)

    chain = sub.add_parser("chain", help="hop-bounded provenance closure")
    chain.add_argument("label")
    chain.add_argument("shard", type=int)
    chain.add_argument("seq", type=int)
    chain.add_argument("--max-hops", type=int, default=8)

    as_of = sub.add_parser("as-of", help="point-in-time read of a key")
    as_of.add_argument("key")
    as_of.add_argument("height", type=int)
    as_of.add_argument("label")
    as_of.add_argument("--shard", type=int, default=0)

    windows = sub.add_parser("windows", help="per-timestamp-window aggregates")
    windows.add_argument("label")
    windows.add_argument("--shard", type=int, default=0)
    windows.add_argument("--width", type=int, default=100)

    latest = sub.add_parser("latest", help="materialized latest state per key")
    latest.add_argument("--label")
    latest.add_argument("--shard", type=int)

    request = sub.add_parser("request", help="ledger positions of a request id")
    request.add_argument("request_id", type=int)

    segments = sub.add_parser("segments", help="archived segment manifests")
    segments.add_argument("--label")

    sql = sub.add_parser("sql", help="ad-hoc read-only SQL passthrough")
    sql.add_argument("statement")
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.journal is None and args.db is None:
        print("error: need --journal and/or --db", file=sys.stderr)
        return 2
    db_path = args.db if args.db is not None else default_db_path(args.journal)
    if args.journal is not None:
        conn = open_analytics(db_path)
        try:
            stats = AnalyticsIngest(conn).catch_up(args.journal)
        finally:
            conn.close()
        if args.command == "ingest":
            _emit({"db": str(db_path), "ingested": stats.as_dict()})
            return 0
    elif args.command == "ingest":
        print("error: ingest needs --journal", file=sys.stderr)
        return 2
    engine = AnalyticsEngine.from_path(db_path)
    try:
        if args.command == "heads":
            _emit([
                {"label": l, "shard": s, "height": h, "head": d}
                for l, s, h, d in engine.chain_heads()
            ])
        elif args.command == "tables":
            _emit(engine.table_counts())
        elif args.command == "history":
            _emit(engine.key_history(args.key, args.label, args.shard))
        elif args.command == "chain":
            _emit([
                {"label": l, "shard": s, "seq": q, "hop": hop}
                for l, s, q, hop in engine.provenance_chain(
                    args.label, args.shard, args.seq, args.max_hops
                )
            ])
        elif args.command == "as-of":
            _emit({
                "key": args.key,
                "height": args.height,
                "value": engine.as_of(
                    args.key, args.height, args.label, args.shard
                ),
            })
        elif args.command == "windows":
            _emit(engine.window_aggregates(args.label, args.shard, args.width))
        elif args.command == "latest":
            _emit([
                {"label": l, "shard": s, "key": k, "version": v, "value": val}
                for l, s, k, v, val in engine.entity_latest(
                    args.label, args.shard
                )
            ])
        elif args.command == "request":
            _emit([
                {"label": l, "shard": s, "seq": q}
                for l, s, q in engine.transactions_for_request(args.request_id)
            ])
        elif args.command == "segments":
            _emit([
                {
                    "label": l, "shard": s, "from_seq": a, "to_seq": b,
                    "anchor": anchor, "head": head,
                }
                for l, s, a, b, anchor, head in engine.segments(args.label)
            ])
        elif args.command == "sql":
            _emit(engine.sql(args.statement))
    finally:
        engine.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
