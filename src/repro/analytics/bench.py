"""The ``--experiment analytics`` benchmark.

Loads a seeded multi-shard ledger through :mod:`repro.analytics.fill`
(1M records at full scale), ingests the journal incrementally while
the fill runs — checkpoints compact the journal and archives prune the
ledger along the way, so the watermark/snapshot-floor machinery is
exercised, not just the happy path — then measures the four query
families and **cross-checks every sampled answer against the
in-process implementation** (`ledger.provenance`, `ledger.queries`
semantics, `MultiVersionStore.read`).

Determinism: everything under ``results`` — sample sets, answer
fingerprints, verified flags, table counts, chain heads — is a pure
function of (records, shards, seed).  Query latencies are wall-clock
and live under ``perf``, which ``repro.bench.compare`` strips; the
``--jobs`` fan-out (one worker per query family, each opening the
analytics database read-only) therefore changes nothing in the
comparable artifact.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Any

from repro.analytics.engine import AnalyticsEngine
from repro.analytics.fill import FilledLedger, fill_journal
from repro.analytics.ingest import AnalyticsIngest, IngestStats
from repro.analytics.schema import SCHEMA_VERSION, open_analytics
from repro.bench.parallel import resolve_jobs
from repro.bench.report import results_payload, write_json
from repro.crypto.hashing import digest
from repro.ledger.provenance import key_history, lineage_closure

#: Archiving policy during the fill: keep this many live records per
#: chain, archive prefixes once at least ARCHIVE_MIN records are
#: archivable.  Count-based, so the schedule is deterministic.
LIVE_KEEP = 64
ARCHIVE_MIN = 128

FAMILIES = ("key_history", "provenance_chain", "as_of", "windows")


# ----------------------------------------------------------------------
# sampling (pure function of the filled ledger + seed)
# ----------------------------------------------------------------------
def plan_samples(filled: FilledLedger, seed: int) -> dict[str, list[tuple]]:
    """Deterministic query samples per family, as picklable tuples."""
    rng = random.Random(seed * 7919 + 17)
    width = max(filled.records // 32, 1)
    samples: dict[str, list[tuple]] = {f: [] for f in FAMILIES}
    for label, shard in filled.chain_keys():
        height = filled.units[shard].ledger.height(label, shard)
        if height == 0:
            continue
        pool = filled.key_pools[shard]
        for key in sorted(rng.sample(pool, min(3, len(pool)))):
            samples["key_history"].append((key, label, shard))
        for _ in range(4):
            key = rng.choice(pool)
            samples["as_of"].append((label, shard, key, rng.randint(1, height)))
        for _ in range(3):
            seq = rng.randint(max(1, height - LIVE_KEEP), height)
            samples["provenance_chain"].append((label, shard, seq, 8))
        samples["windows"].append((label, shard, width))
    return samples


# ----------------------------------------------------------------------
# in-process expected answers (the cross-check ground truth)
# ----------------------------------------------------------------------
def expected_answers(
    filled: FilledLedger, samples: dict[str, list[tuple]]
) -> dict[str, list[Any]]:
    expected: dict[str, list[Any]] = {f: [] for f in FAMILIES}
    for key, label, shard in samples["key_history"]:
        view = filled.view(shard)
        rows = []
        prev_seq = None
        for position, record in enumerate(key_history(view, label, key, shard), 1):
            tx = record.otx.tx
            rows.append([
                label, shard, record.seq, tx.request_id, tx.client,
                tx.timestamp, prev_seq, position,
            ])
            prev_seq = record.seq
        expected["key_history"].append(rows)
    for label, shard, seq, max_hops in samples["provenance_chain"]:
        closure = lineage_closure(filled.view(shard), label, shard, seq, max_hops)
        expected["provenance_chain"].append([list(row) for row in closure])
    for label, shard, key, height in samples["as_of"]:
        expected["as_of"].append(
            filled.units[shard].store.read(
                label, key, shard=shard, at_version=height, default=None
            )
        )
    for label, shard, width in samples["windows"]:
        buckets: dict[int, dict[str, Any]] = {}
        for record in filled.view(shard).chain(label, shard):
            tx = record.otx.tx
            bucket = (tx.timestamp // width) * width
            entry = buckets.setdefault(
                bucket,
                {"txs": 0, "clients": set(), "first": record.seq, "last": record.seq},
            )
            entry["txs"] += 1
            entry["clients"].add(tx.client)
            entry["first"] = min(entry["first"], record.seq)
            entry["last"] = max(entry["last"], record.seq)
        rows, cumulative = [], 0
        for bucket in sorted(buckets):
            entry = buckets[bucket]
            cumulative += entry["txs"]
            rows.append({
                "window_start": bucket,
                "txs": entry["txs"],
                "clients": len(entry["clients"]),
                "first_seq": entry["first"],
                "last_seq": entry["last"],
                "cumulative": cumulative,
            })
        expected["windows"].append(rows)
    return expected


# ----------------------------------------------------------------------
# measurement workers (one per family; read-only engine per worker)
# ----------------------------------------------------------------------
def run_family(
    args: tuple[str, str, list[tuple], int],
) -> tuple[str, list[Any], list[float]]:
    """Run one family's samples against the analytics database.

    Top-level so worker processes can import it under any start
    method.  Returns (family, answers, per-query latencies in ms)."""
    db_path, family, samples, repeats = args
    engine = AnalyticsEngine.from_path(db_path)
    answers: list[Any] = []
    latencies: list[float] = []
    try:
        for sample in samples:
            answer = None
            for _ in range(repeats):
                started = time.perf_counter()
                if family == "key_history":
                    key, label, shard = sample
                    answer = [
                        [e.label, e.shard, e.seq, e.request_id, e.client,
                         e.timestamp, e.prev_seq, e.position]
                        for e in engine.key_history(key, label, shard)
                    ]
                elif family == "provenance_chain":
                    label, shard, seq, max_hops = sample
                    answer = [
                        list(row)
                        for row in engine.provenance_chain(label, shard, seq, max_hops)
                    ]
                elif family == "as_of":
                    label, shard, key, height = sample
                    answer = engine.as_of(key, height, label, shard)
                elif family == "windows":
                    label, shard, width = sample
                    answer = engine.window_aggregates(label, shard, width)
                else:  # pragma: no cover - the families list is closed
                    raise ValueError(f"unknown family {family!r}")
                latencies.append((time.perf_counter() - started) * 1000.0)
            answers.append(answer)
    finally:
        engine.close()
    return family, answers, latencies


def _percentiles(latencies: list[float]) -> dict[str, float]:
    if not latencies:
        return {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    ordered = sorted(latencies)
    def at(q: float) -> float:
        index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
        return round(ordered[index], 4)
    return {"p50": at(0.50), "p95": at(0.95), "p99": at(0.99)}


def _measure(
    db_path: str,
    samples: dict[str, list[tuple]],
    repeats: int,
    jobs: int | None,
) -> dict[str, tuple[list[Any], list[float]]]:
    tasks = [(db_path, family, samples[family], repeats) for family in FAMILIES]
    resolved = resolve_jobs(jobs)
    if resolved == 1:
        outputs = [run_family(task) for task in tasks]
    else:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )
        with context.Pool(processes=min(resolved, len(tasks))) as pool:
            outputs = pool.map(run_family, tasks)
    by_family = {family: (answers, lat) for family, answers, lat in outputs}
    return {family: by_family[family] for family in FAMILIES}


# ----------------------------------------------------------------------
# the benchmark
# ----------------------------------------------------------------------
def _maintain(
    filled: FilledLedger,
    committed: int,
    ingest: AnalyticsIngest,
    totals: IngestStats,
) -> None:
    """Chunk hook: catch the analytics store up, then checkpoint and
    archive so later chunks exercise compacted journals and pruned
    ledgers (ingest first — archiving must never outrun it)."""
    totals.merge(ingest.catch_up(filled.path))
    for label, shard in filled.chain_keys():
        unit = filled.units[shard]
        height = unit.ledger.height(label, shard)
        target = height - LIVE_KEEP
        archiver = filled.archivers[shard]
        if target - archiver.archived_upto(label, shard) >= ARCHIVE_MIN:
            unit.persist_checkpoint(label, shard, target)
            archiver.archive_chain(label, shard, target)


def run_analytics_bench(
    out_path: str | Path,
    records: int,
    shards: int = 2,
    seed: int = 1,
    jobs: int | None = None,
    scale_name: str = "fast",
    keys_per_shard: int = 24,
) -> dict[str, Any]:
    """Fill, ingest, cross-check, and measure; writes the artifact."""
    out_path = Path(out_path)
    data_dir = out_path.parent / "analytics_data"
    data_dir.mkdir(parents=True, exist_ok=True)
    journal_path = data_dir / "journal.sqlite"
    analytics_path = data_dir / "analytics.sqlite"
    for stale in (journal_path, analytics_path):
        for suffix in ("", "-wal", "-shm"):
            candidate = Path(str(stale) + suffix)
            if candidate.exists():
                candidate.unlink()
    analytics_conn = open_analytics(analytics_path)
    ingest = AnalyticsIngest(analytics_conn)
    totals = IngestStats()
    print(
        f"\n=== Analytics engine ({records:,} records, {shards} shards,"
        f" seed={seed}) ==="
    )
    fill_started = time.perf_counter()
    filled = fill_journal(
        journal_path,
        records=records,
        shards=shards,
        keys_per_shard=keys_per_shard,
        seed=seed,
        on_chunk=lambda f, committed: _maintain(f, committed, ingest, totals),
    )
    fill_elapsed = time.perf_counter() - fill_started
    ingest_started = time.perf_counter()
    totals.merge(ingest.catch_up(journal_path))
    ingest_elapsed = time.perf_counter() - ingest_started
    samples = plan_samples(filled, seed)
    expected = expected_answers(filled, samples)
    repeats = 3 if records <= 100_000 else 1
    measured = _measure(str(analytics_path), samples, repeats, jobs)
    queries: dict[str, Any] = {}
    latency_ms: dict[str, Any] = {}
    all_verified = True
    for family in FAMILIES:
        answers, latencies = measured[family]
        normalized = results_payload(answers)
        mismatches = sum(
            1
            for got, want in zip(normalized, results_payload(expected[family]))
            if got != want
        )
        verified = mismatches == 0 and len(answers) == len(expected[family])
        all_verified = all_verified and verified
        queries[family] = {
            "samples": len(samples[family]),
            "verified": verified,
            "mismatches": mismatches,
            "fingerprint": digest(["analytics", family, normalized]),
        }
        latency_ms[family] = _percentiles(latencies)
        print(
            f"  {family:<17} samples={len(samples[family]):>3} "
            f"verified={verified} p50={latency_ms[family]['p50']:.3f}ms "
            f"p99={latency_ms[family]['p99']:.3f}ms"
        )
    engine = AnalyticsEngine.from_path(analytics_path)
    try:
        heads = [list(row) for row in engine.chain_heads()]
        tables = engine.table_counts()
        segment_rows = [list(row) for row in engine.segments()]
    finally:
        engine.close()
    analytics_conn.close()
    filled.close()
    payload = {
        "experiment": "analytics",
        "scale": scale_name,
        "seed": seed,
        "records": records,
        "shards": shards,
        "schema_version": SCHEMA_VERSION,
        "results": {
            "queries": queries,
            "all_verified": all_verified,
            "chain_heads": heads,
            "segments": segment_rows,
            "tables": tables,
            "ingest": totals.as_dict(),
        },
        "perf": {
            "fill_s": round(fill_elapsed, 3),
            "ingest_s": round(ingest_elapsed, 3),
            "repeats": repeats,
            "jobs": resolve_jobs(jobs),
            "latency_ms": latency_ms,
        },
    }
    write_json(out_path, payload)
    if not all_verified:
        raise AssertionError(
            "analytics answers diverged from the in-process ledger: "
            + json.dumps({f: queries[f]["mismatches"] for f in FAMILIES})
        )
    return payload
