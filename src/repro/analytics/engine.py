"""Window-function SQL queries behind a Python API.

The four query families the paper's collaboration workflows end in,
each answerable off-replica from the ingested tables and each
cross-checkable against the in-process implementations:

- :meth:`AnalyticsEngine.key_history` ↔
  :func:`repro.ledger.provenance.key_history` — every transaction that
  declared a key, with ``LAG``/``ROW_NUMBER`` window columns giving
  each row its predecessor and position;
- :meth:`AnalyticsEngine.provenance_chain` ↔
  :func:`repro.ledger.provenance.lineage_closure` — the hop-bounded
  causal closure of one record as a recursive CTE over the provenance
  edge table;
- :meth:`AnalyticsEngine.as_of` ↔
  :meth:`repro.datamodel.store.MultiVersionStore.read` with
  ``at_version`` — point-in-time reads against ``key_versions``;
- :meth:`AnalyticsEngine.window_aggregates` — per-timestamp-window
  transaction counts, distinct clients, and a running cumulative
  total (``SUM() OVER``) per collection-shard.

Engines opened through :meth:`AnalyticsEngine.from_path` are
read-only — analytics query traffic can never write to the database it
queries, the same discipline the ingest applies to replica journals.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StorageError
from repro.storage.sqlite import SqliteBackend


@dataclass(frozen=True)
class HistoryEntry:
    """One ``key_history`` row: a transaction that declared the key."""

    label: str
    shard: int
    seq: int
    request_id: int
    client: str
    timestamp: int
    #: Sequence of the previous transaction on the same chain that
    #: declared this key (``LAG`` window), None for the first.
    prev_seq: int | None
    #: 1-based position among the key's transactions on this chain
    #: (``ROW_NUMBER`` window).
    position: int


class AnalyticsEngine:
    """Query API over one analytics database."""

    def __init__(self, conn: sqlite3.Connection):
        self.conn = conn

    @classmethod
    def from_path(cls, path: str | Path) -> "AnalyticsEngine":
        """Open an analytics database **read-only** for querying."""
        return cls(SqliteBackend.open_reader(path))

    def close(self) -> None:
        self.conn.close()

    # ------------------------------------------------------------------
    # query families
    # ------------------------------------------------------------------
    def key_history(
        self, key: str, label: str | None = None, shard: int | None = None
    ) -> list[HistoryEntry]:
        """Every transaction that declared ``key``, chain-ordered."""
        conditions = ["k.key = ?"]
        params: list = [key]
        if label is not None:
            conditions.append("k.label = ?")
            params.append(label)
        if shard is not None:
            conditions.append("k.shard = ?")
            params.append(shard)
        rows = self.conn.execute(
            "SELECT t.label, t.shard, t.seq, t.request_id, t.client, t.ts,"
            "       LAG(t.seq) OVER w, ROW_NUMBER() OVER w"
            " FROM tx_keys k"
            " JOIN txs t ON t.label=k.label AND t.shard=k.shard AND t.seq=k.seq"
            f" WHERE {' AND '.join(conditions)}"
            " WINDOW w AS (PARTITION BY t.label, t.shard ORDER BY t.seq)"
            " ORDER BY t.label, t.shard, t.seq",
            params,
        ).fetchall()
        return [HistoryEntry(*row) for row in rows]

    def provenance_chain(
        self, label: str, shard: int, seq: int, max_hops: int = 8
    ) -> list[tuple[str, int, int, int]]:
        """The hop-bounded causal closure of one transaction.

        Returns ``(label, shard, seq, hop)`` rows sorted by ``(hop,
        label, shard, seq)`` with the start record at hop 0 — the same
        relation :func:`repro.ledger.provenance.lineage_closure`
        computes in process.  Edges into transactions the analytics
        store has not indexed are skipped, mirroring the in-process
        treatment of pruned dependencies."""
        exists = self.conn.execute(
            "SELECT 1 FROM txs WHERE label=? AND shard=? AND seq=?",
            (label, shard, seq),
        ).fetchone()
        if exists is None:
            raise StorageError(f"no indexed transaction {label}#{shard}:{seq}")
        rows = self.conn.execute(
            "WITH RECURSIVE closure (label, shard, seq, hop) AS ("
            "  SELECT ?, ?, ?, 0"
            "  UNION"
            "  SELECT e.dep_label, e.dep_shard, e.dep_seq, c.hop + 1"
            "  FROM closure c"
            "  JOIN edges e"
            "    ON e.label=c.label AND e.shard=c.shard AND e.seq=c.seq"
            "  WHERE c.hop < ?"
            "    AND EXISTS (SELECT 1 FROM txs t WHERE t.label=e.dep_label"
            "                AND t.shard=e.dep_shard AND t.seq=e.dep_seq)"
            ") "
            "SELECT label, shard, seq, MIN(hop) AS hop FROM closure"
            " GROUP BY label, shard, seq ORDER BY hop, label, shard, seq",
            (label, shard, seq, max_hops),
        ).fetchall()
        return [tuple(row) for row in rows]

    def as_of(
        self,
        key: str,
        height: int,
        label: str,
        shard: int = 0,
        default=None,
    ):
        """Read ``key`` as of block height ``height`` — the value the
        multi-versioned store would return with ``at_version=height``."""
        row = self.conn.execute(
            "SELECT value FROM key_versions"
            " WHERE label=? AND shard=? AND key=? AND version<=?"
            " ORDER BY version DESC LIMIT 1",
            (label, shard, key, height),
        ).fetchone()
        if row is None:
            return default
        return json.loads(row[0])

    def window_aggregates(
        self, label: str, shard: int = 0, width: int = 100
    ) -> list[dict]:
        """Per-timestamp-window aggregates for one collection-shard.

        Buckets transactions by ``ts // width`` and reports, per
        bucket: transaction count, distinct clients, first/last
        sequence, and the running cumulative count (``SUM() OVER``)."""
        if width < 1:
            raise StorageError("window width must be >= 1")
        rows = self.conn.execute(
            "SELECT bucket, txs, clients, first_seq, last_seq,"
            "       SUM(txs) OVER (ORDER BY bucket) AS cumulative"
            " FROM (SELECT (ts / ?) * ? AS bucket, COUNT(*) AS txs,"
            "              COUNT(DISTINCT client) AS clients,"
            "              MIN(seq) AS first_seq, MAX(seq) AS last_seq"
            "       FROM txs WHERE label=? AND shard=? AND ts IS NOT NULL"
            "       GROUP BY bucket)"
            " ORDER BY bucket",
            (width, width, label, shard),
        ).fetchall()
        return [
            {
                "window_start": row[0],
                "txs": row[1],
                "clients": row[2],
                "first_seq": row[3],
                "last_seq": row[4],
                "cumulative": row[5],
            }
            for row in rows
        ]

    # ------------------------------------------------------------------
    # listings
    # ------------------------------------------------------------------
    def chain_heads(self) -> list[tuple[str, int, int, str]]:
        """Per-shard chain heads: ``(label, shard, height, head)``."""
        return [
            tuple(row)
            for row in self.conn.execute(
                "SELECT label, shard, height, head FROM chain_heads"
                " ORDER BY label, shard"
            )
        ]

    def entity_latest(
        self, label: str | None = None, shard: int | None = None
    ) -> list[tuple[str, int, str, int, object]]:
        """Per-entity latest state: ``(label, shard, key, version,
        value)`` from the materialized listing view."""
        conditions, params = [], []
        if label is not None:
            conditions.append("label = ?")
            params.append(label)
        if shard is not None:
            conditions.append("shard = ?")
            params.append(shard)
        where = f" WHERE {' AND '.join(conditions)}" if conditions else ""
        return [
            (row[0], row[1], row[2], row[3], json.loads(row[4]))
            for row in self.conn.execute(
                "SELECT label, shard, key, version, value FROM entity_latest"
                f"{where} ORDER BY label, shard, key",
                params,
            )
        ]

    def segments(self, label: str | None = None) -> list[tuple]:
        """Archived segment manifests known to the store."""
        where = " WHERE label = ?" if label is not None else ""
        params = (label,) if label is not None else ()
        return [
            tuple(row)
            for row in self.conn.execute(
                "SELECT label, shard, from_seq, to_seq, anchor, head"
                f" FROM segments{where} ORDER BY label, shard, from_seq",
                params,
            )
        ]

    def transactions_for_request(self, request_id: int) -> list[tuple]:
        """Every indexed position of one client request — the SQL form
        of :func:`repro.ledger.provenance.trace_request`."""
        return [
            tuple(row)
            for row in self.conn.execute(
                "SELECT label, shard, seq FROM txs WHERE request_id=?"
                " ORDER BY label, shard, seq",
                (request_id,),
            )
        ]

    def table_counts(self) -> dict[str, int]:
        """Row counts per table (artifact / CLI summary)."""
        counts = {}
        for table in (
            "txs", "tx_keys", "key_versions", "edges", "segments",
            "entity_latest", "chain_heads",
        ):
            counts[table] = self.conn.execute(
                f"SELECT COUNT(*) FROM {table}"
            ).fetchone()[0]
        return counts

    def sql(self, statement: str, params: tuple = ()) -> list[tuple]:
        """Ad-hoc query passthrough (the CLI's ``sql`` subcommand).

        Safe on read-only engines by construction: writes raise
        ``sqlite3.OperationalError`` at the connection level."""
        return [tuple(row) for row in self.conn.execute(statement, params)]
