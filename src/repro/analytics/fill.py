"""Seeded ledger fill for the analytics benchmark.

Loads a multi-shard, multi-collection ledger to a target record count
by driving :class:`~repro.core.executor.ExecutionUnit` instances
directly — the execution-side state machine the replicas run, minus
consensus (which adds nothing to the durable journal this benchmark
reads).  One unit per shard index, all journaling into **one**
:class:`~repro.storage.sqlite.SqliteBackend` file, exactly the layout
a combined order/execute replica produces.

Two collections give the provenance queries real structure: the
shared root ``AB`` and enterprise ``A``'s private collection, which is
order-dependent on the root (§3.2), so every ``A`` transaction's γ
captures the last ``AB`` commit and the edge table gets genuine
cross-collection lineage.

Everything is derived from the seed: keys are pre-bucketed by the
sharding schema (the KV contract only writes shard-local keys),
request ids are explicit (the process-global counter would leak
nondeterminism into digests), and timestamps are the global fill
index (so timestamp windows mean something).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from repro.core.contracts import ContractRegistry
from repro.core.executor import ExecutionUnit
from repro.datamodel.collections import CollectionRegistry, DataCollection
from repro.datamodel.sharding import ShardingSchema
from repro.datamodel.transaction import Operation, OrderedTransaction, Transaction
from repro.datamodel.txid import SequenceBook
from repro.ledger.archive import ArchivedLedgerView, LedgerArchiver
from repro.storage.sqlite import SqliteBackend

#: Fill workload shape: every 4th transaction targets the shared root
#: collection, the rest the private one (which γ-links back to it).
ROOT_EVERY = 4
CLIENTS = 7


@dataclass
class FilledLedger:
    """The in-process side of a completed (or in-progress) fill —
    the ground truth analytics answers are checked against."""

    path: Path
    backend: SqliteBackend
    registry: CollectionRegistry
    schema: ShardingSchema
    labels: tuple[str, ...]
    shards: int
    units: dict[int, ExecutionUnit] = field(default_factory=dict)
    archivers: dict[int, LedgerArchiver] = field(default_factory=dict)
    key_pools: dict[int, list[str]] = field(default_factory=dict)
    records: int = 0

    def view(self, shard: int) -> ArchivedLedgerView:
        """Archive-spanning record source for one shard's chains."""
        return ArchivedLedgerView(self.units[shard].ledger, self.archivers[shard])

    def chain_keys(self) -> list[tuple[str, int]]:
        return [
            (label, shard)
            for label in self.labels
            for shard in range(self.shards)
        ]

    def close(self) -> None:
        self.backend.close()


def build_key_pools(
    schema: ShardingSchema, keys_per_shard: int
) -> dict[int, list[str]]:
    """Candidate keys pre-bucketed by shard: the KV contract silently
    skips non-local keys, so the fill must only offer local ones."""
    pools: dict[int, list[str]] = {s: [] for s in range(schema.num_shards)}
    candidate = 0
    while any(len(pool) < keys_per_shard for pool in pools.values()):
        key = f"k{candidate:06d}"
        shard = schema.shard_of(key)
        if len(pools[shard]) < keys_per_shard:
            pools[shard].append(key)
        candidate += 1
    return pools


def fill_journal(
    journal_path: str | Path,
    records: int,
    shards: int = 2,
    keys_per_shard: int = 24,
    seed: int = 1,
    on_chunk: Callable[[FilledLedger, int], None] | None = None,
    chunk: int = 10_000,
) -> FilledLedger:
    """Fill a journal (and the in-process ledgers behind it) with
    ``records`` committed transactions.

    ``on_chunk(filled, committed_so_far)`` fires every ``chunk``
    commits and once at the end — the hook the benchmark uses for
    incremental analytics catch-up, checkpointing, and archiving.
    Journal appends are batched in explicit transactions; SQLite
    autocommit per-statement is far too slow at the 1M scale.
    """
    path = Path(journal_path)
    registry = CollectionRegistry()
    root = registry.create(("A", "B"), num_shards=shards)
    private = registry.create(("A",), num_shards=shards)
    schema = ShardingSchema(shards)
    contracts = ContractRegistry()
    backend = SqliteBackend(path)
    filled = FilledLedger(
        path=path,
        backend=backend,
        registry=registry,
        schema=schema,
        labels=(root.label, private.label),
        shards=shards,
        key_pools=build_key_pools(schema, keys_per_shard),
    )
    books: dict[int, SequenceBook] = {}
    for shard in range(shards):
        unit = ExecutionUnit(
            identity=f"analytics-fill-{shard}",
            collections=registry,
            contracts=contracts,
            schema=schema,
            shard=shard,
            backend=backend,
        )
        filled.units[shard] = unit
        filled.archivers[shard] = LedgerArchiver(unit.ledger, backend)
        books[shard] = SequenceBook(registry, shard=shard)
    rng = random.Random(seed)
    index = 0
    while index < records:
        upper = min(index + chunk, records)
        with backend.batch():
            for i in range(index, upper):
                shard = i % shards
                # Rotate by rounds, not raw index: ``i % ROOT_EVERY``
                # would alias with ``i % shards`` and starve the root
                # collection on every shard but 0.
                collection: DataCollection = (
                    root if (i // shards) % ROOT_EVERY == 0 else private
                )
                key = rng.choice(filled.key_pools[shard])
                tx = Transaction(
                    client=f"client-{i % CLIENTS}",
                    timestamp=i,
                    operation=Operation("kv", "set", (key, i)),
                    scope=collection.scope,
                    keys=(key,),
                    request_id=i + 1,
                    confidential=False,
                )
                tx_id = books[shard].assign(collection, shard)
                books[shard].commit(tx_id)
                filled.units[shard].commit(
                    OrderedTransaction(tx, (tx_id,)),
                    tx_id,
                    reply_to_client=False,
                )
        index = upper
        filled.records = index
        if on_chunk is not None:
            on_chunk(filled, index)
    return filled
