"""Journal → analytics ingest with incremental watermark catch-up.

The replica journal (:class:`repro.storage.sqlite.SqliteBackend`) is
the hand-off point between the consensus write path and the analytics
read path: every committed effect is already journaled per
collection-shard namespace, so analytics never touches a replica —
ingest opens the journal **read-only** (``file:...?mode=ro`` via
:meth:`SqliteBackend.open_reader`) and replays new records into the
typed tables of :mod:`repro.analytics.schema`.

Catch-up is incremental per ``(source journal, namespace)``: the
watermark stores the last journal **rowid** consumed.  Rowids — not
versions — are the cursor because store writes for version ``v`` can
be journaled after the head record for a later version (γ-gated
execution runs behind ordering), so a version cursor could skip
records; rowids are strictly append-ordered and survive compaction
(``DELETE`` never renumbers).

Compaction is handled through snapshot floors: when the journal was
compacted past records this ingest never saw, the namespace's durable
snapshot (``{"head", "state"}``, a stable checkpoint) is folded in
first — state becomes ``key_versions`` rows at the snapshot version,
the head anchors ``chain_heads`` — and the log suffix replays on top.
Individual transactions below the floor are not reconstructible (by
design: they were garbage-collected), but every query over state,
heads, and the retained suffix stays exact.

Replicas of one cluster journal identical per-namespace content, so a
directory of journals union-ingests into one analytics database: each
file gets its own watermark, and the natural-key ``INSERT OR IGNORE``
writes make duplicate content a no-op.
"""

from __future__ import annotations

import json
import sqlite3
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError
from repro.ledger.archive import ARCHIVE_NAMESPACE_PREFIX
from repro.storage.base import (
    KIND_HEAD,
    KIND_SEGMENT,
    KIND_WRITE,
    decode_head_payload,
    decode_namespace,
    head_digest_of,
)
from repro.storage.sqlite import SqliteBackend


@dataclass
class IngestStats:
    """What one catch-up pass consumed and produced."""

    sources: int = 0
    namespaces: int = 0
    records: int = 0           # journal rows consumed
    txs: int = 0               # transaction rows indexed
    writes: int = 0            # key_versions rows indexed
    segments: int = 0          # segment manifests indexed
    snapshot_floors: int = 0   # namespaces anchored from a snapshot

    def merge(self, other: "IngestStats") -> None:
        for name in (
            "sources", "namespaces", "records", "txs", "writes",
            "segments", "snapshot_floors",
        ):
            setattr(self, name, getattr(self, name) + getattr(other, name))

    def as_dict(self) -> dict:
        return {
            "sources": self.sources,
            "namespaces": self.namespaces,
            "records": self.records,
            "txs": self.txs,
            "writes": self.writes,
            "segments": self.segments,
            "snapshot_floors": self.snapshot_floors,
        }


@dataclass
class AnalyticsIngest:
    """Replays journal namespaces into the analytics tables."""

    conn: sqlite3.Connection
    #: Batch size for the surrounding transaction on the analytics
    #: side; one BEGIN/COMMIT per catch-up pass is the sweet spot for
    #: the fill benchmark's chunked ingest.
    _floors: dict[tuple[str, str], int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def catch_up(self, journal: str | Path, source: str | None = None) -> IngestStats:
        """Ingest everything new in one journal file (or every
        ``*.sqlite`` journal in a directory)."""
        journal = Path(journal)
        if journal.is_dir():
            stats = IngestStats()
            files = sorted(journal.glob("*.sqlite"))
            if not files:
                raise StorageError(f"no *.sqlite journals under {journal}")
            for path in files:
                stats.merge(self._catch_up_file(path, source=path.name))
            return stats
        return self._catch_up_file(journal, source=source or journal.name)

    # ------------------------------------------------------------------
    # one source journal
    # ------------------------------------------------------------------
    def _catch_up_file(self, path: Path, source: str) -> IngestStats:
        stats = IngestStats(sources=1)
        reader = SqliteBackend.open_reader(path)
        try:
            tables = [
                row[0]
                for row in reader.execute(
                    "SELECT name FROM sqlite_master"
                    " WHERE type='table' AND name LIKE 'log_%' ORDER BY name"
                )
            ]
            self.conn.execute("BEGIN IMMEDIATE")
            try:
                for table in tables:
                    encoded = table[len("log_"):]
                    namespace = decode_namespace(encoded)
                    stats.namespaces += 1
                    self._ingest_namespace(
                        reader, source, table, encoded, namespace, stats
                    )
                self.conn.execute("COMMIT")
            except BaseException:
                self.conn.execute("ROLLBACK")
                raise
        finally:
            reader.close()
        return stats

    def _ingest_namespace(
        self,
        reader: sqlite3.Connection,
        source: str,
        table: str,
        encoded: str,
        namespace: tuple[str, int],
        stats: IngestStats,
    ) -> None:
        label, shard = namespace
        watermark = self.conn.execute(
            "SELECT last_rowid FROM watermarks WHERE source=? AND ns=?",
            (source, encoded),
        ).fetchone()
        last_rowid = watermark[0] if watermark else 0
        last_version = 0
        if not label.startswith(ARCHIVE_NAMESPACE_PREFIX):
            stats.snapshot_floors += self._apply_snapshot_floor(
                reader, source, encoded, label, shard
            )
        rows = reader.execute(
            f'SELECT id, version, kind, key, value FROM "{table}"'
            " WHERE id > ? ORDER BY id",
            (last_rowid,),
        )
        consumed = 0
        for rowid, version, kind, key, value in rows:
            consumed += 1
            last_rowid = rowid
            last_version = max(last_version, version)
            payload = json.loads(value) if value is not None else None
            if kind == KIND_WRITE:
                self._ingest_write(label, shard, version, key, payload)
                stats.writes += 1
            elif kind == KIND_HEAD:
                stats.txs += self._ingest_head(label, shard, version, payload)
            elif kind == KIND_SEGMENT:
                self._ingest_segment(payload)
                stats.segments += 1
            # KIND_MARK advances versions without effects: nothing to index.
        stats.records += consumed
        if consumed or watermark is None:
            self.conn.execute(
                "INSERT INTO watermarks (source, ns, last_rowid, version)"
                " VALUES (?, ?, ?, ?)"
                " ON CONFLICT(source, ns) DO UPDATE SET"
                " last_rowid=MAX(watermarks.last_rowid, excluded.last_rowid),"
                " version=MAX(watermarks.version, excluded.version)",
                (source, encoded, last_rowid, last_version),
            )

    # ------------------------------------------------------------------
    # record kinds
    # ------------------------------------------------------------------
    def _apply_snapshot_floor(
        self,
        reader: sqlite3.Connection,
        source: str,
        encoded: str,
        label: str,
        shard: int,
    ) -> int:
        """Fold in the namespace's durable snapshot when it covers
        versions this ingest has not seen (fresh database, or journal
        compacted past the watermark).  Returns 1 if a floor was
        applied."""
        row = reader.execute(
            "SELECT version, payload FROM snapshots WHERE ns=?", (encoded,)
        ).fetchone()
        if row is None:
            return 0
        version, raw = row
        floor_key = (source, encoded)
        if self._floors.get(floor_key, -1) >= version:
            return 0
        known = self.conn.execute(
            "SELECT height FROM chain_heads WHERE label=? AND shard=?",
            (label, shard),
        ).fetchone()
        self._floors[floor_key] = version
        if known is not None and known[0] >= version:
            return 0
        payload = json.loads(raw)
        if not isinstance(payload, dict):
            return 0
        for key, value in sorted(payload.get("state", {}).items()):
            self._ingest_write(label, shard, version, key, value)
        head = payload.get("head")
        if head is not None:
            self._bump_head(label, shard, version, head)
        return 1

    def _ingest_write(
        self, label: str, shard: int, version: int, key: str, value
    ) -> None:
        encoded = json.dumps(value, sort_keys=True, separators=(",", ":"))
        self.conn.execute(
            "INSERT OR IGNORE INTO key_versions"
            " (label, shard, key, version, value) VALUES (?, ?, ?, ?, ?)",
            (label, shard, key, version, encoded),
        )
        self.conn.execute(
            "INSERT INTO entity_latest (label, shard, key, version, value)"
            " VALUES (?, ?, ?, ?, ?)"
            " ON CONFLICT(label, shard, key) DO UPDATE SET"
            " version=excluded.version, value=excluded.value"
            " WHERE excluded.version >= entity_latest.version",
            (label, shard, key, version, encoded),
        )

    def _ingest_head(self, label: str, shard: int, version: int, value) -> int:
        head = head_digest_of(value)
        if head is not None:
            self._bump_head(label, shard, version, head)
        tx = decode_head_payload(value)
        if tx is None:
            return 0  # legacy bare-digest head: no projection to index
        self.conn.execute(
            "INSERT OR IGNORE INTO txs"
            " (label, shard, seq, request_id, client, ts, body, head)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
            (
                label, shard, version,
                tx["request_id"], tx["client"], tx["timestamp"],
                tx["body"], tx["head"],
            ),
        )
        for key in tx["keys"]:
            self.conn.execute(
                "INSERT OR IGNORE INTO tx_keys (label, shard, seq, key)"
                " VALUES (?, ?, ?, ?)",
                (label, shard, version, key),
            )
        if version > 1:
            self.conn.execute(
                "INSERT OR IGNORE INTO edges VALUES (?, ?, ?, ?, ?, ?, ?)",
                (label, shard, version, label, shard, version - 1, "chain"),
            )
        for dep_label, dep_shard, dep_seq in tx["gamma"]:
            self.conn.execute(
                "INSERT OR IGNORE INTO edges VALUES (?, ?, ?, ?, ?, ?, ?)",
                (label, shard, version, dep_label, dep_shard, dep_seq, "gamma"),
            )
        return 1

    def _ingest_segment(self, payload) -> None:
        self.conn.execute(
            "INSERT OR IGNORE INTO segments"
            " (label, shard, from_seq, to_seq, anchor, head)"
            " VALUES (?, ?, ?, ?, ?, ?)",
            (
                payload["label"], payload["shard"],
                payload["from_seq"], payload["to_seq"],
                payload["anchor"], payload["head"],
            ),
        )

    def _bump_head(self, label: str, shard: int, height: int, head: str) -> None:
        self.conn.execute(
            "INSERT INTO chain_heads (label, shard, height, head)"
            " VALUES (?, ?, ?, ?)"
            " ON CONFLICT(label, shard) DO UPDATE SET"
            " height=excluded.height, head=excluded.head"
            " WHERE excluded.height >= chain_heads.height",
            (label, shard, height, head),
        )
