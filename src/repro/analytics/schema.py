"""The analytics store schema.

One SQLite database per analytics deployment, fed by
:mod:`repro.analytics.ingest` from replica journals and queried by
:mod:`repro.analytics.engine`.  Typed, indexed projections of the
journal — never the source of truth (the ledger is):

- ``txs`` — one row per committed transaction: position ``(label,
  shard, seq)``, the client request identity, and the body / content
  head digests journaled with the ledger head record;
- ``tx_keys`` — the keys each transaction declared (drives
  ``key_history``);
- ``key_versions`` — every journaled store write, the multi-versioned
  datastore as a relation (drives ``as_of`` point-in-time reads);
- ``edges`` — the provenance DAG: per-chain predecessor edges plus γ
  dependency edges (drives the recursive ``provenance_chain`` CTE);
- ``segments`` — archived segment manifests (digest skeletons);
- ``entity_latest`` / ``chain_heads`` — materialized listing views,
  refreshed incrementally on ingest;
- ``watermarks`` — per (source journal, namespace) ingest cursors:
  the last journal rowid consumed and the highest version seen.

Primary keys are the natural composite keys and tables are
``WITHOUT ROWID``, so re-ingesting the same journal (or the identical
journal of another replica) is idempotent by construction.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path

#: Bumped when the table shapes change; recorded in ``meta`` and in
#: every ``BENCH_analytics.json`` artifact.
SCHEMA_VERSION = 1

DDL = (
    "CREATE TABLE IF NOT EXISTS meta ("
    " k TEXT PRIMARY KEY, v TEXT NOT NULL) WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS watermarks ("
    " source TEXT NOT NULL, ns TEXT NOT NULL,"
    " last_rowid INTEGER NOT NULL DEFAULT 0,"
    " version INTEGER NOT NULL DEFAULT 0,"
    " PRIMARY KEY (source, ns)) WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS txs ("
    " label TEXT NOT NULL, shard INTEGER NOT NULL, seq INTEGER NOT NULL,"
    " request_id INTEGER, client TEXT, ts INTEGER,"
    " body TEXT, head TEXT,"
    " PRIMARY KEY (label, shard, seq)) WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS tx_keys ("
    " label TEXT NOT NULL, shard INTEGER NOT NULL, seq INTEGER NOT NULL,"
    " key TEXT NOT NULL,"
    " PRIMARY KEY (label, shard, seq, key)) WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS key_versions ("
    " label TEXT NOT NULL, shard INTEGER NOT NULL, key TEXT NOT NULL,"
    " version INTEGER NOT NULL, value TEXT,"
    " PRIMARY KEY (label, shard, key, version)) WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS edges ("
    " label TEXT NOT NULL, shard INTEGER NOT NULL, seq INTEGER NOT NULL,"
    " dep_label TEXT NOT NULL, dep_shard INTEGER NOT NULL,"
    " dep_seq INTEGER NOT NULL, kind TEXT NOT NULL,"
    " PRIMARY KEY (label, shard, seq, dep_label, dep_shard, dep_seq, kind)"
    ") WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS segments ("
    " label TEXT NOT NULL, shard INTEGER NOT NULL,"
    " from_seq INTEGER NOT NULL, to_seq INTEGER NOT NULL,"
    " anchor TEXT NOT NULL, head TEXT NOT NULL,"
    " PRIMARY KEY (label, shard, from_seq)) WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS entity_latest ("
    " label TEXT NOT NULL, shard INTEGER NOT NULL, key TEXT NOT NULL,"
    " version INTEGER NOT NULL, value TEXT,"
    " PRIMARY KEY (label, shard, key)) WITHOUT ROWID",
    "CREATE TABLE IF NOT EXISTS chain_heads ("
    " label TEXT NOT NULL, shard INTEGER NOT NULL,"
    " height INTEGER NOT NULL, head TEXT,"
    " PRIMARY KEY (label, shard)) WITHOUT ROWID",
    "CREATE INDEX IF NOT EXISTS idx_tx_keys_key"
    " ON tx_keys (key, label, shard, seq)",
    "CREATE INDEX IF NOT EXISTS idx_txs_request ON txs (request_id)",
    "CREATE INDEX IF NOT EXISTS idx_txs_ts ON txs (label, shard, ts)",
    "CREATE INDEX IF NOT EXISTS idx_key_versions_key ON key_versions (key)",
    "CREATE INDEX IF NOT EXISTS idx_edges_dep"
    " ON edges (dep_label, dep_shard, dep_seq)",
)

_PRAGMAS = (
    ("journal_mode", "WAL"),
    ("synchronous", "NORMAL"),
    ("busy_timeout", "30000"),
)


def initialize(conn: sqlite3.Connection) -> None:
    """Create the schema (idempotent) and stamp the version."""
    for statement in DDL:
        conn.execute(statement)
    conn.execute(
        "INSERT INTO meta (k, v) VALUES ('schema_version', ?)"
        " ON CONFLICT(k) DO UPDATE SET v=excluded.v",
        (str(SCHEMA_VERSION),),
    )


def open_analytics(path: str | Path) -> sqlite3.Connection:
    """Open (creating if needed) an analytics database read-write.

    This is the *ingest* side.  Query-only consumers should go through
    :meth:`repro.analytics.engine.AnalyticsEngine.from_path`, which
    opens read-only."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    conn = sqlite3.connect(str(path), isolation_level=None)
    for pragma, value in _PRAGMAS:
        conn.execute(f"PRAGMA {pragma}={value}")
    initialize(conn)
    return conn
