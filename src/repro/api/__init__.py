"""``repro.api`` — the session/futures client surface.

The canonical way to drive any system in this repo:

- :class:`~repro.api.network.Network` wraps a deployment with
  lifecycle (context manager, storage teardown) and constructs
  workflows and sessions;
- :class:`~repro.api.session.Session` exposes typed verbs
  (``put``/``get``/``invoke``) that build, seal, and submit
  transactions internally, plus replica inspection (``read``/``sees``);
- :class:`~repro.api.futures.TxHandle` futures resolve by advancing
  the discrete-event simulator until the reply quorum lands, reporting
  a structured :class:`~repro.api.futures.TxResult`
  (:class:`~repro.api.futures.TxStatus` COMMITTED/ABORTED/TIMED_OUT);
  :func:`~repro.api.futures.wait_all` resolves batches in one pass;
- :class:`~repro.api.driver.SystemDriver` is the protocol every
  benchmarked system implements so one generic ``run_point`` measures
  them all (implementations in :mod:`repro.bench.drivers`).

See ``docs/api.md`` for the full tour and the migration table from the
raw ``Client``/``Deployment`` plumbing.
"""

from repro.api.driver import DriverConfig, SystemDriver
from repro.api.futures import TxHandle, TxResult, TxStatus, wait_all
from repro.api.network import Network
from repro.api.session import Session

__all__ = [
    "DriverConfig",
    "Network",
    "Session",
    "SystemDriver",
    "TxHandle",
    "TxResult",
    "TxStatus",
    "wait_all",
]
