"""The SystemDriver protocol: one interface for every benchmarked system.

The bench harness compares Qanaat's six protocol configurations against
Hyperledger Fabric (three variants), Caper, and the single-enterprise
sharded baselines (SharPer, AHL).  Historically each family had its own
``run_*_point`` function with a bespoke submission closure; drivers
collapse that to a single generic measurement loop, and drivers are
built from declarative :class:`~repro.scenarios.spec.ScenarioSpec`
objects (topology + workload + fault timeline + measurement):

    driver = SomeDriver.build(spec)     # wire deployment + workload
    driver.submit_next()                # one open-loop arrival
    driver.run(seconds)                 # advance simulated time
    driver.metrics()                    # client-observed completions

Concrete implementations live in :mod:`repro.bench.drivers`; anything
that implements this protocol (a new baseline, a new Qanaat variant)
plugs into ``repro.bench.runner.run_point`` and every canned
experiment for free.

:class:`DriverConfig` is the pre-scenario flat-kwargs form, kept as a
shim: ``DriverConfig(...).to_spec()`` produces the equivalent spec,
and ``repro.bench.drivers.build_driver`` still accepts either.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Metrics
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.costs import CalibratedCost
    from repro.sim.kernel import Simulator
    from repro.sim.latency import LatencyModel
    from repro.workload.generator import WorkloadMix


@dataclass
class DriverConfig:
    """Flat-kwargs driver input (deprecated shim over ScenarioSpec).

    Knobs a family does not support are ignored by its driver (Fabric
    has no CPU cost model or checkpointing; Caper cannot shard), which
    is exactly how the per-family runners treated them.
    """

    system: str
    mix: "WorkloadMix"
    enterprises: tuple[str, ...] = ("A", "B", "C", "D")
    shards: int = 4
    latency: "LatencyModel | None" = None
    cost: "CalibratedCost | None" = None
    batch_size: int = 64
    seed: int = 1
    crash_nodes: int = 0
    checkpoint_interval: int = 0

    def to_spec(self) -> "ScenarioSpec":
        """The equivalent declarative spec (measurement defaults)."""
        from repro.scenarios.spec import (
            ScenarioSpec,
            TopologySpec,
            WorkloadSpec,
        )

        return ScenarioSpec(
            name=self.system,
            system=self.system,
            topology=TopologySpec(
                enterprises=self.enterprises,
                shards=self.shards,
                batch_size=self.batch_size,
                crash_nodes=self.crash_nodes,
                checkpoint_interval=self.checkpoint_interval,
            ),
            workload=WorkloadSpec(mix=self.mix),
            seed=self.seed,
            latency=self.latency,
            cost=self.cost,
        )


@runtime_checkable
class SystemDriver(Protocol):
    """A benchmarked system behind a uniform measurement surface."""

    #: Label reported in results (protocol/variant name).
    name: str

    @classmethod
    def build(cls, spec: "ScenarioSpec") -> "SystemDriver":
        """Wire the deployment, workload, and clients for one scenario."""
        ...

    @property
    def sim(self) -> "Simulator":
        """The discrete-event simulator arrivals are scheduled on."""
        ...

    def submit_next(self) -> None:
        """Submit the workload's next transaction (one open-loop arrival)."""
        ...

    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds."""
        ...

    def metrics(self) -> "Metrics":
        """Client-observed completions for throughput/latency windows."""
        ...

    def close(self) -> None:
        """Release any resources (storage backends) the system holds."""
        ...
