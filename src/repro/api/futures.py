"""Transaction futures: the result side of the session API.

Every submission through a :class:`~repro.api.session.Session` returns
a :class:`TxHandle`.  The handle is a *future over simulated time*:
``handle.result(timeout=...)`` advances the discrete-event simulator
just far enough for the reply quorum to land (or for the deadline to
pass), then reports a structured :class:`TxResult` instead of the raw
``(rid, latency, result)`` tuples clients keep internally.

Status semantics:

- ``COMMITTED`` — the client accepted a reply quorum and the contract
  executed successfully;
- ``ABORTED`` — the reply quorum landed but execution rejected the
  operation (contract error, unreadable sealed body): the transaction
  is finished and will never produce a value;
- ``TIMED_OUT`` — the deadline passed with the request still in
  flight.  The handle stays live: retransmission may still complete it
  later, and a subsequent ``result()`` call can observe the commit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Iterable

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.network import Network
    from repro.core.client import Client
    from repro.datamodel.transaction import Transaction

#: Default simulated-time budget for ``result()`` / ``wait_all``;
#: generous next to the client's 0.5 s retransmission timer so a
#: primary crash still resolves through view change within one call.
DEFAULT_TIMEOUT = 30.0

#: How far a single simulator advance may run while polling.  Events
#: fire in timestamp order regardless of slice boundaries, so slicing
#: never changes behavior — it only bounds how far past completion the
#: clock runs.
_POLL_STEP = 0.05


class TxStatus(enum.Enum):
    """Lifecycle of a submitted transaction, as the client observes it."""

    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"
    TIMED_OUT = "timed_out"


@dataclass(frozen=True)
class TxResult:
    """Structured outcome of one transaction."""

    request_id: int
    status: TxStatus
    value: Any = None
    latency: float | None = None

    @property
    def ok(self) -> bool:
        return self.status is TxStatus.COMMITTED


def _is_abort(value: Any) -> bool:
    """Executors report rejected operations as sentinel strings
    (``<error: ...>`` for contract rejections, ``<unreadable>`` when a
    sealed body cannot be opened); everything else committed.  The
    sentinels are owned by :mod:`repro.core.executor`; they are
    reserved values — a contract whose *successful* result mimicked
    them would be misreported as ABORTED."""
    from repro.core.executor import is_error_result

    return is_error_result(value)


class TxHandle:
    """A future for one submitted transaction."""

    def __init__(self, network: "Network", client: "Client", tx: "Transaction"):
        self.network = network
        self.client = client
        self.tx = tx
        self.request_id = tx.request_id
        self._result: TxResult | None = None
        client.on_complete(tx.request_id, self._on_complete)

    # ------------------------------------------------------------------
    def _on_complete(self, rid: int, result: Any, latency: float) -> None:
        status = TxStatus.ABORTED if _is_abort(result) else TxStatus.COMMITTED
        self._result = TxResult(rid, status, result, latency)

    @property
    def done(self) -> bool:
        return self._result is not None

    @property
    def status(self) -> TxStatus:
        return self._result.status if self._result else TxStatus.PENDING

    # ------------------------------------------------------------------
    def result(self, timeout: float = DEFAULT_TIMEOUT) -> TxResult:
        """Advance simulated time until the reply lands or ``timeout``
        simulated seconds pass; never blocks wall-clock."""
        deadline = self.network.now + timeout
        # The 1e-9 guard stops float residue from spinning the loop on
        # sub-ulp steps the simulator cannot advance by.
        while not self.done and self.network.now < deadline - 1e-9:
            self.network.step(min(_POLL_STEP, deadline - self.network.now))
        if self._result is None:
            return TxResult(self.request_id, TxStatus.TIMED_OUT)
        return self._result

    def value(self, timeout: float = DEFAULT_TIMEOUT) -> Any:
        """Shorthand: the committed result value (None if not committed)."""
        return self.result(timeout).value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TxHandle(rid={self.request_id}, status={self.status.value})"


def wait_all(
    handles: Iterable[TxHandle], timeout: float = DEFAULT_TIMEOUT
) -> list[TxResult]:
    """Resolve a batch of handles in one simulator pass.

    Advances time until every handle is done (or the shared deadline
    passes), then returns one :class:`TxResult` per handle in input
    order — the efficient path for throughput-style runs, which would
    otherwise re-enter the simulator once per transaction.
    """
    handles = list(handles)
    if not handles:
        return []
    # Handles may span several independent networks (side-by-side
    # configuration comparisons); each network's simulator advances on
    # its own clock until its handles resolve.
    networks = {id(h.network): h.network for h in handles}
    for network in networks.values():
        group = [h for h in handles if h.network is network]
        deadline = network.now + timeout
        while network.now < deadline - 1e-9 and not all(h.done for h in group):
            network.step(min(_POLL_STEP, deadline - network.now))
    return [
        h._result
        if h._result is not None
        else TxResult(h.request_id, TxStatus.TIMED_OUT)
        for h in handles
    ]
