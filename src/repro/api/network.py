"""The Network facade: lifecycle + session construction for a Qanaat
deployment.

``Network`` is the front door of the repo: it owns a
:class:`~repro.core.deployment.Deployment`, hands out
:class:`~repro.api.session.Session` objects, advances simulated time on
behalf of transaction futures, and routes replica reads so callers
never dig through ``deployment.executors_of(...)``.  As a context
manager it tears down storage backends on exit::

    with Network(DeploymentConfig(enterprises=("A", "B"))) as net:
        net.workflow("demo", ("A", "B"))
        session = net.session("A")
        session.put({"A", "B"}, "k", 1).result()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.api.session import Session, _label
from repro.core.config import DeploymentConfig
from repro.core.deployment import Deployment, Metrics

if TYPE_CHECKING:  # pragma: no cover
    from repro.datamodel.workflow import CollaborationWorkflow
    from repro.scenarios.spec import ScenarioSpec
    from repro.sim.costs import CostModel
    from repro.sim.latency import LatencyModel


class Network:
    """A running multi-enterprise network and its client sessions."""

    def __init__(
        self,
        config: DeploymentConfig | Deployment,
        latency: "LatencyModel | None" = None,
        cost_model: "CostModel | None" = None,
    ):
        if isinstance(config, Deployment):
            self.deployment = config
        else:
            self.deployment = Deployment(
                config, latency=latency, cost_model=cost_model
            )

    # ------------------------------------------------------------------
    # construction from declarative scenarios
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(
        cls, spec: "ScenarioSpec", **config_overrides: Any
    ) -> "Network":
        """Open a network described by a declarative scenario spec.

        Builds the deployment through :func:`repro.scenarios.build`
        (topology wired, fault timeline armed) and wraps it in a
        facade.  Runtime-only knobs — a fresh ``storage_dir``, test
        timeouts — ride in as :class:`DeploymentConfig` keyword
        overrides::

            spec = example_scenario("quickstart")
            with Network.from_scenario(spec) as net:
                ...
        """
        from repro.scenarios import build

        if config_overrides:
            spec = spec.configured(**config_overrides)
        return cls(build(spec))

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "Network":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Release storage resources held by the deployment's nodes."""
        self.deployment.close()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def workflow(
        self, name: str, enterprises: Iterable[str], contract: str = "kv"
    ) -> "CollaborationWorkflow":
        """Create a collaboration workflow (root + local collections)."""
        return self.deployment.create_workflow(name, enterprises, contract)

    def session(self, enterprise: str, contract: str = "kv") -> Session:
        """Open a client session for one enterprise."""
        return Session(self, enterprise, contract=contract)

    def sessions(
        self, enterprise: str, count: int, contract: str = "kv"
    ) -> list[Session]:
        """Open a bounded pool of client sessions for one enterprise —
        the API-level face of client multiplexing: many logical users
        (population ranks) ride ``count`` wire sessions via
        ``pool[rank % count]``."""
        if count < 1:
            raise ValueError("session pools need count >= 1")
        return [
            Session(self, enterprise, contract=contract)
            for _ in range(count)
        ]

    def replay_trace(
        self,
        trace: "Any | str",
        pool: int = 1,
        confidential: bool = False,
    ) -> int:
        """Replay a captured workload trace against this network.

        ``trace`` is a :class:`~repro.workload.trace.WorkloadTrace` or
        a path to its JSONL serialization.  One wire client pool of
        ``pool`` actors per enterprise named in the trace carries the
        entries (logical ranks pick slots, like the scenario engine);
        schedules everything via the single-cursor replay and returns
        the entry count — advance time with :meth:`run` afterwards.
        """
        from pathlib import Path

        from repro.workload.trace import WorkloadTrace

        if not isinstance(trace, WorkloadTrace):
            trace = WorkloadTrace.from_jsonl(Path(trace).read_text())
        enterprises = sorted({e.spec.enterprise for e in trace.entries})
        clients = {
            e: [
                self.deployment.create_client(e) for _ in range(max(pool, 1))
            ]
            for e in enterprises
        }
        return trace.replay(self.deployment, clients, confidential=confidential)

    # ------------------------------------------------------------------
    # time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.deployment.sim.now

    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds."""
        self.deployment.run(duration)

    def step(self, duration: float) -> None:
        """One polling slice for futures (bounded simulator advance)."""
        self.deployment.run(duration)

    def settle(self, duration: float = 1.0) -> None:
        """Let in-flight work drain: replies resolve at the client's
        quorum, but backup replicas may still be applying — call this
        before inspecting replica state across the network."""
        self.deployment.run(duration)

    # ------------------------------------------------------------------
    # replica reads (the facade behind Session.read / Session.sees)
    # ------------------------------------------------------------------
    def _replica(self, cluster_name: str) -> Any:
        """One execution unit of the cluster, preferring live nodes —
        a crashed replica's store is stale, not representative."""
        deployment = self.deployment
        if deployment.config.separate_execution:
            nodes = deployment.firewalls[cluster_name].execution_nodes
        else:
            members = deployment.directory.get(cluster_name).members
            nodes = [deployment.nodes[m] for m in members]
        for node in nodes:
            if not node.crashed:
                return node.executor
        return nodes[0].executor

    def read(
        self,
        enterprise: str,
        scope: Iterable[str] | str,
        key: str,
        default: Any = None,
    ) -> Any:
        """What ``enterprise``'s replica holds for ``key`` in the
        collection named by ``scope``."""
        label = _label(scope)
        deployment = self.deployment
        shard = deployment.schema.shard_of(key)
        info = deployment.directory.at(enterprise, shard)
        executor = self._replica(info.name)
        return executor.store.read(label, key, shard=shard, default=default)

    def holds(self, enterprise: str, scope: Iterable[str] | str) -> bool:
        """Whether ``enterprise`` replicates any shard of the collection."""
        label = _label(scope)
        deployment = self.deployment
        for shard in range(deployment.config.shards_per_enterprise):
            info = deployment.directory.at(enterprise, shard)
            executor = self._replica(info.name)
            if any(ns_label == label for ns_label, _ in executor.store.namespaces()):
                return True
        return False

    def ledger(self, enterprise: str, shard: int = 0) -> Any:
        """One replica's DAG ledger (consistency audits, §3.5)."""
        return self.replica_ledgers(enterprise, shard)[0]

    def replica_ledgers(self, enterprise: str, shard: int = 0) -> list[Any]:
        """Every replica ledger of one enterprise shard — light clients
        collect attested heads across these (and across enterprises)."""
        info = self.deployment.directory.at(enterprise, shard)
        return [e.ledger for e in self.deployment.executors_of(info.name)]

    # ------------------------------------------------------------------
    # observability and fault injection
    # ------------------------------------------------------------------
    @property
    def config(self) -> DeploymentConfig:
        return self.deployment.config

    @property
    def metrics(self) -> Metrics:
        return self.deployment.metrics

    @property
    def contracts(self) -> Any:
        return self.deployment.contracts

    @property
    def collections(self) -> Any:
        return self.deployment.collections

    @property
    def firewalls(self) -> dict[str, Any]:
        return self.deployment.firewalls

    def cluster_members(self, cluster_name: str) -> tuple[str, ...]:
        return self.deployment.directory.get(cluster_name).members

    def crash_node(self, node_id: str) -> None:
        self.deployment.crash_node(node_id)

    def primary_of(self, cluster_name: str) -> str:
        return self.deployment.primary_of(cluster_name)
