"""Sessions: typed verbs over one enterprise's client.

A :class:`Session` is the unit of interaction with a Qanaat network:
it owns one :class:`~repro.core.client.Client` of one enterprise and
turns ``put/get/invoke`` calls into sealed, signed transactions —
callers never touch :class:`~repro.datamodel.transaction.Transaction`
or reply tuples.  Every verb returns a
:class:`~repro.api.futures.TxHandle`.

Reads come in two flavors, matching the paper's model:

- :meth:`get` is a *transactional* read: it goes through consensus and
  returns the committed value under the §3.2 read rule;
- :meth:`read` is a *replica inspection*: what this enterprise's own
  execution nodes hold for a collection — the confidentiality surface
  the examples print (``None`` for collections the enterprise is
  outside of).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Iterable

from repro.api.futures import TxHandle
from repro.datamodel.collections import scope_label
from repro.datamodel.transaction import Operation

if TYPE_CHECKING:  # pragma: no cover
    from repro.api.network import Network
    from repro.core.client import Client


class Session:
    """A client session scoped to one enterprise (and a default
    contract, typically the workflow's)."""

    def __init__(self, network: "Network", enterprise: str, contract: str = "kv"):
        self.network = network
        self.enterprise = enterprise
        self.contract = contract
        self.client: "Client" = network.deployment.create_client(enterprise)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def submit(
        self,
        scope: Iterable[str],
        operation: Operation,
        keys: tuple[str, ...] = (),
        confidential: bool = True,
    ) -> TxHandle:
        """Build, seal, and submit a transaction; return its future."""
        tx = self.client.make_transaction(
            scope, operation, keys=keys, confidential=confidential
        )
        self.client.submit(tx)
        from repro import obs

        if obs.TRACER is not None:
            # The client opened the root span in submit(); annotate it
            # with the API-level intent (sealed ops hide the method
            # from everyone downstream, including the tracer).
            obs.TRACER.tx_annotate(
                tx.request_id,
                contract=operation.contract,
                method=operation.name,
                enterprise=self.enterprise,
            )
        return TxHandle(self.network, self.client, tx)

    def invoke(
        self,
        scope: Iterable[str],
        contract: str | None,
        method: str,
        *args: Any,
        keys: tuple[str, ...] = (),
        confidential: bool = True,
    ) -> TxHandle:
        """Invoke a contract method on the collection named by ``scope``.

        ``contract=None`` uses the session default.  ``keys`` drive the
        shard mapping; when omitted, string arguments that look like
        record keys should be passed explicitly — the default routes to
        shard 0.
        """
        operation = Operation(contract or self.contract, method, tuple(args))
        return self.submit(scope, operation, keys=keys, confidential=confidential)

    def put(
        self,
        scope: Iterable[str],
        key: str,
        value: Any,
        confidential: bool = True,
    ) -> TxHandle:
        """Write one record through the collection's kv contract."""
        return self.invoke(
            scope, "kv", "set", key, value, keys=(key,), confidential=confidential
        )

    def get(self, scope: Iterable[str], key: str) -> TxHandle:
        """Transactional read through consensus (committed value)."""
        return self.invoke(scope, "kv", "get", key, keys=(key,))

    # ------------------------------------------------------------------
    # replica inspection (the read path that used to poke executors)
    # ------------------------------------------------------------------
    def read(self, scope: Iterable[str], key: str, default: Any = None) -> Any:
        """What this enterprise's replica holds for ``key`` in the
        collection named by ``scope`` — ``default`` when the enterprise
        is outside the collection (it never receives the data)."""
        return self.network.read(self.enterprise, scope, key, default=default)

    def sees(self, scope: Iterable[str]) -> bool:
        """Whether this enterprise's replica holds *any* state for the
        collection — the examples' confidentiality-surface check."""
        return self.network.holds(self.enterprise, scope)

    # ------------------------------------------------------------------
    @property
    def received_leaks(self) -> list[Any]:
        """Smuggled plaintexts that reached this session's client
        (the privacy-firewall demos assert this stays empty)."""
        return self.client.received_leaks

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Session({self.enterprise!r}, contract={self.contract!r})"


def _label(scope: Iterable[str] | str) -> str:
    """Accept a scope iterable ({'A','B'}) or a ready label ('AB')."""
    if isinstance(scope, str):
        return scope
    return scope_label(scope)
