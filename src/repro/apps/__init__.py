"""Domain application logic built on Qanaat's public API.

Three workflows matching the paper's motivating applications (§1):
supply chain management (:mod:`repro.apps.supplychain`), healthcare
(:mod:`repro.apps.healthcare`), and multi-platform crowdworking
(:mod:`repro.apps.crowdwork`).
"""

from repro.apps.crowdwork import (
    WORK_CAP,
    CrowdworkContract,
    build_crowdwork_network,
)
from repro.apps.healthcare import HealthcareContract, build_healthcare_network
from repro.apps.supplychain import SupplyChainContract

__all__ = [
    "CrowdworkContract",
    "HealthcareContract",
    "SupplyChainContract",
    "WORK_CAP",
    "build_crowdwork_network",
    "build_healthcare_network",
]
