"""Multi-platform crowdworking workflow (§1: "multi-platform
crowdworking [10]" — the SEPAR setting).

Several crowdworking platforms collaborate so that workers and
requesters can operate across platforms, while each platform keeps its
own matching business confidential:

- **root collection** — cross-platform task board and worker registry:
  tasks any platform's workers may take, plus global anti-abuse state
  (a worker's aggregate task count enforces a fair-work cap across
  platforms — the regulation SEPAR motivates, which requires exactly
  the cross-platform consistency Caper/Fabric lack);
- **local collections** — each platform's internal matching engine,
  fee schedules, and worker quality scores;
- **intermediate collections** — bilateral platform agreements, e.g.
  revenue-sharing terms for tasks relayed between two platforms,
  confidential from the rest.

The global work-cap check is the R2 showcase: a worker registered on
two platforms must not exceed the cap by splitting work across them,
so both platforms' assignments read and update the same root-collection
counter — one collection per scope, shared across workflows (§3.2).
"""

from __future__ import annotations

from repro.core.contracts import Contract, StoreView
from repro.datamodel.transaction import Operation
from repro.errors import DataModelError

#: Regulation: max tasks one worker may take across ALL platforms.
WORK_CAP = 5


class CrowdworkContract(Contract):
    """Shared logic for all crowdworking collections."""

    name = "crowdwork"

    def execute(self, view: StoreView, op: Operation):
        handler = getattr(self, f"_op_{op.name}", None)
        if handler is None:
            raise DataModelError(f"crowdwork has no operation {op.name!r}")
        return handler(view, *op.args)

    # ------------------------------------------------------------------
    # root collection: cross-platform task board + worker registry
    # ------------------------------------------------------------------
    def _op_register_worker(self, view, worker_id):
        key = f"worker:{worker_id}"
        if view.get(key) is not None:
            raise DataModelError(f"worker {worker_id!r} already registered")
        if view.is_local(key):
            view.put(key, {"tasks_taken": 0, "banned": False}, routing_key=key)
        return "registered"

    def _op_post_task(self, view, task_id, requester, description, reward):
        key = f"task:{task_id}"
        if view.get(key) is not None:
            raise DataModelError(f"task {task_id!r} already posted")
        if view.is_local(key):
            view.put(
                key,
                {
                    "requester": requester,
                    "description": description,
                    "reward": reward,
                    "status": "open",
                    "worker": None,
                },
                routing_key=key,
            )
        return "posted"

    def _op_claim_task(self, view, task_id, worker_id):
        """A worker claims a task; the cross-platform work cap is
        enforced against the globally consistent counter (R2)."""
        task_key = f"task:{task_id}"
        worker_key = f"worker:{worker_id}"
        task = view.get(task_key)
        worker = view.get(worker_key)
        if task is None:
            raise DataModelError(f"no task {task_id!r}")
        if worker is None:
            raise DataModelError(f"worker {worker_id!r} not registered")
        if task["status"] != "open":
            return f"<rejected: task is {task['status']}>"
        if worker["banned"]:
            return "<rejected: worker banned>"
        if worker["tasks_taken"] >= WORK_CAP:
            return "<rejected: work cap reached>"
        if view.is_local(task_key):
            view.put(
                task_key, dict(task, status="claimed", worker=worker_id),
                routing_key=task_key,
            )
        if view.is_local(worker_key):
            view.put(
                worker_key,
                dict(worker, tasks_taken=worker["tasks_taken"] + 1),
                routing_key=task_key,
            )
        return "claimed"

    def _op_complete_task(self, view, task_id):
        key = f"task:{task_id}"
        task = view.get(key)
        if task is None or task["status"] != "claimed":
            raise DataModelError(f"task {task_id!r} not claimable-complete")
        if view.is_local(key):
            view.put(key, dict(task, status="done"), routing_key=key)
        return "done"

    # ------------------------------------------------------------------
    # local collections: per-platform matching internals
    # ------------------------------------------------------------------
    def _op_score_worker(self, view, worker_id, score):
        """Platform-private quality score — never shared."""
        key = f"score:{worker_id}"
        history = view.get(key, default=[])
        if view.is_local(key):
            view.put(key, list(history) + [score], routing_key=key)
        return "scored"

    def _op_match_internally(self, view, task_id, worker_id, fee):
        """The platform's confidential matching decision, which may
        consult the public board via the read rule (§3.2)."""
        board_task = view.get(f"task:{task_id}", collection=_root_label(view))
        key = f"match:{task_id}"
        if view.is_local(key):
            view.put(
                key,
                {
                    "worker": worker_id,
                    "fee": fee,
                    "reward": board_task["reward"] if board_task else None,
                },
                routing_key=key,
            )
        return "matched"

    # ------------------------------------------------------------------
    # intermediate collections: bilateral platform agreements
    # ------------------------------------------------------------------
    def _op_agree_revenue_share(self, view, agreement_id, split):
        key = f"agreement:{agreement_id}"
        if not 0.0 <= split <= 1.0:
            raise DataModelError("split must be a fraction")
        if view.is_local(key):
            view.put(key, {"split": split, "settled": 0}, routing_key=key)
        return "agreed"

    def _op_settle_relay(self, view, agreement_id, task_id, amount):
        """Settle a relayed task under a bilateral agreement."""
        key = f"agreement:{agreement_id}"
        agreement = view.get(key)
        if agreement is None:
            raise DataModelError(f"no agreement {agreement_id!r}")
        share = round(amount * agreement["split"])
        if view.is_local(key):
            view.put(
                key,
                dict(agreement, settled=agreement["settled"] + share),
                routing_key=key,
            )
        return share


def _root_label(view: StoreView) -> str:
    own = view._registry.get_by_label(view.label)
    readable = view._registry.readable_from(own)
    return max(readable, key=lambda c: len(c.scope)).label


def build_crowdwork_network(network, platforms=("X", "Y", "Z")):
    """Wire the crowdworking collections onto a network.

    Accepts a :class:`repro.api.Network` or a raw deployment.
    """
    deployment = getattr(network, "deployment", network)
    deployment.contracts.register(CrowdworkContract())
    deployment.create_workflow("crowdwork", platforms, contract="crowdwork")
    shards = deployment.config.shards_per_enterprise
    pairs = {}
    ordered = sorted(platforms)
    for i, a in enumerate(ordered):
        for b in ordered[i + 1:]:
            collection = deployment.collections.create(
                {a, b}, contract="crowdwork", num_shards=shards
            )
            pairs[(a, b)] = collection.scope
    return {"board": frozenset(platforms), "pairs": pairs}
