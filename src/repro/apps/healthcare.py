"""Healthcare collaboration workflow (§1/§2: "healthcare [15]").

Models the multi-enterprise network the paper's introduction motivates
(MedRec-style medical data access across organizations): hospitals,
an insurer, and a pharmacy collaborate while keeping exactly the right
data in exactly the right scope:

- **root collection** — public health registry entries: vaccination
  attestations, prescription fill confirmations (verifiable by all,
  the anti-fraud requirement of §2);
- **local collections** — each hospital's clinical records, the
  insurer's actuarial models, the pharmacy's stock;
- **intermediate collections** — confidential pairs: hospital↔insurer
  claims (the pharmacy must not see diagnoses or negotiated rates),
  hospital↔pharmacy prescriptions (the insurer must not see them
  before a claim is filed).

The contract enforces referential discipline across the lattice using
the §3.2 read rule: a claim filed on d_{H,I} reads the registry entry
on the root collection it is order-dependent on.
"""

from __future__ import annotations

from repro.core.contracts import Contract, StoreView
from repro.datamodel.transaction import Operation
from repro.errors import DataModelError


class HealthcareContract(Contract):
    """Shared logic for all healthcare collections."""

    name = "healthcare"

    def execute(self, view: StoreView, op: Operation):
        handler = getattr(self, f"_op_{op.name}", None)
        if handler is None:
            raise DataModelError(f"healthcare has no operation {op.name!r}")
        return handler(view, *op.args)

    # ------------------------------------------------------------------
    # local collection: clinical records (one hospital only)
    # ------------------------------------------------------------------
    def _op_admit_patient(self, view, patient_id, condition):
        key = f"chart:{patient_id}"
        if view.get(key) is not None:
            raise DataModelError(f"patient {patient_id!r} already admitted")
        if view.is_local(key):
            view.put(
                key,
                {"condition": condition, "treatments": [], "discharged": False},
                routing_key=key,
            )
        return "admitted"

    def _op_record_treatment(self, view, patient_id, treatment, cost):
        key = f"chart:{patient_id}"
        chart = view.get(key)
        if chart is None:
            raise DataModelError(f"no chart for {patient_id!r}")
        updated = dict(
            chart,
            treatments=list(chart["treatments"]) + [(treatment, cost)],
        )
        if view.is_local(key):
            view.put(key, updated, routing_key=key)
        return "recorded"

    def _op_discharge(self, view, patient_id):
        key = f"chart:{patient_id}"
        chart = view.get(key)
        if chart is None:
            raise DataModelError(f"no chart for {patient_id!r}")
        if view.is_local(key):
            view.put(key, dict(chart, discharged=True), routing_key=key)
        return "discharged"

    # ------------------------------------------------------------------
    # root collection: public registry (all enterprises)
    # ------------------------------------------------------------------
    def _op_attest_vaccination(self, view, attestation_id, patient_id, vaccine):
        """A public, verifiable vaccination attestation — the answer to
        §2's fake-vaccine-card problem."""
        key = f"attest:{attestation_id}"
        if view.get(key) is not None:
            raise DataModelError(f"attestation {attestation_id!r} exists")
        if view.is_local(key):
            view.put(
                key,
                {"patient": patient_id, "vaccine": vaccine, "verified": True},
                routing_key=key,
            )
        return "attested"

    def _op_confirm_fill(self, view, fill_id, prescription_id):
        key = f"fill:{fill_id}"
        if view.is_local(key):
            view.put(
                key,
                {"prescription": prescription_id, "status": "filled"},
                routing_key=key,
            )
        return "confirmed"

    # ------------------------------------------------------------------
    # hospital <-> insurer collection: confidential claims
    # ------------------------------------------------------------------
    def _op_file_claim(self, view, claim_id, patient_id, amount, attestation=None):
        """File a claim; optionally validated against a public registry
        attestation read from the root collection (§3.2 read rule)."""
        key = f"claim:{claim_id}"
        if view.get(key) is not None:
            raise DataModelError(f"claim {claim_id!r} already filed")
        verified = None
        if attestation is not None:
            registry = view.get(
                f"attest:{attestation}", collection=_root_label(view)
            )
            verified = bool(registry and registry.get("verified"))
        if view.is_local(key):
            view.put(
                key,
                {
                    "patient": patient_id,
                    "amount": amount,
                    "status": "filed",
                    "attestation_verified": verified,
                },
                routing_key=key,
            )
        return "filed"

    def _op_adjudicate_claim(self, view, claim_id, approved_amount):
        key = f"claim:{claim_id}"
        claim = view.get(key)
        if claim is None:
            raise DataModelError(f"no claim {claim_id!r}")
        if claim["status"] != "filed":
            raise DataModelError(f"claim {claim_id!r} is {claim['status']}")
        status = "approved" if approved_amount >= claim["amount"] else "partial"
        if view.is_local(key):
            view.put(
                key,
                dict(claim, status=status, approved=approved_amount),
                routing_key=key,
            )
        return status

    # ------------------------------------------------------------------
    # hospital <-> pharmacy collection: confidential prescriptions
    # ------------------------------------------------------------------
    def _op_prescribe(self, view, prescription_id, patient_id, drug, dosage):
        key = f"rx:{prescription_id}"
        if view.get(key) is not None:
            raise DataModelError(f"prescription {prescription_id!r} exists")
        if view.is_local(key):
            view.put(
                key,
                {"patient": patient_id, "drug": drug, "dosage": dosage,
                 "dispensed": False},
                routing_key=key,
            )
        return "prescribed"

    def _op_dispense(self, view, prescription_id):
        key = f"rx:{prescription_id}"
        prescription = view.get(key)
        if prescription is None:
            raise DataModelError(f"no prescription {prescription_id!r}")
        if prescription["dispensed"]:
            raise DataModelError(
                f"prescription {prescription_id!r} already dispensed"
            )
        if view.is_local(key):
            view.put(key, dict(prescription, dispensed=True), routing_key=key)
        return "dispensed"


def _root_label(view: StoreView) -> str:
    """Widest collection readable from this view (the root)."""
    own = view._registry.get_by_label(view.label)
    readable = view._registry.readable_from(own)
    return max(readable, key=lambda c: len(c.scope)).label


def build_healthcare_network(network, hospital="H", insurer="I", pharmacy="P"):
    """Wire the collections of the healthcare workflow onto a network.

    Accepts a :class:`repro.api.Network` or a raw deployment.  Returns
    the scopes dict used by the examples and tests.
    """
    deployment = getattr(network, "deployment", network)
    deployment.contracts.register(HealthcareContract())
    enterprises = (hospital, insurer, pharmacy)
    deployment.create_workflow("healthcare", enterprises, contract="healthcare")
    shards = deployment.config.shards_per_enterprise
    claims = deployment.collections.create(
        {hospital, insurer}, contract="healthcare", num_shards=shards
    )
    prescriptions = deployment.collections.create(
        {hospital, pharmacy}, contract="healthcare", num_shards=shards
    )
    return {
        "registry": frozenset(enterprises),
        "clinical": frozenset({hospital}),
        "claims": claims.scope,
        "prescriptions": prescriptions.scope,
    }
