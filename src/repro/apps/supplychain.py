"""Vaccine supply-chain contract (§2, Figure 1).

Implements the collaboration workflow the paper uses as motivation:
public order/shipment/delivery steps on the root collection, internal
manufacturing steps on local collections, and confidential price
quotations on intermediate collections.  Every record carries its
provenance chain, so end-to-end tracking (the anti-counterfeiting
requirement) is a ledger query.
"""

from __future__ import annotations

from repro.core.contracts import Contract, StoreView
from repro.datamodel.transaction import Operation
from repro.errors import DataModelError


class SupplyChainContract(Contract):
    """Asset-tracking logic shared by all supply-chain collections."""

    name = "supplychain"

    def execute(self, view: StoreView, op: Operation):
        handler = getattr(self, f"_op_{op.name}", None)
        if handler is None:
            raise DataModelError(f"supplychain has no operation {op.name!r}")
        return handler(view, *op.args)

    # ------------------------------------------------------------------
    # public workflow steps (root collection): T1..T8 of Figure 1
    # ------------------------------------------------------------------
    def _op_place_order(self, view, order_id, buyer, seller, item, quantity):
        if view.is_local(order_id):
            view.put(
                order_id,
                {
                    "buyer": buyer,
                    "seller": seller,
                    "item": item,
                    "quantity": quantity,
                    "status": "ordered",
                    "history": [f"ordered by {buyer}"],
                },
                routing_key=order_id,
            )
        return order_id

    def _advance(self, view, order_id, status, note):
        record = view.get(order_id)
        if record is None:
            raise DataModelError(f"unknown order {order_id!r}")
        updated = dict(record)
        updated["status"] = status
        updated["history"] = list(record["history"]) + [note]
        if view.is_local(order_id):
            view.put(order_id, updated, routing_key=order_id)
        return status

    def _op_arrange_shipment(self, view, order_id, carrier):
        return self._advance(view, order_id, "shipment-arranged",
                             f"shipment arranged with {carrier}")

    def _op_pick_order(self, view, order_id, carrier):
        return self._advance(view, order_id, "in-transit",
                             f"picked by {carrier}")

    def _op_deliver_order(self, view, order_id, destination):
        return self._advance(view, order_id, "delivered",
                             f"delivered to {destination}")

    # ------------------------------------------------------------------
    # internal steps (local collections): T_M1..T_M6
    # ------------------------------------------------------------------
    def _op_manufacture_step(self, view, batch_id, step, source_order=None):
        """A manufacturing step, optionally reading an order placed on
        an order-dependent collection (§3.2's read rule)."""
        key = f"batch:{batch_id}"
        record = view.get(key, default={"steps": [], "order": None})
        if source_order is not None and record["order"] is None:
            order = view.get(source_order, collection=view_root(view))
            record = dict(record, order=order)
        record = dict(record, steps=list(record["steps"]) + [step])
        if view.is_local(key):
            view.put(key, record, routing_key=key)
        return step

    # ------------------------------------------------------------------
    # confidential collaborations (intermediate collections)
    # ------------------------------------------------------------------
    def _op_quote_price(self, view, quote_id, item, price):
        if view.is_local(quote_id):
            view.put(
                quote_id,
                {"item": item, "price": price},
                routing_key=quote_id,
            )
        return "quoted"

    def _op_track(self, view, order_id):
        record = view.get(order_id)
        return record["history"] if record else []


def view_root(view: StoreView) -> str:
    """The widest readable collection label for this view's scope."""
    own = view._registry.get_by_label(view.label)
    candidates = [
        c for c in view._registry.readable_from(own) if c.label != view.label
    ]
    if not candidates:
        return view.label
    return max(candidates, key=lambda c: len(c.scope)).label
