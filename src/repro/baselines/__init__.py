"""Baseline systems from the paper's evaluation and related work (§5, §6).

- Hyperledger Fabric (single channel, Raft ordering service,
  endorse -> order -> validate), FastFabric (optimized architecture),
  and Fabric++ (transaction reordering + early abort): mechanistic
  simulations sharing the pipeline in :mod:`repro.baselines.fabric`;
  the variants differ exactly where the real systems do.
- Caper (internal + global transactions only, no subsets, no shards):
  :mod:`repro.baselines.caper`.
- SharPer / AHL (single-enterprise sharded blockchains — comparable to
  cross-shard intra-enterprise workloads only, per §5):
  :mod:`repro.baselines.sharded`.
"""

from repro.baselines.caper import CaperClient, CaperDeployment
from repro.baselines.fabric import (
    FabricCosts,
    FabricDeployment,
    FabricVariant,
)
from repro.baselines.sharded import (
    AHLDeployment,
    SharPerDeployment,
    ShardedSingleEnterprise,
)

__all__ = [
    "AHLDeployment",
    "CaperClient",
    "CaperDeployment",
    "FabricCosts",
    "FabricDeployment",
    "FabricVariant",
    "SharPerDeployment",
    "ShardedSingleEnterprise",
]
