"""Caper baseline (Amiri, Agrawal, El Abbadi — VLDB'19).

Caper supports exactly two transaction classes for a set of
collaborating applications (enterprises): *internal* transactions on
each application's private data, and *global* transactions visible to
every application and totally ordered on one global chain.  What it
does not support is precisely Qanaat's R1-R4 list (§2, §6):

- R1 — no confidential collaboration among a *subset* of enterprises:
  anything cross-enterprise is global, i.e. visible to everyone;
- R2 — no data consistency across collaboration workflows;
- R3 — no confidential-data-leakage prevention (no firewall);
- R4 — no multi-shard enterprises.

Qanaat's model strictly generalizes Caper's: restricting the
collection lattice to {root, locals} with single-shard enterprises
yields exactly the Caper ledger (Caper's DAG is Qanaat's DAG with no
intermediate chains).  The baseline therefore wraps a
:class:`~repro.core.deployment.Deployment` configured that way and
*promotes* every subset-scope transaction to the root collection —
Caper has nowhere confidential to put it.  That promotion is both the
confidentiality gap (all enterprises replicate the record) and the
performance gap (the transaction serializes on the global chain across
every enterprise) that §5's comparison argues.
"""

from __future__ import annotations

from typing import Any, Iterable

from repro.core.config import DeploymentConfig
from repro.core.deployment import Deployment
from repro.datamodel.transaction import Operation, Transaction
from repro.sim.costs import CostModel
from repro.sim.latency import LatencyModel


class CaperClient:
    """Client facade that applies Caper's scope rules on submission."""

    def __init__(self, caper: "CaperDeployment", enterprise: str):
        self.caper = caper
        self._client = caper.deployment.create_client(enterprise)
        self.enterprise = enterprise

    @property
    def node_id(self) -> str:
        return self._client.node_id

    @property
    def completed(self) -> list[tuple[int, float, Any]]:
        return self._client.completed

    def submit(
        self,
        scope: Iterable[str],
        operation: Operation,
        keys: tuple[str, ...] = (),
        confidential: bool = False,
    ) -> int:
        """Submit under Caper semantics: subset scopes become global."""
        resolved = self.caper.resolve_scope(scope)
        tx = self._client.make_transaction(
            resolved, operation, keys=keys, confidential=confidential
        )
        return self._client.submit(tx)


class CaperDeployment:
    """A Caper network: one cluster per application, no sharding.

    ``cross_protocol`` selects which of Caper's global-consensus
    flavors the global chain uses: ``"flattened"`` is Caper's one-level
    protocol across all applications, ``"coordinator"`` its
    hierarchical variant (the initiator application orders, others
    agree).  Caper assumes Byzantine applications, so the internal
    protocol is PBFT unless a crash-only network is requested
    explicitly.
    """

    def __init__(
        self,
        enterprises: tuple[str, ...] = ("A", "B", "C", "D"),
        failure_model: str = "byzantine",
        cross_protocol: str = "flattened",
        contract: str = "kv",
        latency: LatencyModel | None = None,
        cost_model: CostModel | None = None,
        batch_size: int = 64,
        batch_wait: float = 0.002,
        f: int = 1,
        seed: int = 0,
    ):
        self.enterprises = tuple(enterprises)
        config = DeploymentConfig(
            enterprises=self.enterprises,
            shards_per_enterprise=1,       # R4: Caper cannot shard
            failure_model=failure_model,
            use_firewall=False,            # R3: no leakage prevention
            cross_protocol=cross_protocol,
            f=f,
            batch_size=batch_size,
            batch_wait=batch_wait,
            seed=seed,
        )
        self.deployment = Deployment(config, latency=latency, cost_model=cost_model)
        self.deployment.create_workflow("caper", self.enterprises, contract=contract)
        self.clients: list[CaperClient] = []
        #: Subset-scope submissions forced onto the global chain.
        self.promoted_to_global = 0

    # ------------------------------------------------------------------
    @property
    def metrics(self):
        return self.deployment.metrics

    @property
    def sim(self):
        return self.deployment.sim

    def resolve_scope(self, scope: Iterable[str]) -> frozenset[str]:
        """Caper's scope rule: internal stays internal, anything
        cross-enterprise is global (visible to every application)."""
        resolved = frozenset(scope)
        if len(resolved) == 1:
            return resolved
        if resolved != frozenset(self.enterprises):
            self.promoted_to_global += 1
        return frozenset(self.enterprises)

    def create_client(self, enterprise: str) -> CaperClient:
        client = CaperClient(self, enterprise)
        self.clients.append(client)
        return client

    def run(self, duration: float) -> None:
        self.deployment.run(duration)

    # ------------------------------------------------------------------
    # inspection (confidentiality comparisons)
    # ------------------------------------------------------------------
    def global_chain_height(self) -> int:
        """Length of the global chain on the first application."""
        executor = self.deployment.executors_of(
            self.deployment.directory.at(self.enterprises[0], 0).name
        )[0]
        from repro.datamodel.collections import scope_label

        return executor.ledger.height(scope_label(self.enterprises))

    def enterprises_seeing(self, key: str) -> set[str]:
        """Which enterprises hold a record for ``key`` somewhere —
        the confidentiality-surface measurement the Qanaat comparison
        uses (in Caper, any cross-enterprise record is seen by all)."""
        seen: set[str] = set()
        for enterprise in self.enterprises:
            cluster = self.deployment.directory.at(enterprise, 0).name
            executor = self.deployment.executors_of(cluster)[0]
            for label, shard in executor.store.namespaces():
                if key in set(executor.store.keys(label, shard)):
                    seen.add(enterprise)
                    break
        return seen
