"""Hyperledger Fabric and variants on the simulation substrate.

The pipeline (matching the paper's single-channel v2.2 deployment with
one endorser per enterprise, §5):

1. *Endorse*: the client sends the transaction to the endorser of each
   involved enterprise; endorsers simulate it against their current
   state and return read versions.
2. *Order*: endorsed transactions go to the Raft ordering service; the
   leader batches them into blocks, replicates to followers, and on a
   majority ack delivers the block to every peer.  One set of orderers
   serializes *everything* — the bottleneck the paper measures.
3. *Validate*: each peer MVCC-checks transactions of its enterprise in
   block order (stale read version => invalidated) and applies valid
   writes.  Private-data transactions additionally hash onto the
   global ledger of *every* peer — Fabric's confidential-collaboration
   overhead.

Variant differences:

- **fabric++**: the leader early-aborts transactions already stale at
  ordering time and reorders within the block so intra-block write-read
  conflicts do not invalidate (validation against the pre-block
  snapshot).
- **fastfabric**: transaction hashes (not payloads) go to the
  orderers and validation is pipelined — modeled as a much cheaper
  ordering/validation cost, same architecture.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from enum import Enum
from typing import Any

from repro.datamodel.transaction import Transaction
from repro.sim.costs import CostModel
from repro.sim.kernel import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.sim.node import Actor, SimNode


class FabricVariant(str, Enum):
    FABRIC = "fabric"
    FABRIC_PP = "fabric++"
    FAST_FABRIC = "fastfabric"


@dataclass
class FabricCosts(CostModel):
    """Per-stage CPU costs (microseconds).

    Defaults calibrated so single-datacenter Fabric saturates around
    the paper's ~9.7 ktps, FastFabric near 3x that (§5.1).
    """

    endorse_us: float = 45.0
    order_us: float = 95.0
    order_follower_us: float = 25.0
    validate_us: float = 40.0
    hash_us: float = 12.0
    base_us: float = 8.0

    def processing_time(self, node: Any, msg: Any) -> float:
        stage_us = getattr(msg, "STAGE_COST_US", None)
        tx_count = msg.tx_count() if hasattr(msg, "tx_count") else 1
        if stage_us is None:
            return self.base_us / 1e6
        per_tx = getattr(self, stage_us)
        return (self.base_us + per_tx * tx_count) / 1e6


def fast_fabric_costs() -> FabricCosts:
    """FastFabric: hashes to orderers, pipelined validation."""
    return FabricCosts(
        endorse_us=25.0,
        order_us=28.0,
        order_follower_us=8.0,
        validate_us=18.0,
        hash_us=6.0,
    )


# ----------------------------------------------------------------------
# messages
# ----------------------------------------------------------------------
@dataclass
class EndorseRequest:
    STAGE_COST_US = "endorse_us"
    tx: Transaction

    def tx_count(self) -> int:
        return 1


@dataclass
class Endorsement:
    STAGE_COST_US = None
    tx: Transaction
    endorser: str
    read_versions: dict

    def tx_count(self) -> int:
        return 1


@dataclass
class OrderSubmit:
    STAGE_COST_US = "order_us"
    tx: Transaction
    read_versions: dict

    def tx_count(self) -> int:
        return 1


@dataclass
class RaftAppend:
    STAGE_COST_US = "order_follower_us"
    block_seq: int
    entries: tuple

    def tx_count(self) -> int:
        return len(self.entries)


@dataclass
class RaftAck:
    STAGE_COST_US = None
    block_seq: int

    def tx_count(self) -> int:
        return 1


@dataclass
class BlockDeliver:
    STAGE_COST_US = None  # peers charge per-tx costs themselves
    block_seq: int
    entries: tuple

    def tx_count(self) -> int:
        return len(self.entries)


@dataclass
class FabricReply:
    STAGE_COST_US = None
    request_id: int
    valid: bool

    def tx_count(self) -> int:
        return 1


def namespaced(tx: Transaction, key: str) -> tuple:
    """Keys live in per-collection namespaces, as in Fabric chaincode
    namespaces / private data collections: the same account name in two
    collections is two different keys."""
    return (tuple(sorted(tx.scope)), key)


# ----------------------------------------------------------------------
# nodes
# ----------------------------------------------------------------------
class Endorser(SimNode):
    """Simulates transactions and reports read versions."""

    def __init__(self, node_id, deployment, enterprise):
        super().__init__(node_id, deployment.sim, deployment.network, deployment.costs)
        self.deployment = deployment
        self.enterprise = enterprise
        self.versions: dict[str, int] = {}

    def on_message(self, msg, src):
        if isinstance(msg, EndorseRequest):
            reads = {
                k: self.versions.get(namespaced(msg.tx, k), 0)
                for k in msg.tx.keys
            }
            self.send(src, Endorsement(msg.tx, self.node_id, reads))
        elif isinstance(msg, BlockDeliver):
            # Endorsers track committed versions from delivered blocks.
            for tx, _ in msg.entries:
                if self.enterprise in tx.scope:
                    for key in tx.keys:
                        self.versions[namespaced(tx, key)] = msg.block_seq


class OrdererLeader(SimNode):
    """Raft leader: batches, replicates, delivers."""

    def __init__(self, node_id, deployment):
        super().__init__(node_id, deployment.sim, deployment.network, deployment.costs)
        self.deployment = deployment
        self.pending: list[tuple[Transaction, dict]] = []
        self.block_seq = 0
        self._timer = None
        self._acks: dict[int, set[str]] = {}
        self._blocks: dict[int, tuple] = {}
        self.versions: dict[str, int] = {}  # for fabric++ early abort
        self.early_aborted = 0

    def on_message(self, msg, src):
        if isinstance(msg, OrderSubmit):
            if (
                self.deployment.variant is FabricVariant.FABRIC_PP
                and self._stale(msg)
            ):
                # Early abort: don't waste block space and peer work.
                self.early_aborted += 1
                self.deployment.reply_invalid(msg.tx)
                return
            self.pending.append((msg.tx, msg.read_versions))
            if len(self.pending) >= self.deployment.batch_size:
                self._flush()
            elif self._timer is None:
                self._timer = self.set_timer(
                    self.deployment.batch_wait, self._flush
                )
        elif isinstance(msg, RaftAck):
            acks = self._acks.setdefault(msg.block_seq, set())
            acks.add(src)
            if len(acks) + 1 > (len(self.deployment.orderer_followers) + 1) // 2:
                self._deliver(msg.block_seq)
        elif isinstance(msg, BlockDeliver):
            pass

    def _stale(self, msg: OrderSubmit) -> bool:
        return any(
            self.versions.get(namespaced(msg.tx, key), 0) > version
            for key, version in msg.read_versions.items()
        )

    def _flush(self):
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self.pending:
            return
        self.block_seq += 1
        entries = tuple(self.pending)
        self.pending = []
        if self.deployment.variant is FabricVariant.FABRIC_PP:
            # Reorder: reads-before-writes within the block (emulated by
            # validating against the pre-block snapshot at the peers;
            # the leader just marks version advancement).
            pass
        for tx, _ in entries:
            for key in tx.keys:
                self.versions[namespaced(tx, key)] = self.block_seq
        self._blocks[self.block_seq] = entries
        followers = self.deployment.orderer_followers
        if followers:
            self.multicast(followers, RaftAppend(self.block_seq, entries))
        else:
            self._deliver(self.block_seq)

    def _deliver(self, block_seq):
        entries = self._blocks.pop(block_seq, None)
        if entries is None:
            return
        msg = BlockDeliver(block_seq, entries)
        self.multicast(self.deployment.delivery_targets, msg)


class OrdererFollower(SimNode):
    def __init__(self, node_id, deployment):
        super().__init__(node_id, deployment.sim, deployment.network, deployment.costs)
        self.deployment = deployment

    def on_message(self, msg, src):
        if isinstance(msg, RaftAppend):
            self.send(src, RaftAck(msg.block_seq))


class Peer(SimNode):
    """Per-enterprise peer: MVCC validation + state maintenance."""

    def __init__(self, node_id, deployment, enterprise):
        super().__init__(node_id, deployment.sim, deployment.network, deployment.costs)
        self.deployment = deployment
        self.enterprise = enterprise
        self.versions: dict[str, int] = {}
        self.committed = 0
        self.invalidated = 0
        self.ledger_hashes = 0

    def on_message(self, msg, src):
        if not isinstance(msg, BlockDeliver):
            return
        costs = self.deployment.costs
        reorder = self.deployment.variant is FabricVariant.FABRIC_PP
        snapshot = dict(self.versions) if reorder else None
        cpu = 0.0
        for tx, read_versions in msg.entries:
            if self.enterprise not in tx.scope:
                # Not involved: still hash the (private) transaction
                # onto the global ledger (§6: Fabric's PDC overhead).
                self.ledger_hashes += 1
                cpu += costs.hash_us / 1e6
                continue
            cpu += costs.validate_us / 1e6
            if len(tx.scope) < len(self.deployment.enterprises):
                cpu += costs.hash_us / 1e6  # private-data hashing
            source = snapshot if reorder else self.versions
            stale = any(
                source.get(namespaced(tx, key), 0) > version
                for key, version in read_versions.items()
            )
            if stale:
                self.invalidated += 1
                if self.enterprise == self.deployment.enterprise_of_client(tx):
                    self.deployment.reply_invalid(tx)
                continue
            for key in tx.keys:
                self.versions[namespaced(tx, key)] = msg.block_seq
            self.committed += 1
            if self.enterprise == self.deployment.enterprise_of_client(tx):
                self.send(tx.client, FabricReply(tx.request_id, True))
        self.charge(cpu)


class FabricClient(Actor):
    """Collects endorsements, submits to ordering, records latency."""

    def __init__(self, node_id, deployment, enterprise):
        super().__init__(node_id, deployment.sim, deployment.network)
        self.deployment = deployment
        self.enterprise = enterprise
        self._timestamp = 0
        self._pending: dict[int, dict] = {}
        self.completed: list[tuple[int, float, bool]] = []

    def submit(self, tx: Transaction) -> int:
        self._pending[tx.request_id] = {
            "tx": tx,
            "sent": self.sim.now,
            "endorsements": {},
            "needed": {
                self.deployment.endorser_of(e) for e in sorted(tx.scope)
            },
        }
        # Sorted: set order is hash-randomized, and each send draws
        # link jitter — unordered fan-out makes runs irreproducible
        # across processes.
        for endorser in sorted(self._pending[tx.request_id]["needed"]):
            self.send(endorser, EndorseRequest(tx))
        return tx.request_id

    def on_message(self, msg, src):
        if isinstance(msg, Endorsement):
            pending = self._pending.get(msg.tx.request_id)
            if pending is None:
                return
            pending["endorsements"][src] = msg.read_versions
            if set(pending["endorsements"]) >= pending["needed"]:
                reads: dict = {}
                for versions in pending["endorsements"].values():
                    for key, version in versions.items():
                        reads[key] = max(reads.get(key, 0), version)
                self.send(
                    self.deployment.orderer_leader_id,
                    OrderSubmit(pending["tx"], reads),
                )
        elif isinstance(msg, FabricReply):
            pending = self._pending.pop(msg.request_id, None)
            if pending is None:
                return
            latency = self.sim.now - pending["sent"]
            self.completed.append((msg.request_id, latency, msg.valid))
            if msg.valid:
                self.deployment.metrics.record_completion(
                    msg.request_id, pending["sent"], latency
                )


class FabricDeployment:
    """A single-channel Fabric network with one endorser+peer per
    enterprise and a 3-orderer Raft ordering service."""

    def __init__(
        self,
        enterprises=("A", "B", "C", "D"),
        variant: FabricVariant = FabricVariant.FABRIC,
        costs: FabricCosts | None = None,
        latency: LatencyModel | None = None,
        batch_size: int = 64,
        batch_wait: float = 0.002,
        seed: int = 0,
    ):
        from repro.core.deployment import Metrics

        self.enterprises = tuple(enterprises)
        self.variant = FabricVariant(variant)
        if costs is None:
            costs = (
                fast_fabric_costs()
                if self.variant is FabricVariant.FAST_FABRIC
                else FabricCosts()
            )
        self.costs = costs
        self.batch_size = batch_size
        self.batch_wait = batch_wait
        self.sim = Simulator()
        self.network = Network(self.sim, latency=latency, seed=seed)
        self.metrics = Metrics()

        self.endorsers = {
            e: Endorser(f"endorser-{e}", self, e) for e in self.enterprises
        }
        self.leader = OrdererLeader("orderer-0", self)
        self.orderer_leader_id = "orderer-0"
        self.followers = [OrdererFollower(f"orderer-{i}", self) for i in (1, 2)]
        self.orderer_followers = [f.node_id for f in self.followers]
        self.peers = {e: Peer(f"peer-{e}", self, e) for e in self.enterprises}
        self.delivery_targets = [p.node_id for p in self.peers.values()] + [
            e.node_id for e in self.endorsers.values()
        ]
        self.clients: list[FabricClient] = []

    # ------------------------------------------------------------------
    def endorser_of(self, enterprise: str) -> str:
        return self.endorsers[enterprise].node_id

    def enterprise_of_client(self, tx: Transaction) -> str:
        return tx.client.split("-")[1]

    def create_client(self, enterprise: str) -> FabricClient:
        client = FabricClient(
            f"fclient-{enterprise}-{len(self.clients)}", self, enterprise
        )
        self.clients.append(client)
        return client

    def reply_invalid(self, tx: Transaction) -> None:
        self.network.send("orderer-0", tx.client, FabricReply(tx.request_id, False))

    def run(self, duration: float) -> None:
        self.sim.run(until=self.sim.now + duration)
