"""Single-enterprise sharded baselines: SharPer and AHL.

§5 scopes the comparison precisely: "sharded permissioned blockchains
like AHL and SharPer can only be compared to cross-shard
intra-enterprise transactions as they do not support multi-enterprise
environments."  Qanaat's own csie protocols are their direct
descendants — §4.4.2 is "inspired by the flattened cross-shard
consensus protocols of SharPer" and §4.3.2 "inspired by permissioned
blockchains AHL and Saguaro" — so the faithful reproduction of each
baseline is the corresponding Qanaat protocol restricted to a single
enterprise:

- **SharPer**: flattened cross-shard consensus, deterministic safety,
  no coordinator;
- **AHL**: coordinator-based cross-shard commit (AHL's reference
  committee maps to the coordinator cluster; AHL's probabilistic
  committee-sampling safety is out of scope — we grant it
  deterministic committees, which only flatters the baseline).

Neither system supports shared collections, confidential subsets, or
the privacy firewall; the wrapper exposes only internal (single-shard)
and cross-shard transactions of the one enterprise.
"""

from __future__ import annotations

from typing import Any

from repro.core.config import DeploymentConfig
from repro.core.deployment import Deployment
from repro.datamodel.transaction import Operation
from repro.errors import WorkloadError
from repro.sim.costs import CostModel
from repro.sim.latency import LatencyModel


class ShardedSingleEnterprise:
    """Common wrapper: one enterprise, N shards, no shared collections."""

    name = "sharded"
    cross_protocol = "flattened"

    def __init__(
        self,
        num_shards: int = 4,
        failure_model: str = "byzantine",
        contract: str = "kv",
        enterprise: str = "E",
        latency: LatencyModel | None = None,
        cost_model: CostModel | None = None,
        batch_size: int = 64,
        batch_wait: float = 0.002,
        f: int = 1,
        seed: int = 0,
    ):
        if num_shards < 1:
            raise WorkloadError("num_shards must be >= 1")
        self.enterprise = enterprise
        self.num_shards = num_shards
        config = DeploymentConfig(
            enterprises=(enterprise,),
            shards_per_enterprise=num_shards,
            failure_model=failure_model,
            use_firewall=False,
            cross_protocol=self.cross_protocol,
            f=f,
            batch_size=batch_size,
            batch_wait=batch_wait,
            seed=seed,
        )
        self.deployment = Deployment(config, latency=latency, cost_model=cost_model)
        self.deployment.create_workflow(self.name, (enterprise,), contract=contract)
        self.clients: list[Any] = []

    # ------------------------------------------------------------------
    @property
    def metrics(self):
        return self.deployment.metrics

    @property
    def sim(self):
        return self.deployment.sim

    def create_client(self):
        client = self.deployment.create_client(self.enterprise)
        self.clients.append(client)
        return client

    def submit(
        self,
        client,
        operation: Operation,
        keys: tuple[str, ...],
        confidential: bool = False,
    ) -> int:
        """Submit a transaction of the single enterprise.

        The shard set follows from ``keys`` through the sharding
        schema, exactly as in Qanaat — one shard is an intra-shard
        transaction, several trigger the cross-shard protocol.
        """
        tx = client.make_transaction(
            {self.enterprise}, operation, keys=keys, confidential=confidential
        )
        return client.submit(tx)

    def run(self, duration: float) -> None:
        self.deployment.run(duration)

    def shard_heights(self) -> list[int]:
        ledgers = self.deployment.ledgers_of_enterprise(self.enterprise)
        return [
            ledger.height(self.enterprise, shard)
            for shard, ledger in enumerate(ledgers)
        ]


class SharPerDeployment(ShardedSingleEnterprise):
    """SharPer: flattened cross-shard consensus (SIGMOD'21)."""

    name = "sharper"
    cross_protocol = "flattened"


class AHLDeployment(ShardedSingleEnterprise):
    """AHL: coordinator-based cross-shard commit (SIGMOD'19)."""

    name = "ahl"
    cross_protocol = "coordinator"
