"""Benchmark harness: regenerates every table and figure of §5.

``python -m repro.bench --experiment fig7`` (or fig8/fig9/fig10/
table2/table3/fig11/all) prints the paper-style rows.  The same
machinery backs the pytest-benchmark targets in ``benchmarks/``.
"""

from repro.bench.runner import (
    PointResult,
    QANAAT_PROTOCOLS,
    run_fabric_point,
    run_qanaat_point,
    sweep,
)

__all__ = [
    "PointResult",
    "QANAAT_PROTOCOLS",
    "run_qanaat_point",
    "run_fabric_point",
    "sweep",
]
