"""Benchmark harness: regenerates every table and figure of §5.

``python -m repro.bench --experiment fig7`` (or fig8/fig9/fig10/
table2/table3/fig11/recovery/all) prints the paper-style rows;
``--out DIR`` writes ``BENCH_<experiment>.json`` artifacts and
``--seed N`` makes runs reproducible.  The same machinery backs the
pytest-benchmark targets in ``benchmarks/``.
"""

from repro.bench.parallel import PointTask, execute_tasks
from repro.bench.recovery import run_recovery_bench, run_recovery_scenario
from repro.bench.runner import (
    PointResult,
    QANAAT_PROTOCOLS,
    run_fabric_point,
    run_point,
    run_qanaat_point,
    sweep,
    sweep_merge,
)

__all__ = [
    "PointResult",
    "PointTask",
    "QANAAT_PROTOCOLS",
    "execute_tasks",
    "run_point",
    "run_qanaat_point",
    "run_fabric_point",
    "run_recovery_bench",
    "run_recovery_scenario",
    "sweep",
    "sweep_merge",
]
