"""CLI: ``python -m repro.bench --experiment fig7 [--scale full]
[--out results/ --seed 7 --jobs 4]``.

``--list`` enumerates the available experiments with one-line
descriptions; ``--out`` writes each experiment's results as
``BENCH_<name>.json`` under the chosen directory (the recovery
experiment manages its own ``BENCH_recovery.json`` there); ``--seed``
is recorded in every artifact so a run can be reproduced exactly.

``--jobs N`` fans the experiment's independent points out over N
worker processes (``0`` = one per CPU; default: sequential).  The
merge is deterministic, so artifacts are byte-identical at any job
count — see ``docs/benchmarks.md``.  ``--profile`` runs the selected
experiments under :mod:`cProfile` and prints the hottest call sites
(the flag that exposed the signature re-verification and
``Simulator.pending`` scans); profiling covers the driving process, so
pair it with sequential execution to see simulation internals.
"""

from __future__ import annotations

import argparse
import inspect
import time
from pathlib import Path

from repro.bench.experiments import EXPERIMENT_GROUPS, EXPERIMENTS
from repro.bench.report import write_json


def describe(fn) -> str:
    """One-line description of an experiment: its docstring's first line."""
    doc = inspect.getdoc(fn) or ""
    return doc.splitlines()[0] if doc else ""


def list_experiments() -> str:
    """Experiments grouped by family, each with its one-line docstring
    description; ungrouped names (should never exist) trail at the end
    so nothing silently disappears from the listing."""
    width = max(len(name) for name in EXPERIMENTS)
    lines = ["available experiments:"]
    listed: set[str] = set()
    for group, names in EXPERIMENT_GROUPS.items():
        lines.append(f"\n{group}:")
        for name in names:
            lines.append(f"  {name:<{width}}  {describe(EXPERIMENTS[name])}")
            listed.add(name)
    missing = [name for name in EXPERIMENTS if name not in listed]
    if missing:
        lines.append("\nungrouped:")
        lines.extend(
            f"  {name:<{width}}  {describe(EXPERIMENTS[name])}"
            for name in missing
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "--experiment",
        default="all",
        metavar="NAME",
        help="which table/figure to regenerate ('all' runs everything; "
        "see --list)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_experiments",
        help="list available experiments with one-line descriptions and exit",
    )
    parser.add_argument(
        "--scale",
        default="fast",
        choices=["smoke", "fast", "full"],
        help="smoke: CI-sized 2 x 2; fast: 3 enterprises x 2 shards; "
        "full: the paper's 4 x 4",
    )
    parser.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="directory for BENCH_<experiment>.json artifacts",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=1,
        help="workload/arrival seed recorded in every artifact",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="run independent measurement points over N worker "
        "processes (0 = one per CPU; default: sequential); results "
        "and artifacts are byte-identical at any job count",
    )
    parser.add_argument(
        "--kernel-workers",
        type=int,
        default=None,
        metavar="N",
        help="shard-parallel worker processes for experiments that "
        "support them (the shardpar sweep compares N against the "
        "1-worker reference); artifacts are byte-identical at any "
        "worker count — see docs/performance.md",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="enable repro.obs causal tracing + metrics for the whole "
        "run (sequential only; see docs/observability.md)",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="write the causal trace as JSONL to PATH when done "
        "(implies --trace); render it with python -m repro.obs.trace",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest call sites "
        "(profiles the driving process; use with sequential execution)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="write the raw cProfile/pstats dump to PATH for offline "
        "analysis (snakeviz, pstats.Stats); implies --profile",
    )
    args = parser.parse_args(argv)
    if args.jobs is not None and args.jobs < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    if args.kernel_workers is not None and args.kernel_workers < 1:
        parser.error(
            f"--kernel-workers must be >= 1, got {args.kernel_workers}"
        )
    if args.list_experiments:
        print(list_experiments())
        return
    if args.experiment != "all" and args.experiment not in EXPERIMENTS:
        parser.error(
            f"unknown experiment {args.experiment!r}\n" + list_experiments()
        )
    tracing = args.trace or args.trace_out is not None
    if tracing and args.jobs not in (None, 1):
        # Worker processes would each build their own tracer and the
        # driving process would export an empty one — refuse instead
        # of writing a misleading artifact.
        parser.error("--trace requires sequential execution (drop --jobs)")
    out_dir = Path(args.out) if args.out is not None else None
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    if tracing:
        from repro import obs

        obs.enable()
    profiler = None
    if args.profile or args.profile_out is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        for name in names:
            fn = EXPERIMENTS[name]
            supported = inspect.signature(fn).parameters
            kwargs = {}
            if "scale" in supported:
                kwargs["scale"] = args.scale
            if "seed" in supported:
                kwargs["seed"] = args.seed
            if "jobs" in supported and args.jobs is not None:
                kwargs["jobs"] = args.jobs
            if (
                "kernel_workers" in supported
                and args.kernel_workers is not None
            ):
                kwargs["kernel_workers"] = args.kernel_workers
            manages_own_artifact = "out" in supported
            if manages_own_artifact and out_dir is not None:
                kwargs["out"] = str(out_dir / f"BENCH_{name}.json")
            started = time.perf_counter()
            results = fn(**kwargs)
            elapsed = time.perf_counter() - started
            if out_dir is not None and not manages_own_artifact:
                write_json(
                    out_dir / f"BENCH_{name}.json",
                    {
                        "experiment": name,
                        "scale": args.scale,
                        "seed": args.seed,
                        "results": results,
                        # Excluded from the determinism byte-compare
                        # (repro.bench.compare strips perf blocks).
                        "perf": {"wall_clock_s": round(elapsed, 3)},
                    },
                )
    finally:
        if tracing:
            from repro import obs

            if args.trace_out is not None and obs.TRACER is not None:
                path = Path(args.trace_out)
                path.parent.mkdir(parents=True, exist_ok=True)
                path.write_text(obs.TRACER.to_jsonl(), encoding="utf-8")
                print(f"\ntrace written to {path}")
            obs.disable()
        if profiler is not None:
            import pstats

            profiler.disable()
            if args.profile_out is not None:
                path = Path(args.profile_out)
                path.parent.mkdir(parents=True, exist_ok=True)
                profiler.dump_stats(path)
                print(f"\nprofile dump written to {path}")
            print("\n=== profile (top 25 by cumulative time) ===")
            pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)


if __name__ == "__main__":
    main()
