"""CLI: ``python -m repro.bench --experiment fig7 [--scale full]``."""

from __future__ import annotations

import argparse

from repro.bench.experiments import EXPERIMENTS


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables and figures."
    )
    parser.add_argument(
        "--experiment",
        default="all",
        choices=list(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--scale",
        default="fast",
        choices=["fast", "full"],
        help="fast: 2 enterprises x 2 shards; full: the paper's 4 x 4",
    )
    args = parser.parse_args()
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        fn = EXPERIMENTS[name]
        if "scale" in fn.__code__.co_varnames:
            fn(scale=args.scale)
        else:
            fn()


if __name__ == "__main__":
    main()
