"""Compare BENCH artifacts modulo perf metadata.

``BENCH_*.json`` artifacts are byte-identical for a fixed seed at any
job count — except the ``perf`` blocks (wall-clock, events/sec,
hot-path counters), which are measurement context, not results.  This
module is the comparison CI and humans use::

    python -m repro.bench.compare artifacts/j1/BENCH_scenarios.json \
                                  artifacts/j2/BENCH_scenarios.json

Exit status 0 when the deterministic projections match byte-for-byte,
1 (with the first differing line) when they do not.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench.report import comparable_json


def comparable_text(path: str | Path) -> str:
    """One artifact's deterministic projection as canonical JSON."""
    with open(path, encoding="utf-8") as fh:
        return comparable_json(json.load(fh))


def first_difference(a: str, b: str) -> str:
    """Human-readable pointer at the first differing line."""
    for index, (line_a, line_b) in enumerate(zip(a.splitlines(), b.splitlines())):
        if line_a != line_b:
            return f"line {index + 1}:\n  a: {line_a}\n  b: {line_b}"
    return f"lengths differ: {len(a)} vs {len(b)} characters"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Byte-compare two BENCH artifacts, ignoring perf "
        "metadata (wall-clock / events-per-sec / counter blocks)."
    )
    parser.add_argument("artifact_a")
    parser.add_argument("artifact_b")
    args = parser.parse_args(argv)
    a = comparable_text(args.artifact_a)
    b = comparable_text(args.artifact_b)
    if a != b:
        print(
            f"artifacts differ (perf metadata excluded): "
            f"{args.artifact_a} vs {args.artifact_b}\n"
            + first_difference(a, b),
            file=sys.stderr,
        )
        return 1
    print("artifacts identical (perf metadata excluded)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
