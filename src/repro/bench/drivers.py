"""SystemDriver implementations for every benchmarked system family.

Each driver's :meth:`build` reproduces, construction-step for
construction-step, what the family's old ``run_*_point`` function did —
same config objects, same workload seeding, same client creation order —
so a measurement through the generic runner completes exactly the same
set of transactions for the same seed as the pre-driver harness.
"""

from __future__ import annotations

from repro.api.driver import DriverConfig, SystemDriver
from repro.baselines.caper import CaperDeployment
from repro.baselines.fabric import FabricDeployment, FabricVariant
from repro.baselines.sharded import AHLDeployment, SharPerDeployment
from repro.core.config import DeploymentConfig
from repro.core.deployment import Deployment, Metrics
from repro.datamodel.transaction import Transaction
from repro.errors import WorkloadError
from repro.sim.costs import CalibratedCost
from repro.workload.generator import SmallBankWorkload, WorkloadMix


def _pair_scopes(enterprises: tuple[str, ...]) -> list[frozenset]:
    """Shared collections used by the workload: the root plus every
    pair (private collaborations between two enterprises)."""
    scopes: list[frozenset] = []
    if len(enterprises) > 1:
        scopes.append(frozenset(enterprises))
    members = sorted(enterprises)
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            scopes.append(frozenset((a, b)))
    return scopes


def _crash_backups(deployment: Deployment, enterprise: str, count: int):
    """Table 3 fault injection: fail ``count`` non-primary ordering
    nodes of the enterprise's first cluster; returns its info."""
    info = deployment.directory.at(enterprise, 0)
    primary = deployment.primary_of(info.name)
    backups = [m for m in info.members if m != primary]
    for member in backups[:count]:
        deployment.crash_node(member)
    return info


def build_smallbank_deployment(
    config: DeploymentConfig,
    mix: WorkloadMix,
    latency=None,
    cost=None,
):
    """Deployment + SmallBank workload + clients, wired the standard
    way (§5): the root workflow, every pairwise shared collection, one
    client per enterprise.  Returns ``(deployment, submit_next)`` —
    shared by the Qanaat driver and the recovery scenario so both
    drive identically-configured systems."""
    enterprises = config.enterprises
    shards = config.shards_per_enterprise
    deployment = Deployment(
        config,
        latency=latency,
        cost_model=cost if cost is not None else CalibratedCost(),
    )
    deployment.create_workflow("bench", enterprises, contract="smallbank")
    scopes = _pair_scopes(enterprises)
    for scope in scopes:
        if len(scope) < len(enterprises):
            deployment.collections.create(
                scope, contract="smallbank", num_shards=shards
            )
    workload = SmallBankWorkload(
        enterprises, shards, scopes, mix, seed=config.seed
    )
    clients = {e: deployment.create_client(e) for e in enterprises}

    def submit_next():
        spec = workload.next_spec()
        client = clients[spec.enterprise]
        tx = client.make_transaction(
            spec.scope, spec.operation, keys=spec.keys, confidential=False
        )
        client.submit(tx)

    return deployment, submit_next


class _DriverBase:
    """Shared measurement surface: every family wraps one system
    object exposing ``sim``, ``metrics``, and ``run(duration)``."""

    def __init__(self, name: str, system, submit, closer=None):
        self.name = name
        self.system = system
        self._submit = submit
        self._closer = closer

    @property
    def sim(self):
        return self.system.sim

    def submit_next(self) -> None:
        self._submit()

    def run(self, duration: float) -> None:
        self.system.run(duration)

    def metrics(self) -> Metrics:
        return self.system.metrics

    def close(self) -> None:
        if self._closer is not None:
            self._closer()


class QanaatDriver(_DriverBase):
    """Qanaat's six protocol configurations plus the Fig 4 ladder.

    The labels themselves live in ``runner.QANAAT_PROTOCOLS`` /
    ``runner.FIG4_CONFIGS`` so the paper-facing tables own them.
    """

    @classmethod
    def build(cls, cfg: DriverConfig) -> "QanaatDriver":
        from repro.bench.runner import FIG4_CONFIGS, QANAAT_PROTOCOLS

        options = (
            QANAAT_PROTOCOLS[cfg.system]
            if cfg.system in QANAAT_PROTOCOLS
            else FIG4_CONFIGS[cfg.system]
        )
        config = DeploymentConfig(
            enterprises=cfg.enterprises,
            shards_per_enterprise=cfg.shards,
            batch_size=cfg.batch_size,
            batch_wait=0.002,
            seed=cfg.seed,
            checkpoint_interval=cfg.checkpoint_interval,
            **options,
        )
        deployment, submit_next = build_smallbank_deployment(
            config, cfg.mix, latency=cfg.latency, cost=cfg.cost
        )
        if cfg.crash_nodes:
            # Table 3: one backup ordering node, plus one exec node and
            # one filter under the privacy firewall.
            info = _crash_backups(deployment, cfg.enterprises[0], cfg.crash_nodes)
            if config.use_firewall:
                firewall = deployment.firewalls[info.name]
                firewall.execution_nodes[-1].crash()
                firewall.rows[0][-1].crash()
        return cls(cfg.system, deployment, submit_next, closer=deployment.close)


class FabricDriver(_DriverBase):
    """The Fabric family: Fabric, Fabric++, FastFabric.

    ``shards`` only shapes the workload keys — a single-channel Fabric
    deployment cannot shard (§5), which is exactly the comparison.  The
    CPU cost model and checkpointing knobs do not apply, and there are
    no storage backends behind the model (nothing to close).
    """

    VARIANTS = {
        "Fabric": FabricVariant.FABRIC,
        "Fabric++": FabricVariant.FABRIC_PP,
        "FastFabric": FabricVariant.FAST_FABRIC,
    }

    @classmethod
    def build(cls, cfg: DriverConfig) -> "FabricDriver":
        deployment = FabricDeployment(
            enterprises=cfg.enterprises,
            variant=cls.VARIANTS[cfg.system],
            latency=cfg.latency,
            batch_size=cfg.batch_size,
            seed=cfg.seed,
        )
        if cfg.crash_nodes:
            deployment.followers[0].crash()
        scopes = _pair_scopes(cfg.enterprises)
        workload = SmallBankWorkload(
            cfg.enterprises, cfg.shards, scopes, cfg.mix, seed=cfg.seed
        )
        clients = {e: deployment.create_client(e) for e in cfg.enterprises}

        def submit_next():
            spec = workload.next_spec()
            client = clients[spec.enterprise]
            tx = Transaction(
                client=client.node_id,
                timestamp=0,
                operation=spec.operation,
                scope=spec.scope,
                keys=spec.keys,
            )
            client.submit(tx)

        return cls(cfg.system, deployment, submit_next)


class CaperDriver(_DriverBase):
    """Caper: single-shard enterprises, subsets promoted to the global
    chain — only internal and isce-shaped workloads apply."""

    @classmethod
    def build(cls, cfg: DriverConfig) -> "CaperDriver":
        if cfg.mix.cross > 0 and cfg.mix.cross_type != "isce":
            raise WorkloadError("Caper cannot run cross-shard workloads")
        deployment = CaperDeployment(
            enterprises=cfg.enterprises,
            failure_model="byzantine",
            cross_protocol="flattened",
            contract="smallbank",
            latency=cfg.latency,
            cost_model=cfg.cost if cfg.cost is not None else CalibratedCost(),
            batch_size=cfg.batch_size,
            seed=cfg.seed,
        )
        if cfg.crash_nodes:
            _crash_backups(
                deployment.deployment, cfg.enterprises[0], cfg.crash_nodes
            )
        scopes = _pair_scopes(cfg.enterprises)
        workload = SmallBankWorkload(
            cfg.enterprises, 1, scopes, cfg.mix, seed=cfg.seed
        )
        clients = {e: deployment.create_client(e) for e in cfg.enterprises}

        def submit_next():
            spec = workload.next_spec()
            clients[spec.enterprise].submit(
                spec.scope, spec.operation, keys=spec.keys
            )

        return cls(
            "Caper", deployment, submit_next, closer=deployment.deployment.close
        )


class ShardedDriver(_DriverBase):
    """SharPer / AHL: one enterprise, N shards — internal and
    csie-shaped workloads only (§5)."""

    SYSTEMS = {"SharPer": SharPerDeployment, "AHL": AHLDeployment}

    @classmethod
    def build(cls, cfg: DriverConfig) -> "ShardedDriver":
        if cfg.mix.cross > 0 and cfg.mix.cross_type != "csie":
            raise WorkloadError(
                f"{cfg.system} cannot run cross-enterprise workloads"
            )
        system = cls.SYSTEMS[cfg.system](
            num_shards=cfg.shards,
            failure_model="byzantine",
            contract="smallbank",
            latency=cfg.latency,
            cost_model=cfg.cost if cfg.cost is not None else CalibratedCost(),
            batch_size=cfg.batch_size,
            seed=cfg.seed,
        )
        if cfg.crash_nodes:
            _crash_backups(system.deployment, system.enterprise, cfg.crash_nodes)
        workload = SmallBankWorkload(
            (system.enterprise,), cfg.shards, [], cfg.mix, seed=cfg.seed
        )
        client = system.create_client()

        def submit_next():
            spec = workload.next_spec()
            system.submit(client, spec.operation, keys=spec.keys)

        return cls(cfg.system, system, submit_next, closer=system.deployment.close)


def driver_class(system: str) -> type:
    """Resolve a system label to its driver class."""
    from repro.bench.runner import FIG4_CONFIGS, QANAAT_PROTOCOLS

    if system in QANAAT_PROTOCOLS or system in FIG4_CONFIGS:
        return QanaatDriver
    if system in FabricDriver.VARIANTS:
        return FabricDriver
    if system == "Caper":
        return CaperDriver
    if system in ShardedDriver.SYSTEMS:
        return ShardedDriver
    raise WorkloadError(
        f"unknown system {system!r}; valid: "
        + ", ".join(sorted(known_systems()))
    )


def known_systems() -> list[str]:
    """Every system label the generic runner can measure."""
    from repro.bench.runner import FIG4_CONFIGS, QANAAT_PROTOCOLS

    return (
        list(QANAAT_PROTOCOLS)
        + list(FIG4_CONFIGS)
        + list(FabricDriver.VARIANTS)
        + ["Caper"]
        + list(ShardedDriver.SYSTEMS)
    )


def build_driver(cfg: DriverConfig) -> SystemDriver:
    """Build the right driver for ``cfg.system``."""
    return driver_class(cfg.system).build(cfg)
