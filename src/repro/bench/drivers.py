"""SystemDriver implementations for every benchmarked system family.

Each driver's :meth:`build` takes a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` and reproduces,
construction-step for construction-step, what the family's old
``run_*_point`` function did — same config objects, same workload
seeding, same client creation order — so a measurement through the
generic runner completes exactly the same set of transactions for the
same seed as the pre-driver harness.

The Qanaat family builds through :func:`repro.scenarios.build` and so
supports fault timelines; the baseline families reject specs carrying
timeline events (their deployments lack the primitives the scheduler
replays through).
"""

from __future__ import annotations

from repro.api.driver import DriverConfig, SystemDriver
from repro.baselines.caper import CaperDeployment
from repro.baselines.fabric import FabricDeployment, FabricVariant
from repro.baselines.sharded import AHLDeployment, SharPerDeployment
from repro.core.deployment import Deployment, Metrics
from repro.datamodel.transaction import Transaction
from repro.errors import WorkloadError
from repro.scenarios.build import (
    build as build_deployment,
    build_workload,
    crash_backups,
    pair_scopes,
    resolve_latency,
)
from repro.scenarios.spec import ScenarioSpec
from repro.sim.costs import CalibratedCost
from repro.workload.generator import SmallBankWorkload
from repro.workload.population import population_from

def _require_fault_free(spec: ScenarioSpec) -> None:
    if spec.faults:
        raise WorkloadError(
            f"{spec.system} cannot replay fault timelines; scenario "
            f"{spec.name!r} needs a Qanaat system"
        )


def _client_pools(spec: ScenarioSpec, enterprises, create):
    """Baseline client wiring: the spec's population (or fan-out)
    multiplexed onto per-enterprise wire pools via ``create``, or the
    legacy one-client-per-enterprise shape — same creation order either
    way.  Returns ``(population, pools)``; ``population`` is None for
    the legacy shape."""
    population = population_from(spec.workload, enterprises, spec.seed)
    if population is None:
        pools = {e: (create(e),) for e in enterprises}
    else:
        pools = {
            e: tuple(create(e) for _ in range(population.pool))
            for e in enterprises
        }
    return population, pools


def _pick(pools, population, tx_spec):
    """The wire client carrying the next transaction (drawing the
    logical rank from the population when one exists)."""
    pool = pools[tx_spec.enterprise]
    if population is None:
        return pool[0]
    return pool[population.next_rank(tx_spec.enterprise) % len(pool)]


def build_smallbank_deployment(
    config,
    mix,
    latency=None,
    cost=None,
):
    """Deployment + SmallBank workload + clients, wired the standard
    way (§5): the root workflow, every pairwise shared collection, one
    client per enterprise.  Returns ``(deployment, submit_next)`` —
    shared by the Qanaat driver and the recovery scenario so both
    drive identically-configured systems."""
    from repro.scenarios.spec import TopologySpec, WorkloadSpec

    spec = ScenarioSpec(
        name="adhoc-smallbank",
        system="Flt-C",
        topology=TopologySpec(
            enterprises=config.enterprises,
            shards=config.shards_per_enterprise,
        ),
        workload=WorkloadSpec(mix=mix),
        seed=config.seed,
        latency=latency,
        cost=cost if cost is not None else CalibratedCost(),
    )
    deployment = build_deployment(spec, config=config)
    submit_next = build_workload(spec, deployment)
    return deployment, submit_next


class _DriverBase:
    """Shared measurement surface: every family wraps one system
    object exposing ``sim``, ``metrics``, and ``run(duration)``."""

    def __init__(self, name: str, system, submit, closer=None):
        self.name = name
        self.system = system
        self._submit = submit
        self._closer = closer

    @property
    def sim(self):
        return self.system.sim

    def submit_next(self, **kwargs) -> None:
        self._submit(**kwargs)

    def run(self, duration: float) -> None:
        self.system.run(duration)

    def metrics(self) -> Metrics:
        return self.system.metrics

    def close(self) -> None:
        if self._closer is not None:
            self._closer()


class QanaatDriver(_DriverBase):
    """Qanaat's six protocol configurations plus the Fig 4 ladder.

    The labels themselves live in ``runner.QANAAT_PROTOCOLS`` /
    ``runner.FIG4_CONFIGS`` so the paper-facing tables own them.  The
    only family that replays fault timelines: construction goes
    through :func:`repro.scenarios.build`, which arms the spec's
    :class:`~repro.scenarios.faults.FaultScheduler`.
    """

    @classmethod
    def build(cls, spec: ScenarioSpec) -> "QanaatDriver":
        import dataclasses

        if spec.cost is None:
            spec = dataclasses.replace(spec, cost=CalibratedCost())
        deployment = build_deployment(spec)
        submit_next = build_workload(spec, deployment)
        return cls(spec.system, deployment, submit_next, closer=deployment.close)


class FabricDriver(_DriverBase):
    """The Fabric family: Fabric, Fabric++, FastFabric.

    ``shards`` only shapes the workload keys — a single-channel Fabric
    deployment cannot shard (§5), which is exactly the comparison.  The
    CPU cost model and checkpointing knobs do not apply, and there are
    no storage backends behind the model (nothing to close).
    """

    VARIANTS = {
        "Fabric": FabricVariant.FABRIC,
        "Fabric++": FabricVariant.FABRIC_PP,
        "FastFabric": FabricVariant.FAST_FABRIC,
    }

    @classmethod
    def build(cls, spec: ScenarioSpec) -> "FabricDriver":
        _require_fault_free(spec)
        enterprises = spec.topology.enterprises
        deployment = FabricDeployment(
            enterprises=enterprises,
            variant=cls.VARIANTS[spec.system],
            latency=resolve_latency(spec),
            batch_size=spec.topology.batch_size,
            seed=spec.seed,
        )
        if spec.topology.crash_nodes:
            deployment.followers[0].crash()
        scopes = pair_scopes(enterprises)
        workload = SmallBankWorkload(
            enterprises, spec.topology.shards, scopes,
            spec.workload.mix, seed=spec.seed,
        )
        population, pools = _client_pools(
            spec, enterprises, deployment.create_client
        )

        def submit_next():
            tx_spec = workload.next_spec()
            client = _pick(pools, population, tx_spec)
            tx = Transaction(
                client=client.node_id,
                timestamp=0,
                operation=tx_spec.operation,
                scope=tx_spec.scope,
                keys=tx_spec.keys,
            )
            client.submit(tx)

        submit_next.workload = workload
        submit_next.population = population
        return cls(spec.system, deployment, submit_next)


class CaperDriver(_DriverBase):
    """Caper: single-shard enterprises, subsets promoted to the global
    chain — only internal and isce-shaped workloads apply."""

    @classmethod
    def build(cls, spec: ScenarioSpec) -> "CaperDriver":
        _require_fault_free(spec)
        mix = spec.workload.mix
        if mix.cross > 0 and mix.cross_type != "isce":
            raise WorkloadError("Caper cannot run cross-shard workloads")
        enterprises = spec.topology.enterprises
        deployment = CaperDeployment(
            enterprises=enterprises,
            failure_model="byzantine",
            cross_protocol="flattened",
            contract="smallbank",
            latency=resolve_latency(spec),
            cost_model=spec.cost if spec.cost is not None else CalibratedCost(),
            batch_size=spec.topology.batch_size,
            seed=spec.seed,
        )
        if spec.topology.crash_nodes:
            crash_backups(
                deployment.deployment, enterprises[0], spec.topology.crash_nodes
            )
        scopes = pair_scopes(enterprises)
        workload = SmallBankWorkload(
            enterprises, 1, scopes, mix, seed=spec.seed
        )
        population, pools = _client_pools(
            spec, enterprises, deployment.create_client
        )

        def submit_next():
            tx_spec = workload.next_spec()
            _pick(pools, population, tx_spec).submit(
                tx_spec.scope, tx_spec.operation, keys=tx_spec.keys
            )

        submit_next.workload = workload
        submit_next.population = population
        return cls(
            "Caper", deployment, submit_next, closer=deployment.deployment.close
        )


class ShardedDriver(_DriverBase):
    """SharPer / AHL: one enterprise, N shards — internal and
    csie-shaped workloads only (§5)."""

    SYSTEMS = {"SharPer": SharPerDeployment, "AHL": AHLDeployment}

    @classmethod
    def build(cls, spec: ScenarioSpec) -> "ShardedDriver":
        _require_fault_free(spec)
        mix = spec.workload.mix
        if mix.cross > 0 and mix.cross_type != "csie":
            raise WorkloadError(
                f"{spec.system} cannot run cross-enterprise workloads"
            )
        system = cls.SYSTEMS[spec.system](
            num_shards=spec.topology.shards,
            failure_model="byzantine",
            contract="smallbank",
            latency=resolve_latency(spec),
            cost_model=spec.cost if spec.cost is not None else CalibratedCost(),
            batch_size=spec.topology.batch_size,
            seed=spec.seed,
        )
        if spec.topology.crash_nodes:
            crash_backups(
                system.deployment, system.enterprise, spec.topology.crash_nodes
            )
        workload = SmallBankWorkload(
            (system.enterprise,), spec.topology.shards, [], mix, seed=spec.seed
        )
        population, pools = _client_pools(
            spec, (system.enterprise,), lambda _e: system.create_client()
        )

        def submit_next():
            tx_spec = workload.next_spec()
            client = _pick(pools, population, tx_spec)
            system.submit(client, tx_spec.operation, keys=tx_spec.keys)

        submit_next.workload = workload
        submit_next.population = population
        return cls(
            spec.system, system, submit_next, closer=system.deployment.close
        )


def driver_class(system: str) -> type:
    """Resolve a system label to its driver class."""
    from repro.bench.runner import FIG4_CONFIGS, QANAAT_PROTOCOLS

    if system in QANAAT_PROTOCOLS or system in FIG4_CONFIGS:
        return QanaatDriver
    if system in FabricDriver.VARIANTS:
        return FabricDriver
    if system == "Caper":
        return CaperDriver
    if system in ShardedDriver.SYSTEMS:
        return ShardedDriver
    raise WorkloadError(
        f"unknown system {system!r}; valid: "
        + ", ".join(sorted(known_systems()))
    )


def known_systems() -> list[str]:
    """Every system label the generic runner can measure."""
    from repro.bench.runner import FIG4_CONFIGS, QANAAT_PROTOCOLS

    return (
        list(QANAAT_PROTOCOLS)
        + list(FIG4_CONFIGS)
        + list(FabricDriver.VARIANTS)
        + ["Caper"]
        + list(ShardedDriver.SYSTEMS)
    )


def build_driver(spec: ScenarioSpec | DriverConfig) -> SystemDriver:
    """Build the right driver for a scenario (accepts the deprecated
    :class:`~repro.api.driver.DriverConfig` shim too)."""
    if isinstance(spec, DriverConfig):
        spec = spec.to_spec()
    if spec.workload is None:
        raise WorkloadError(
            f"scenario {spec.name!r} declares no workload; drivers measure "
            "workload-driven scenarios"
        )
    return driver_class(spec.system).build(spec)
