"""Canned experiments: one function per table/figure of §5.

Scale control: ``scale="fast"`` (default) uses 2 enterprises x 2
shards and short windows so the whole suite runs in minutes;
``scale="full"`` uses the paper's 4 x 4.  Both produce the same
*shapes*; EXPERIMENTS.md records paper-vs-measured.

Every experiment is structured as **plan → execute → merge**: the plan
step emits a flat list of :class:`~repro.bench.parallel.PointTask`
items (one self-contained :class:`~repro.scenarios.spec.ScenarioSpec`
per measured point), the execute step runs them — in order in-process,
or fanned out over a worker pool when ``jobs`` says so — and the merge
step is a pure function from keyed results to the experiment's tables.
Because the merge consumes results by key in plan order, an
experiment's output (and its ``BENCH_*.json`` artifact) is
byte-identical regardless of job count or completion order.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.parallel import PointTask, execute_tasks
from repro.bench.recovery import run_recovery_bench
from repro.bench.runner import (
    FABRIC_VARIANTS,
    QANAAT_PROTOCOLS,
    PointResult,
    point_from_payload,
    point_spec,
    sweep_merge,
    sweep_specs,
    sweep_stopped,
)
from repro.sim.latency import RegionLatency
from repro.workload.generator import WorkloadMix

ALL_SYSTEMS = list(QANAAT_PROTOCOLS) + list(FABRIC_VARIANTS)


@dataclass
class Scale:
    """"fast" uses 3 enterprises x 2 shards: enough clusters that
    cross-cluster blocks on different shared collections actually run
    in parallel (with 2 enterprises the root and the only pair coincide
    and all cross traffic serializes on one chain)."""

    enterprises: tuple[str, ...] = ("A", "B", "C")
    shards: int = 2
    warmup: float = 0.2
    measure: float = 0.4
    drain: float = 0.2
    rate_ladder: tuple[float, ...] = (3_000, 6_000, 10_000, 14_000, 19_000, 25_000)
    fixed_rate: float = 8_000


SCALES = {
    # CI-sized: small enough that the whole scenario matrix runs in
    # seconds, big enough that cross-shard and cross-enterprise
    # traffic both exist.
    "smoke": Scale(
        enterprises=("A", "B"),
        shards=2,
        warmup=0.1,
        measure=0.3,
        drain=0.15,
        rate_ladder=(1_000, 2_000, 4_000),
        fixed_rate=1_500,
    ),
    "fast": Scale(),
    "full": Scale(
        enterprises=("A", "B", "C", "D"),
        shards=4,
        warmup=0.4,
        measure=0.8,
        drain=0.3,
        rate_ladder=(5_000, 15_000, 30_000, 50_000, 75_000, 105_000),
        fixed_rate=20_000,
    ),
}


def _kwargs(scale: Scale, **extra):
    base = dict(
        enterprises=scale.enterprises,
        shards=scale.shards,
        warmup=scale.warmup,
        measure=scale.measure,
        drain=scale.drain,
    )
    base.update(extra)
    return base


def _print_rows(title: str, rows: list[PointResult]) -> None:
    print(f"\n=== {title} ===")
    for row in rows:
        print("  " + row.row())


# ----------------------------------------------------------------------
# plan/merge helpers shared by the sweep-shaped experiments
# ----------------------------------------------------------------------
def _sweep_tasks(prefix: tuple, system: str, scale: Scale, mix, **kwargs):
    """One chained task per rung of the scale's rate ladder (the same
    specs :func:`repro.bench.runner.sweep` plans from)."""
    specs = sweep_specs(system, list(scale.rate_ladder), mix, **kwargs)
    return [
        PointTask(
            key=prefix + (system, rung),
            spec=spec,
            chain=prefix + (system,),
        )
        for rung, spec in enumerate(specs)
    ]


def _sweep_stop(accumulated: list[dict]) -> bool:
    return sweep_stopped([point_from_payload(p) for p in accumulated])


def _merge_sweep(raw: dict, prefix: tuple, system: str, ladder_len: int):
    """Reassemble one system's ladder (tolerating rungs sequential
    early-stop never ran) and reduce it to (curve, best)."""
    points = [
        point_from_payload(raw[prefix + (system, rung)])
        for rung in range(ladder_len)
        if prefix + (system, rung) in raw
    ]
    return sweep_merge(points)


# ----------------------------------------------------------------------
# Figures 7, 8, 9: latency-vs-throughput by cross-transaction type
# ----------------------------------------------------------------------
def _figure_cross_type(
    cross_type: str,
    percentages,
    scale_name: str,
    systems,
    curves: bool,
    seed: int = 1,
    jobs: int | None = None,
) -> dict:
    scale = SCALES[scale_name]
    tasks: list[PointTask] = []
    for pct in percentages:
        mix = WorkloadMix(cross=pct / 100.0, cross_type=cross_type)
        for system in systems:
            tasks.extend(
                _sweep_tasks((pct,), system, scale, mix, **_kwargs(scale, seed=seed))
            )
    raw = execute_tasks(tasks, jobs=jobs, stop=_sweep_stop)
    results: dict = {}
    for pct in percentages:
        panel = []
        for system in systems:
            curve, best = _merge_sweep(raw, (pct,), system, len(scale.rate_ladder))
            panel.append(best if not curves else curve)
        label = f"{pct}% {cross_type}"
        results[label] = panel
        _print_rows(
            f"{label} (just below saturation)",
            panel if not curves else [p for c in panel for p in c],
        )
    return results


def fig7(scale: str = "fast", percentages=(10, 50, 90), systems=None, curves=False,
         seed: int = 1, jobs: int | None = None):
    """Figure 7: intra-shard cross-enterprise workloads."""
    return _figure_cross_type(
        "isce", percentages, scale, systems or ALL_SYSTEMS, curves, seed=seed,
        jobs=jobs,
    )


def fig8(scale: str = "fast", percentages=(10, 50, 90), systems=None, curves=False,
         seed: int = 1, jobs: int | None = None):
    """Figure 8: cross-shard intra-enterprise workloads."""
    return _figure_cross_type(
        "csie", percentages, scale, systems or ALL_SYSTEMS, curves, seed=seed,
        jobs=jobs,
    )


def fig9(scale: str = "fast", percentages=(10, 50, 90), systems=None, curves=False,
         seed: int = 1, jobs: int | None = None):
    """Figure 9: cross-shard cross-enterprise workloads."""
    return _figure_cross_type(
        "csce", percentages, scale, systems or ALL_SYSTEMS, curves, seed=seed,
        jobs=jobs,
    )


# ----------------------------------------------------------------------
# Figure 10: scalability across spatial domains (4 AWS regions)
# ----------------------------------------------------------------------
def _wan_latency(scale: Scale) -> RegionLatency:
    regions = ("TY", "SU", "VA", "CA")
    region_of = {}
    for index, enterprise in enumerate(scale.enterprises):
        for shard in range(scale.shards):
            region_of[f"{enterprise}{shard + 1}"] = regions[index % 4]
    for index, enterprise in enumerate(scale.enterprises):
        region_of[f"client-{enterprise}"] = regions[index % 4]
    return RegionLatency(region_of)


def fig10(scale: str = "fast", systems=None, seed: int = 1, jobs: int | None = None):
    """Figure 10: 10% cross workloads over the paper's RTT matrix.

    Fabric and variants are excluded, as in the paper (a single
    ordering service cannot be meaningfully geo-distributed).
    """
    sc = SCALES[scale]
    systems = systems or list(QANAAT_PROTOCOLS)
    latency = _wan_latency(sc)
    cross_types = ("isce", "csie", "csce")
    tasks: list[PointTask] = []
    for cross_type in cross_types:
        mix = WorkloadMix(cross=0.10, cross_type=cross_type)
        for system in systems:
            tasks.extend(
                _sweep_tasks(
                    (cross_type,), system, sc, mix,
                    **_kwargs(sc, latency=latency, seed=seed),
                )
            )
    raw = execute_tasks(tasks, jobs=jobs, stop=_sweep_stop)
    results = {}
    for cross_type in cross_types:
        panel = [
            _merge_sweep(raw, (cross_type,), system, len(sc.rate_ladder))[1]
            for system in systems
        ]
        results[cross_type] = panel
        _print_rows(f"Fig10 10% {cross_type} over 4 AWS regions", panel)
    return results


# ----------------------------------------------------------------------
# Table 2: varying the number of enterprises
# ----------------------------------------------------------------------
def table2(scale: str = "fast", enterprise_counts=None, systems=None, seed: int = 1,
           jobs: int | None = None):
    """Table 2: 90% internal + 10% cross, 2..8 enterprises."""
    sc = SCALES[scale]
    if enterprise_counts is None:
        enterprise_counts = (2, 4) if scale == "fast" else (2, 4, 6, 8)
    systems = systems or list(QANAAT_PROTOCOLS)
    names = tuple("ABCDEFGH")
    mix = WorkloadMix(cross=0.10, cross_type="isce")
    tasks: list[PointTask] = []
    for count in enterprise_counts:
        for system in systems:
            tasks.extend(
                _sweep_tasks(
                    (count,), system, sc, mix,
                    **_kwargs(sc, enterprises=names[:count], seed=seed),
                )
            )
    raw = execute_tasks(tasks, jobs=jobs, stop=_sweep_stop)
    results = {}
    for count in enterprise_counts:
        panel = [
            _merge_sweep(raw, (count,), system, len(sc.rate_ladder))[1]
            for system in systems
        ]
        results[count] = panel
        _print_rows(f"Table 2 with {count} enterprises", panel)
    return results


# ----------------------------------------------------------------------
# Table 3: performance with faulty nodes
# ----------------------------------------------------------------------
def table3(scale: str = "fast", systems=None, seed: int = 1, jobs: int | None = None):
    """Table 3: one failed non-primary node (plus exec+filter for PF)."""
    sc = SCALES[scale]
    systems = systems or ALL_SYSTEMS
    mix = WorkloadMix(cross=0.10, cross_type="isce")
    cases = (("no fail", 0), ("1 fail", 1))
    tasks = [
        PointTask(
            key=(label, system),
            spec=point_spec(
                system, sc.fixed_rate, mix,
                **_kwargs(sc, crash_nodes=crash, seed=seed),
            ),
        )
        for label, crash in cases
        for system in systems
    ]
    raw = execute_tasks(tasks, jobs=jobs)
    results = {}
    for label, _ in cases:
        panel = [point_from_payload(raw[(label, system)]) for system in systems]
        results[label] = panel
        _print_rows(f"Table 3 ({label}) at {sc.fixed_rate:.0f} tps offered", panel)
    return results


# ----------------------------------------------------------------------
# Figure 11: contention (Zipfian skew)
# ----------------------------------------------------------------------
def fig11(scale: str = "fast", skews=(0.0, 1.0, 2.0), systems=None, seed: int = 1,
          jobs: int | None = None):
    """Figure 11: 90% internal + 10% cross under key skew.

    Qanaat orders-then-executes so skew barely matters; Fabric-family
    systems lose most throughput to MVCC invalidation, with Fabric++
    rescuing part of it through reordering/early abort.
    """
    sc = SCALES[scale]
    systems = systems or ALL_SYSTEMS
    tasks = [
        PointTask(
            key=(skew, system),
            spec=point_spec(
                system, sc.fixed_rate,
                WorkloadMix(
                    cross=0.10, cross_type="isce", zipf_s=skew,
                    accounts_per_shard=500,
                ),
                **_kwargs(sc, seed=seed),
            ),
        )
        for skew in skews
        for system in systems
    ]
    raw = execute_tasks(tasks, jobs=jobs)
    results = {}
    for skew in skews:
        panel = [point_from_payload(raw[(skew, system)]) for system in systems]
        results[skew] = panel
        _print_rows(f"Fig11 zipf s={skew} at {sc.fixed_rate:.0f} tps offered", panel)
    return results


# ----------------------------------------------------------------------
# Ablations (DESIGN.md §5)
# ----------------------------------------------------------------------
def ablation_batching(scale: str = "fast", sizes=(1, 8, 64, 256), seed: int = 1,
                      jobs: int | None = None):
    """Batch size vs throughput/latency for Flt-C."""
    sc = SCALES[scale]
    mix = WorkloadMix(cross=0.10, cross_type="isce")
    tasks = [
        PointTask(
            key=(size,),
            spec=point_spec(
                "Flt-C", sc.fixed_rate, mix,
                **_kwargs(sc, batch_size=size, seed=seed),
            ),
        )
        for size in sizes
    ]
    raw = execute_tasks(tasks, jobs=jobs)
    panel = []
    for size in sizes:
        point = point_from_payload(raw[(size,)])
        point.system = f"Flt-C/B={size}"
        panel.append(point)
    _print_rows("Ablation: batch size (Flt-C)", panel)
    return panel


def ablation_gamma(scale: str = "fast"):
    """γ transitive reduction: ID size saved, throughput unchanged.

    Measured directly on SequenceBooks over the bench collection
    lattice rather than end-to-end (reduction changes bytes on the
    wire, which the cost model does not charge for).
    """
    from repro.datamodel.collections import CollectionRegistry
    from repro.datamodel.txid import SequenceBook

    registry = CollectionRegistry()
    registry.create("ABCD")
    for e in "ABCD":
        registry.create(e)
    for pair in ("AB", "AC", "AD", "BC", "BD", "CD"):
        registry.create(pair)
    sizes = {}
    for reduce_gamma in (False, True):
        book = SequenceBook(registry, reduce_gamma=reduce_gamma)
        total_entries = 0
        order = ["ABCD", "AB", "AC", "BC", "A", "B", "ABCD", "CD", "C", "D"]
        for _ in range(20):
            for label in order:
                tx_id = book.assign(registry.get_by_label(label))
                book.commit(tx_id)
                total_entries += len(tx_id.gamma)
        sizes["reduced" if reduce_gamma else "full"] = total_entries
    saved = 1 - sizes["reduced"] / sizes["full"]
    print(
        f"\n=== Ablation: gamma transitive reduction ===\n"
        f"  full gamma entries:    {sizes['full']}\n"
        f"  reduced gamma entries: {sizes['reduced']}  "
        f"({saved:.0%} smaller IDs)"
    )
    return sizes


def baseline_landscape(scale: str = "fast", seed: int = 1, jobs: int | None = None):
    """Related-work landscape (§6), two comparable slices.

    1. Confidential subset collaborations: Caper promotes every subset
       collaboration to its global chain across *all* enterprises,
       while Qanaat runs them on the pair's own collection — Caper's
       curve collapses as the subset share grows.
    2. Cross-shard intra-enterprise: SharPer/AHL are restricted to one
       enterprise; Qanaat's csie protocols (their direct descendants)
       match them, which is exactly the §5 claim that the comparison
       is only meaningful on this slice.
    """
    sc = SCALES[scale]
    slices = [
        (
            f"subset {pct}%",
            f"Landscape: {pct}% subset collaborations "
            f"(Qanaat d_XY vs Caper global chain)",
            WorkloadMix(cross=pct / 100.0, cross_type="isce"),
            ("Flt-B", "Caper"),
        )
        for pct in (10, 50)
    ] + [
        (
            f"cross-shard {pct}%",
            f"Landscape: {pct}% cross-shard intra-enterprise "
            f"(Qanaat vs SharPer/AHL)",
            WorkloadMix(cross=pct / 100.0, cross_type="csie"),
            ("Flt-B", "Crd-B", "SharPer", "AHL"),
        )
        for pct in (10, 50)
    ]
    tasks = [
        PointTask(
            key=(label, system),
            spec=point_spec(system, sc.fixed_rate, mix, **_kwargs(sc, seed=seed)),
        )
        for label, _, mix, systems in slices
        for system in systems
    ]
    raw = execute_tasks(tasks, jobs=jobs)
    results: dict = {}
    for label, title, _, systems in slices:
        panel = [point_from_payload(raw[(label, system)]) for system in systems]
        results[label] = panel
        _print_rows(title, panel)
    return results


def ablation_fig4(scale: str = "fast", seed: int = 1, jobs: int | None = None):
    """Figure 4 infrastructure ladder at one load.

    (a) crash combined -> (b) Byzantine ordering + crash execution ->
    (c) single crash filter row -> (d) full h+1 x h+1 firewall: each
    step buys a weaker trust assumption and costs latency/throughput.
    """
    sc = SCALES[scale]
    mix = WorkloadMix(cross=0.10, cross_type="isce")
    configs = ("Fig4a", "Fig4b", "Fig4c", "Fig4d")
    tasks = [
        PointTask(
            key=(name,),
            spec=point_spec(name, sc.fixed_rate, mix, **_kwargs(sc, seed=seed)),
        )
        for name in configs
    ]
    raw = execute_tasks(tasks, jobs=jobs)
    panel = [point_from_payload(raw[(name,)]) for name in configs]
    _print_rows("Ablation: Figure 4 configurations (flattened)", panel)
    return panel


def ablation_checkpoint(scale: str = "fast", intervals=(0, 16, 64, 256), seed: int = 1,
                        jobs: int | None = None):
    """Checkpointing cost: interval vs throughput/latency (Flt-C).

    Checkpoint votes ride the same network and CPU as consensus, so
    tight intervals tax throughput; 0 disables checkpointing (the
    no-GC, unbounded-log configuration)."""
    sc = SCALES[scale]
    mix = WorkloadMix(cross=0.10, cross_type="isce")
    tasks = [
        PointTask(
            key=(interval,),
            spec=point_spec(
                "Flt-C", sc.fixed_rate, mix,
                **_kwargs(sc, checkpoint_interval=interval, seed=seed),
            ),
        )
        for interval in intervals
    ]
    raw = execute_tasks(tasks, jobs=jobs)
    panel = []
    for interval in intervals:
        point = point_from_payload(raw[(interval,)])
        point.system = f"Flt-C/ckpt={interval or 'off'}"
        panel.append(point)
    _print_rows("Ablation: checkpoint interval (Flt-C)", panel)
    return panel


# ----------------------------------------------------------------------
# Durability: crash-recovery scenario (repro.bench.recovery)
# ----------------------------------------------------------------------
def recovery(scale: str = "fast", seed: int = 1, out: str | None = None):
    """Kill a replica mid-measurement, rebuild it from WAL/SQLite
    state, verify per-chain digests; writes ``BENCH_recovery.json``."""
    sc = SCALES[scale]
    print("\n=== Crash-recovery (durable storage backends) ===")
    return run_recovery_bench(
        out_path=out if out is not None else "BENCH_recovery.json",
        seed=seed,
        enterprises=sc.enterprises[:2],
        shards=sc.shards,
        warmup=sc.warmup,
        measure=sc.measure * 2,
        drain=sc.drain,
    )


# ----------------------------------------------------------------------
# Scenario matrix (repro.scenarios registry)
# ----------------------------------------------------------------------
def scenarios(
    scale: str = "fast",
    seed: int = 1,
    out: str | None = None,
    names: tuple[str, ...] | None = None,
    jobs: int | None = None,
):
    """Scenario-matrix sweep: every registered named scenario (fault
    timelines included) at one scale; writes ``BENCH_scenarios.json``
    with per-window throughput/latency/abort-rate and fault traces."""
    import time

    from repro.bench.report import write_json
    from repro.scenarios import bench_scenarios, summary_row
    from repro.scenarios.runner import run_scenarios

    from repro.obs import TRACE_SCHEMA_VERSION

    sc = SCALES[scale]
    specs = bench_scenarios(sc, seed=seed, names=names)
    print(f"\n=== Scenario matrix ({len(specs)} scenarios, scale={scale}) ===")
    started = time.perf_counter()
    results = run_scenarios(specs, jobs=jobs)
    elapsed = time.perf_counter() - started
    for report in results.values():
        print("  " + summary_row(report))
    payload = {
        "experiment": "scenarios",
        "scale": scale,
        "seed": seed,
        # Version of the repro.obs span/fault-trace schema the reports
        # (and any exported trace JSONL) follow.
        "trace_schema": TRACE_SCHEMA_VERSION,
        "results": results,
        # Matrix-level measurement context; per-scenario perf blocks
        # live inside each report.  All perf data is excluded from the
        # determinism byte-compare (repro.bench.compare).
        "perf": {
            "wall_clock_s": round(elapsed, 3),
            "digest_calls": sum(
                r["perf"]["digest_calls"] for r in results.values()
            ),
            "verify_calls": sum(
                r["perf"]["verify_calls"] for r in results.values()
            ),
            "events": sum(r["perf"]["events"] for r in results.values()),
        },
    }
    write_json(out if out is not None else "BENCH_scenarios.json", payload)
    return payload


# ----------------------------------------------------------------------
# Population-scale workload matrix (repro.workload.population)
# ----------------------------------------------------------------------
#: Logical-population sizes per cell: the small size exercises the
#: exact-CDF Zipf path, the large one the rejection-inversion sampler
#: (and the headline claim: a million logical clients per enterprise on
#: an eight-actor wire pool).
POPULATION_SIZES = (10_000, 1_000_000)
POPULATION_SKEWS = (0.0, 1.2)
POPULATION_POOL = 8


def _population_specs(sc: Scale, seed: int, kernel_workers: int | None):
    from repro.scenarios import (
        ArrivalSpec,
        MeasurementSpec,
        PopulationSpec,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )

    profiles = {
        "constant": None,
        "diurnal": ArrivalSpec(
            profile="diurnal", period=sc.measure, amplitude=0.4
        ),
        "flash": ArrivalSpec(
            profile="flash",
            spike=2.5,
            spike_start=sc.warmup + sc.measure / 4,
            spike_duration=sc.measure / 2,
            hot_fraction=0.5,
            migrate_every=sc.measure / 8,
        ),
    }
    specs = {}
    for size in POPULATION_SIZES:
        for skew in POPULATION_SKEWS:
            for profile_name, arrival in profiles.items():
                name = f"pop-{size}-s{skew}-{profile_name}"
                specs[name] = ScenarioSpec(
                    name=name,
                    system="Flt-C",
                    topology=TopologySpec(
                        enterprises=sc.enterprises,
                        shards=sc.shards,
                        batch_size=16,
                    ),
                    workload=WorkloadSpec(
                        rate=sc.fixed_rate,
                        mix=WorkloadMix(cross=0.10, cross_type="isce"),
                        population=PopulationSpec(
                            size=size, skew=skew, pool=POPULATION_POOL
                        ),
                        arrival=arrival,
                    ),
                    measurement=MeasurementSpec(
                        warmup=sc.warmup,
                        measure=sc.measure,
                        drain=sc.drain,
                        window=sc.measure / 6,
                    ),
                    seed=seed,
                    kernel_workers=kernel_workers,
                )
    return specs


def population(
    scale: str = "smoke",
    seed: int = 1,
    out: str | None = None,
    jobs: int | None = None,
    kernel_workers: int | None = None,
):
    """Population-scale workload matrix: logical-population sizes x
    activity skews x arrival profiles (constant, diurnal wave, flash
    crowd with migrating hotspot), every cell multiplexing its
    population onto a bounded wire-client pool; writes
    ``BENCH_population.json`` with per-bucket ``series`` and
    ``population`` blocks.  Asserts the wire bound on every cell: actors
    used never exceed the declared pool.  The artifact is byte-identical
    (modulo ``perf``/``obs``) at any ``jobs`` and — given the same
    ``kernel_workers`` — any worker-pool width."""
    import time

    from repro.bench.report import write_json
    from repro.scenarios import summary_row
    from repro.scenarios.runner import run_scenarios

    sc = SCALES[scale]
    specs = _population_specs(sc, seed, kernel_workers)
    print(
        f"\n=== Population workload matrix ({len(specs)} cells, "
        f"scale={scale}) ==="
    )
    started = time.perf_counter()
    results = run_scenarios(specs, jobs=jobs)
    elapsed = time.perf_counter() - started
    pools = {}
    for name, report in results.items():
        stats = report["population"]
        if stats["wire_clients_used"] > stats["wire_clients"]:
            raise AssertionError(
                f"{name}: wire-client bound violated — "
                f"{stats['wire_clients_used']} actors used, pool is "
                f"{stats['wire_clients']}"
            )
        pools[name] = report["perf"]["client_pool"]
        print(
            "  " + summary_row(report)
            + f"  logical={stats['logical_clients']:>9}"
            f"  wire={stats['wire_clients_used']}/{stats['wire_clients']}"
        )
    payload = {
        "experiment": "population",
        "scale": scale,
        "seed": seed,
        "results": results,
        "perf": {
            "wall_clock_s": round(elapsed, 3),
            "digest_calls": sum(
                r["perf"]["digest_calls"] for r in results.values()
            ),
            "events": sum(r["perf"]["events"] for r in results.values()),
            # The wire bound each cell ran under (the pool-bound
            # assertion above holds over these).
            "client_pool": pools,
        },
    }
    write_json(out if out is not None else "BENCH_population.json", payload)
    return payload


# ----------------------------------------------------------------------
# Observability smoke (repro.obs)
# ----------------------------------------------------------------------
def obs(
    scale: str = "smoke",
    seed: int = 1,
    out: str | None = None,
    trace_out: str | None = None,
):
    """Observability smoke: one traced cross-shard cross-enterprise
    scenario; writes ``BENCH_obs.json`` + the trace JSONL next to it."""
    from pathlib import Path

    from repro import obs as obs_mod
    from repro.bench.report import write_json
    from repro.obs import TRACE_SCHEMA_VERSION
    from repro.scenarios import (
        MeasurementSpec,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
        run_scenario,
        summary_row,
    )

    sc = SCALES[scale]
    # Two enterprises, two shards, coordinator-run Byzantine clusters,
    # 30% csce traffic and batch_size=1: every consensus family phase
    # (PBFT three-phase, cross lock/vote/decide, execute) appears in
    # the trace, and one-transaction blocks keep tx -> block -> phase
    # parentage easy to eyeball in the waterfall.
    spec = ScenarioSpec(
        name="obs-cross-enterprise",
        system="Crd-B",
        topology=TopologySpec(
            enterprises=sc.enterprises[:2],
            shards=max(sc.shards, 2),
            batch_size=1,
        ),
        workload=WorkloadSpec(
            rate=sc.fixed_rate / 4,
            mix=WorkloadMix(cross=0.30, cross_type="csce"),
        ),
        measurement=MeasurementSpec(
            warmup=sc.warmup, measure=sc.measure, drain=sc.drain
        ),
        seed=seed,
        trace=True,
    )
    print(f"\n=== Observability smoke (traced, scale={scale}) ===")
    report = run_scenario(spec)
    print("  " + summary_row(report))
    # The embedded JSONL becomes its own artifact; the JSON report
    # keeps the span count / metric snapshot.  Under a caller-owned
    # tracer (bench --trace) the report carries no JSONL — read the
    # live tracer instead.
    trace_jsonl = report["obs"].pop("trace_jsonl", None)
    if trace_jsonl is None and obs_mod.TRACER is not None:
        trace_jsonl = obs_mod.TRACER.to_jsonl()
    out_path = Path(out) if out is not None else Path("BENCH_obs.json")
    if trace_out is None:
        trace_out = str(out_path.parent / "BENCH_obs_trace.jsonl")
    if trace_jsonl is not None:
        trace_path = Path(trace_out)
        trace_path.parent.mkdir(parents=True, exist_ok=True)
        trace_path.write_text(trace_jsonl, encoding="utf-8")
        print(f"  trace written to {trace_path}")
    payload = {
        "experiment": "obs",
        "scale": scale,
        "seed": seed,
        "trace_schema": TRACE_SCHEMA_VERSION,
        "results": {spec.name: report},
        "perf": {
            "wall_clock_s": report["perf"]["wall_clock_s"],
            "digest_calls": report["perf"]["digest_calls"],
            "events": report["perf"]["events"],
        },
    }
    write_json(out_path, payload)
    return payload


# ----------------------------------------------------------------------
# Shard-parallel kernel sweep (repro.sim.shardpar)
# ----------------------------------------------------------------------
#: Shards-per-enterprise ladder for the shard-parallel sweep (two
#: enterprises throughout, so total clusters = 2 x shards; ``full``
#: tops out at the 16-cluster scenario the tentpole targets).
SHARDPAR_SHARDS = {"smoke": (2,), "fast": (2, 4), "full": (4, 8)}
SHARDPAR_RATE = {"smoke": 100.0, "fast": 250.0, "full": 250.0}


def shardpar(
    scale: str = "fast",
    seed: int = 1,
    out: str | None = None,
    kernel_workers: int | None = None,
):
    """Shard-parallel kernel sweep: shards x worker counts, each point
    byte-compared across worker counts and timed against the plain
    sequential kernel; writes ``BENCH_shardpar.json`` with per-point
    speedups in the ``perf`` block."""
    import dataclasses
    import time as _time

    from repro.bench.report import canonical_json, strip_perf, write_json
    from repro.scenarios import run_scenario, shardpar_scenario
    from repro.scenarios.shardpar import run_scenario_shardpar

    sc = SCALES[scale]
    worker_counts = (1, 2) if scale == "smoke" else (1, 2, 4)
    if kernel_workers is not None:
        worker_counts = tuple(sorted({1, kernel_workers}))
    print(
        f"\n=== Shard-parallel kernel sweep (scale={scale}, "
        f"workers={list(worker_counts)}) ==="
    )
    results: dict = {}
    points: dict = {}
    for shards in SHARDPAR_SHARDS[scale]:
        spec = shardpar_scenario(
            shards=shards,
            seed=seed,
            rate_per_cluster=SHARDPAR_RATE[scale],
            warmup=sc.warmup,
            measure=sc.measure,
            drain=sc.drain,
        )
        label = f"{len(spec.topology.enterprises)}x{shards}"
        seq_started = _time.perf_counter()
        sequential = run_scenario(
            dataclasses.replace(spec, kernel_workers=None)
        )
        seq_wall = _time.perf_counter() - seq_started
        reference: str | None = None
        per_worker: dict = {}
        for workers in worker_counts:
            report = run_scenario_shardpar(spec.with_kernel_workers(workers))
            stripped = canonical_json(strip_perf(report))
            if reference is None:
                reference = stripped
                results[label] = {
                    "shardpar": strip_perf(report),
                    # The sequential kernel's numbers are deterministic
                    # too; recording them makes the artifact show both
                    # interleavings side by side.
                    "sequential": strip_perf(sequential),
                }
            elif stripped != reference:
                raise AssertionError(
                    f"shard-parallel determinism violated: {label} at "
                    f"kernel_workers={workers} diverged from "
                    f"kernel_workers={worker_counts[0]}"
                )
            wall = report["perf"]["wall_clock_s"]
            per_worker[str(workers)] = {
                "wall_clock_s": wall,
                "speedup_vs_sequential": (
                    round(seq_wall / wall, 3) if wall > 0 else 0.0
                ),
            }
        points[label] = {
            "sequential_wall_s": round(seq_wall, 6),
            "workers": per_worker,
        }
        row = " ".join(
            f"w{workers}={data['wall_clock_s']:.2f}s"
            f"(x{data['speedup_vs_sequential']:.2f})"
            for workers, data in per_worker.items()
        )
        print(f"  {label:<6} seq={seq_wall:.2f}s  {row}")
    payload = {
        "experiment": "shardpar",
        "scale": scale,
        "seed": seed,
        "results": results,
        "perf": {"points": points},
    }
    write_json(out if out is not None else "BENCH_shardpar.json", payload)
    return payload


# ----------------------------------------------------------------------
# Ledger analytics (repro.analytics)
# ----------------------------------------------------------------------
#: Ledger sizes per scale for the analytics benchmark.  The tentpole
#: claim is stated at ``full``: four-family query latency percentiles
#: over a 1M-record multi-shard ledger, every sampled answer verified
#: against the in-process implementation.
ANALYTICS_RECORDS = {"smoke": 2_000, "fast": 50_000, "full": 1_000_000}
ANALYTICS_KEYS = {"smoke": 24, "fast": 48, "full": 96}


def analytics(
    scale: str = "fast",
    seed: int = 1,
    jobs: int | None = None,
    out: str | None = None,
):
    """Off-replica analytics: fill a seeded multi-collection ledger,
    ingest its journal into the indexed analytics database, cross-check
    the four query families against the in-process answers, and report
    per-family latency percentiles; writes ``BENCH_analytics.json``
    (ledger + analytics databases land in ``analytics_data/`` next to
    it, ready for ``python -m repro.analytics``)."""
    from pathlib import Path

    from repro.analytics.bench import run_analytics_bench

    sc = SCALES[scale]
    return run_analytics_bench(
        Path(out) if out is not None else Path("BENCH_analytics.json"),
        records=ANALYTICS_RECORDS[scale],
        shards=sc.shards,
        seed=seed,
        jobs=jobs,
        scale_name=scale,
        keys_per_shard=ANALYTICS_KEYS[scale],
    )


# ----------------------------------------------------------------------
# Adaptive batching / pipelined window knee sweep (PR 10)
# ----------------------------------------------------------------------
#: Batch-cap x inflight-window grids per scale.  The cap ladder spans
#: "seal almost every arrival alone" to "deep amortization"; the window
#: ladder spans strict one-at-a-time consensus to deep pipelining, so
#: the saturation knee is visible inside the grid at every scale.
BATCHING_CAPS = {"smoke": (4, 16, 64), "fast": (4, 16, 64), "full": (8, 32, 128)}
BATCHING_WINDOWS = {"smoke": (1, 4, 16), "fast": (1, 4, 16), "full": (1, 8, 32)}
#: Named workload mixes the sweep crosses the grid with: pure
#: single-shard traffic (internal-consensus lane) and a cross-heavy mix
#: (cross-engine lane, where the window gates engine flows instead).
BATCHING_WORKLOADS = {
    "local": WorkloadMix(),
    "cross": WorkloadMix(cross=0.20, cross_type="isce"),
}


def _batching_specs(sc: Scale, seed, kernel_workers, caps, windows, workloads):
    from repro.scenarios import (
        MeasurementSpec,
        ScenarioSpec,
        TopologySpec,
        WorkloadSpec,
    )

    specs = {}
    for wl_name in workloads:
        mix = BATCHING_WORKLOADS[wl_name]
        for cap in caps:
            for window in windows:
                name = f"batch-{wl_name}-c{cap}-w{window}"
                specs[name] = ScenarioSpec(
                    name=name,
                    system="Flt-C",
                    topology=TopologySpec(
                        enterprises=sc.enterprises,
                        shards=sc.shards,
                        batch_size=cap,
                        batch_adaptive=True,
                        max_inflight=window,
                    ),
                    # Well past the top of the rate ladder: the sweep
                    # wants the saturated regime, where sealing policy
                    # and window depth — not offered load — decide
                    # throughput, so the knee is visible in the grid.
                    workload=WorkloadSpec(
                        rate=sc.rate_ladder[-1] * 4, mix=mix
                    ),
                    measurement=MeasurementSpec(
                        warmup=sc.warmup, measure=sc.measure, drain=sc.drain
                    ),
                    seed=seed,
                    kernel_workers=kernel_workers,
                )
    return specs


def batching(
    scale: str = "smoke",
    seed: int = 1,
    out: str | None = None,
    jobs: int | None = None,
    kernel_workers: int | None = None,
    caps: tuple[int, ...] | None = None,
    windows: tuple[int, ...] | None = None,
    workloads: tuple[str, ...] | None = None,
):
    """Adaptive-batching knee sweep: batch cap x inflight window x
    workload mix on the adaptive sealer, plus a per-signature-baseline
    rerun of one cell proving verify_many reduces ``verify_calls``
    without changing results; writes ``BENCH_batching.json`` with the
    throughput matrix and per-point ``perf`` blocks.  The artifact is
    byte-identical (modulo ``perf``/``obs``) at any ``jobs`` and
    ``kernel_workers``."""
    import time

    from repro.bench.report import canonical_json, strip_perf, write_json
    from repro.crypto.signatures import set_batch_verify
    from repro.errors import ConfigurationError
    from repro.scenarios import run_scenario, summary_row
    from repro.scenarios.runner import run_scenarios

    if scale not in SCALES:
        raise ConfigurationError(
            f"unknown scale {scale!r}; valid: " + ", ".join(SCALES)
        )
    sc = SCALES[scale]
    caps = tuple(caps) if caps is not None else BATCHING_CAPS[scale]
    windows = tuple(windows) if windows is not None else BATCHING_WINDOWS[scale]
    workloads = (
        tuple(workloads) if workloads is not None else tuple(BATCHING_WORKLOADS)
    )
    for cap in caps:
        if not isinstance(cap, int) or isinstance(cap, bool) or cap < 1:
            raise ConfigurationError(
                f"batch caps must be integers >= 1, got {cap!r}"
            )
    for window in windows:
        if not isinstance(window, int) or isinstance(window, bool) or window < 1:
            raise ConfigurationError(
                f"inflight windows must be integers >= 1, got {window!r}"
            )
    for wl_name in workloads:
        if wl_name not in BATCHING_WORKLOADS:
            raise ConfigurationError(
                f"unknown batching workload {wl_name!r}; valid: "
                + ", ".join(BATCHING_WORKLOADS)
            )
    specs = _batching_specs(sc, seed, kernel_workers, caps, windows, workloads)
    print(
        f"\n=== Adaptive batching sweep ({len(specs)} cells, "
        f"caps={list(caps)}, windows={list(windows)}, scale={scale}) ==="
    )
    started = time.perf_counter()
    results = run_scenarios(specs, jobs=jobs)
    elapsed = time.perf_counter() - started
    matrix: dict = {}
    for wl_name in workloads:
        cells = matrix[wl_name] = {}
        for cap in caps:
            for window in windows:
                name = f"batch-{wl_name}-c{cap}-w{window}"
                report = results[name]
                measure = report["windows"]["measure"]
                cells[f"c{cap}-w{window}"] = {
                    "throughput_tps": measure["throughput_tps"],
                    "mean_latency_ms": measure["mean_latency_ms"],
                }
                print("  " + summary_row(report))
    # The verify_many claim, measured: rerun one cell with batched
    # verification off (every signature demand checked and counted one
    # verify() at a time) and require identical results at a strictly
    # higher verify_calls count.
    probe_name = next(iter(specs))
    batched_report = results[probe_name]
    previous = set_batch_verify(False)
    try:
        baseline_report = run_scenario(specs[probe_name])
    finally:
        set_batch_verify(previous)
    if canonical_json(strip_perf(baseline_report)) != canonical_json(
        strip_perf(batched_report)
    ):
        raise AssertionError(
            f"{probe_name}: batched signature verification changed the "
            "run's results — verify_many must be outcome-preserving"
        )
    verify_batched = batched_report["perf"]["verify_calls"]
    verify_baseline = baseline_report["perf"]["verify_calls"]
    if verify_batched >= verify_baseline:
        raise AssertionError(
            f"{probe_name}: expected verify_many to reduce verify_calls "
            f"(batched={verify_batched}, baseline={verify_baseline})"
        )
    print(
        f"  verify_calls: batched={verify_batched} "
        f"baseline={verify_baseline} "
        f"(-{100 * (1 - verify_batched / verify_baseline):.1f}%)"
    )
    payload = {
        "experiment": "batching",
        "scale": scale,
        "seed": seed,
        "caps": list(caps),
        "windows": list(windows),
        "workloads": list(workloads),
        # Throughput/latency per cell — deterministic (virtual-time)
        # numbers, so they participate in the byte-compare.
        "matrix": matrix,
        "results": results,
        "perf": {
            "wall_clock_s": round(elapsed, 3),
            "digest_calls": sum(
                r["perf"]["digest_calls"] for r in results.values()
            ),
            "verify_calls": sum(
                r["perf"]["verify_calls"] for r in results.values()
            ),
            "events": sum(r["perf"]["events"] for r in results.values()),
            "verify_baseline": {
                "cell": probe_name,
                "batched_verify_calls": verify_batched,
                "baseline_verify_calls": verify_baseline,
            },
        },
    }
    write_json(out if out is not None else "BENCH_batching.json", payload)
    return payload


EXPERIMENTS = {
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "table2": table2,
    "table3": table3,
    "fig11": fig11,
    "ablation_batching": ablation_batching,
    "ablation_gamma": ablation_gamma,
    "ablation_checkpoint": ablation_checkpoint,
    "ablation_fig4": ablation_fig4,
    "baseline_landscape": baseline_landscape,
    "recovery": recovery,
    "scenarios": scenarios,
    "population": population,
    "batching": batching,
    "shardpar": shardpar,
    "obs": obs,
    "analytics": analytics,
}

#: ``--list`` presentation order: every experiment appears in exactly
#: one group (checked by a tier-1 test and the CLI itself).
EXPERIMENT_GROUPS = {
    "Paper figures and tables (§5)": (
        "fig7", "fig8", "fig9", "fig10", "fig11", "table2", "table3",
    ),
    "Ablations": (
        "ablation_batching", "ablation_gamma", "ablation_checkpoint",
        "ablation_fig4",
    ),
    "Baselines": ("baseline_landscape",),
    "Batching and pipelining": ("batching",),
    "Scenarios and durability": ("scenarios", "recovery"),
    "Population workloads": ("population",),
    "Shard-parallel kernel": ("shardpar",),
    "Observability": ("obs",),
    "Analytics": ("analytics",),
}
