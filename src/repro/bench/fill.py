"""Fill EXPERIMENTS.md's ``<!-- MEASURED:<id> -->`` blocks.

Runs each table/figure experiment at the requested scale and splices
the rendered markdown between ``<!-- MEASURED:<id> -->`` and
``<!-- /MEASURED:<id> -->`` (the end marker is added on first fill, so
re-running replaces rather than duplicates).

    python -m repro.bench.fill [--scale fast] [--experiments fig7,fig8]
"""

from __future__ import annotations

import argparse
import re
from pathlib import Path

from repro.bench.experiments import EXPERIMENTS
from repro.bench.report import markdown_table

#: Experiments whose results EXPERIMENTS.md records inline.
DEFAULT_TARGETS = (
    "fig7", "fig8", "fig9", "fig10", "table2", "table3", "fig11",
)


def render(name: str, results, scale: str) -> str:
    if isinstance(results, list):
        results = {"panel": results}
    return markdown_table(f"Measured ({name}, {scale} scale)", results)


def splice(content: str, name: str, table: str) -> str:
    begin = f"<!-- MEASURED:{name} -->"
    end = f"<!-- /MEASURED:{name} -->"
    block = f"{begin}\n\n{table}\n{end}"
    region = re.compile(
        re.escape(begin) + r".*?" + re.escape(end), flags=re.DOTALL
    )
    if region.search(content):
        return region.sub(block, content)
    if begin in content:
        return content.replace(begin, block)
    raise SystemExit(f"no marker {begin!r} in EXPERIMENTS.md")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="fast", choices=["fast", "full"])
    parser.add_argument(
        "--experiments",
        default=",".join(DEFAULT_TARGETS),
        help="comma-separated experiment ids",
    )
    parser.add_argument(
        "--file", default="EXPERIMENTS.md", type=Path,
        help="markdown file holding the MEASURED markers",
    )
    args = parser.parse_args()
    names = [n for n in args.experiments.split(",") if n]
    content = args.file.read_text()
    for name in names:
        print(f"[fill] running {name} at {args.scale} scale ...", flush=True)
        results = EXPERIMENTS[name](scale=args.scale)
        content = splice(content, name, render(name, results, args.scale))
        args.file.write_text(content)  # persist progress per experiment
        print(f"[fill] {name} written", flush=True)


if __name__ == "__main__":
    main()
