"""Parallel point execution with a deterministic merge.

Every cell of the evaluation matrix is a self-contained
:class:`~repro.scenarios.spec.ScenarioSpec`: a worker process can
build the deployment, seed the workload, and run the simulation from
the spec alone, returning a plain-dict result.  That makes the matrix
embarrassingly parallel — this module fans a flat list of
:class:`PointTask` items over a ``multiprocessing`` pool and
reassembles the results **keyed by task, in task order**, so the
merged output (and therefore every ``BENCH_*.json`` artifact) is
byte-identical regardless of job count or completion order.

Sequential execution (``jobs=1``, the default) runs the same tasks
through the same plain-dict path in-process, and additionally honors
per-chain early stopping — the classic ``sweep`` behavior of not
climbing a rate ladder past the saturation knee.  Parallel execution
runs every rung and relies on the *pure* merge step (e.g.
:func:`repro.bench.runner.sweep_merge`) to discard exactly the rungs
sequential mode never ran; both modes therefore feed identical inputs
to the merge.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Callable

from repro.scenarios.spec import ScenarioSpec


@dataclass(frozen=True)
class PointTask:
    """One independently-runnable cell of an experiment.

    ``key`` identifies the result in the merged mapping (any hashable
    tuple; experiments use label paths like ``(pct, system, rung)``).
    ``kind`` selects the runner: ``"point"`` measures through
    :func:`repro.bench.runner.run_point`, ``"scenario"`` through
    :func:`repro.scenarios.runner.run_scenario`.  Tasks sharing a
    ``chain`` id form an ordered ladder: sequential execution may stop
    a chain early (see :func:`execute_tasks`).
    """

    key: tuple
    spec: ScenarioSpec
    kind: str = "point"
    chain: tuple | None = None


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: ``None``/1 = sequential, 0 = one
    worker per CPU, N = N workers."""
    if jobs is None:
        return 1
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def run_task(task: PointTask) -> dict[str, Any]:
    """Run one task to a plain-dict result (picklable, JSON-ready).

    The hot-path interning tables (vote payloads, ledger digests,
    reply digests) are dropped after every task: their keys hold the
    point's transaction graphs, entries cannot hit across points (keys
    embed process-unique request ids), and clearing keeps a long
    matrix run's memory flat whether the task ran in-process or on a
    pool worker.
    """
    from repro.crypto.hashing import clear_intern_caches

    try:
        if task.kind == "scenario":
            from repro.scenarios.runner import run_scenario

            return run_scenario(task.spec)
        if task.kind == "point":
            from repro.bench.runner import run_point

            return dataclasses.asdict(run_point(task.spec))
    finally:
        clear_intern_caches()
    raise ValueError(f"unknown task kind {task.kind!r}")


def _pool_entry(item: tuple[int, PointTask]) -> tuple[int, dict[str, Any]]:
    index, task = item
    return index, run_task(task)


def _pool_context():
    """Fork where available: workers inherit the parent interpreter
    state (hash seed included), so a pool run is bit-equivalent to the
    in-process run.  Elsewhere fall back to spawn — results stay
    deterministic because the fan-out nondeterminisms were fixed at the
    source (see PR 3), but startup is slower."""
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )


def execute_tasks(
    tasks: list[PointTask],
    jobs: int | None = None,
    stop: Callable[[list[dict[str, Any]]], bool] | None = None,
) -> dict[tuple, dict[str, Any]]:
    """Run ``tasks``; return ``{task.key: result}`` in task order.

    Sequential mode (``jobs`` in (None, 1)) runs tasks in list order
    and consults ``stop`` after each chained task: once ``stop``
    returns True for a chain's accumulated results, the chain's
    remaining tasks are skipped (their keys are absent from the
    result).  Parallel mode runs every task over a process pool and
    ignores ``stop`` — the downstream merge must be the single source
    of truth for which results count, so that both modes produce
    identical merged output.
    """
    jobs = resolve_jobs(jobs)
    results: dict[tuple, dict[str, Any]] = {}
    if len({task.key for task in tasks}) != len(tasks):
        raise ValueError("task keys must be unique")
    if jobs == 1 or len(tasks) <= 1:
        chains: dict[tuple, list[dict[str, Any]]] = {}
        stopped: set[tuple] = set()
        for task in tasks:
            if task.chain is not None and task.chain in stopped:
                continue
            result = run_task(task)
            results[task.key] = result
            if task.chain is not None and stop is not None:
                accumulated = chains.setdefault(task.chain, [])
                accumulated.append(result)
                if stop(accumulated):
                    stopped.add(task.chain)
        return results
    context = _pool_context()
    with context.Pool(processes=min(jobs, len(tasks))) as pool:
        unordered: dict[int, dict[str, Any]] = {}
        for index, result in pool.imap_unordered(
            _pool_entry, list(enumerate(tasks))
        ):
            unordered[index] = result
    for index, task in enumerate(tasks):
        results[task.key] = unordered[index]
    return results
