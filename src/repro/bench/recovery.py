"""Crash-recovery scenario: kill a replica mid-measurement, rebuild it
from disk, verify state digests, measure recovery latency.

This is the durability/recovery workload family the in-memory seed
could not express.  One run:

1. drives a durable deployment (``storage_backend`` = ``wal`` or
   ``sqlite``) at a fixed offered load with checkpointing on, so
   stable checkpoints keep moving the durability frontier
   (snapshot + journal compaction) under live traffic;
2. crashes a non-primary replica halfway through the measurement
   window and records the exact per-chain state digests it died with;
3. rebuilds a fresh :class:`~repro.core.executor.ExecutionUnit` from
   the crashed node's on-disk state — snapshot load + log replay, zero
   re-consensus — timing the rebuild with a wall clock (this is real
   I/O, unlike the simulated protocol measurements);
4. verifies every recovered chain reproduces the pre-crash digest and
   reports recovery latency and replay throughput.

``run_recovery_bench`` runs the scenario for each durable backend and
writes the ``BENCH_recovery.json`` artifact.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.bench.report import write_json
from repro.bench.runner import _drive_arrivals, build_smallbank_deployment
from repro.core.config import DeploymentConfig
from repro.core.executor import ExecutionUnit
from repro.errors import StorageError
from repro.storage import make_backend
from repro.workload.generator import WorkloadMix


def run_recovery_scenario(
    backend: str = "wal",
    enterprises: tuple[str, ...] = ("A", "B"),
    shards: int = 2,
    failure_model: str = "crash",
    rate: float = 2_000.0,
    warmup: float = 0.2,
    measure: float = 0.6,
    drain: float = 0.2,
    checkpoint_interval: int = 16,
    batch_size: int = 16,
    seed: int = 1,
    storage_dir: str | None = None,
) -> dict[str, Any]:
    """Run one crash-recovery measurement; returns the report payload."""
    if backend == "memory":
        raise StorageError(
            "the recovery scenario needs a durable backend (wal or sqlite)"
        )
    created_dir = storage_dir is None
    if created_dir:
        storage_dir = tempfile.mkdtemp(prefix=f"qanaat-{backend}-")
    elif any(Path(storage_dir).glob("*")):
        # A fresh deployment journaling on top of an old run's files
        # would replay a chimera of both histories — refuse loudly
        # instead of reporting a silent digest mismatch.
        raise StorageError(
            f"storage_dir {storage_dir!r} is not empty: each scenario "
            "run needs a fresh directory"
        )
    try:
        return _run_recovery_scenario(
            backend, storage_dir, enterprises, shards, failure_model,
            rate, warmup, measure, drain, checkpoint_interval,
            batch_size, seed,
        )
    finally:
        if created_dir:
            shutil.rmtree(storage_dir, ignore_errors=True)


def _run_recovery_scenario(
    backend, storage_dir, enterprises, shards, failure_model,
    rate, warmup, measure, drain, checkpoint_interval, batch_size, seed,
) -> dict[str, Any]:
    config = DeploymentConfig(
        enterprises=enterprises,
        shards_per_enterprise=shards,
        failure_model=failure_model,
        batch_size=batch_size,
        batch_wait=0.002,
        checkpoint_interval=checkpoint_interval,
        storage_backend=backend,
        storage_dir=storage_dir,
        seed=seed,
    )
    deployment, submit_next = build_smallbank_deployment(
        config, WorkloadMix(cross=0.10, cross_type="isce")
    )

    # The victim: a non-primary ordering replica of the first cluster,
    # killed halfway through the measurement window.
    info = deployment.directory.at(enterprises[0], 0)
    primary = deployment.primary_of(info.name)
    victim_id = next(m for m in info.members if m != primary)
    crash_at = warmup + measure / 2
    deployment.sim.schedule(
        crash_at, lambda: deployment.crash_node(victim_id)
    )

    total = warmup + measure
    _drive_arrivals(deployment.sim, rate, total, submit_next, seed)
    deployment.run(total + drain)

    victim = deployment.nodes[victim_id]
    chains = sorted(victim.executor.ledger.chain_keys())
    pre_digests = {
        chain: victim.executor.state_digest(*chain) for chain in chains
    }
    committed_pre_crash = victim.committed_tx_count
    throughput = deployment.metrics.throughput(warmup, warmup + measure)
    deployment.close()

    # --- the recovery itself: reopen the dead node's disk state ------
    started = time.perf_counter()
    reopened = make_backend(backend, storage_dir, victim_id)
    recovered, stats = ExecutionUnit.recover(
        victim_id,
        deployment.collections,
        deployment.contracts,
        deployment.schema,
        info.shard,
        reopened,
    )
    latency = time.perf_counter() - started

    chain_reports = []
    all_match = True
    for chain in chains:
        label, shard = chain
        match = recovered.state_digest(label, shard) == pre_digests[chain]
        all_match &= match
        chain_reports.append(
            {
                "label": label,
                "shard": shard,
                "height": recovered.ledger.height(label, shard),
                "digest_match": match,
            }
        )
    reopened.close()

    return {
        "scenario": "crash-recovery",
        "backend": backend,
        "seed": seed,
        "offered_tps": rate,
        "throughput_tps": throughput,
        "victim": victim_id,
        "committed_pre_crash": committed_pre_crash,
        "chains": chain_reports,
        "digests_match": bool(all_match),
        "recovery": {
            "latency_s": latency,
            "namespaces": stats.namespaces,
            "snapshots_loaded": stats.snapshots_loaded,
            "records_replayed": stats.records_replayed,
            "replay_tps": (
                stats.records_replayed / latency if latency > 0 else 0.0
            ),
        },
    }


def run_recovery_bench(
    backends: tuple[str, ...] = ("wal", "sqlite"),
    out_path: str | Path | None = "BENCH_recovery.json",
    seed: int = 1,
    **kwargs: Any,
) -> dict[str, Any]:
    """The recovery scenario across durable backends + JSON artifact."""
    report: dict[str, Any] = {}
    for backend in backends:
        result = run_recovery_scenario(backend=backend, seed=seed, **kwargs)
        report[backend] = result
        recovery = result["recovery"]
        print(
            f"  {backend:<7} committed={result['committed_pre_crash']:>6}  "
            f"match={result['digests_match']}  "
            f"recovery={recovery['latency_s'] * 1000:>7.1f} ms  "
            f"replay={recovery['replay_tps']:>9.0f} rec/s"
        )
    if out_path is not None:
        write_json(out_path, report)
    return report
