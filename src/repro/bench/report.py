"""Render experiment results as markdown tables (EXPERIMENTS.md style)
and as JSON artifacts (``python -m repro.bench --out``)."""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path
from typing import Any

from repro.bench.runner import PointResult


def results_payload(value: Any) -> Any:
    """Experiment results (nested dicts/lists of PointResult and
    friends) as plain JSON-serializable data."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return results_payload(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {str(k): results_payload(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [results_payload(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def canonical_json(payload: Any) -> str:
    """The artifact encoding: normalized payload, sorted keys, stable
    indentation.  Two payloads holding equal results render the same
    bytes — the form in which the ``--jobs`` determinism guarantee
    ("``--jobs N`` artifacts are byte-identical to sequential ones")
    is stated and tested.  Timing metadata lives under ``perf`` keys
    and is excluded from that guarantee: compare artifacts with
    :func:`comparable_json` (or ``python -m repro.bench.compare``)."""
    return json.dumps(results_payload(payload), indent=2, sort_keys=True) + "\n"


#: The reserved metadata key carrying nondeterministic measurement
#: context (wall-clock, events/sec, hot-path counters).
PERF_KEY = "perf"

#: The reserved metadata key carrying observability output (trace span
#: counts, metric snapshots, embedded trace JSONL).  Deterministic per
#: seed, but present only when tracing is on — stripped alongside
#: ``perf`` so traced and untraced artifacts compare equal.
OBS_KEY = "obs"

_METADATA_KEYS = frozenset((PERF_KEY, OBS_KEY))


def strip_perf(payload: Any) -> Any:
    """A deep copy of ``payload`` without any ``perf``/``obs`` metadata
    blocks (at any nesting level) — the deterministic-results
    projection the byte-identity guarantee is stated over."""
    if isinstance(payload, dict):
        return {
            k: strip_perf(v)
            for k, v in payload.items()
            if k not in _METADATA_KEYS
        }
    if isinstance(payload, (list, tuple)):
        return [strip_perf(v) for v in payload]
    return payload


def comparable_json(payload: Any) -> str:
    """:func:`canonical_json` modulo perf metadata — two artifacts from
    the same seed must render identical bytes through this, regardless
    of job count, machine, or load."""
    return canonical_json(strip_perf(results_payload(payload)))


def write_json(path: str | Path, payload: Any) -> Path:
    """Write one experiment's results where ``--out`` pointed."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(canonical_json(payload), encoding="utf-8")
    return path


def markdown_table(title: str, panels: dict[object, list[PointResult]]) -> str:
    """One markdown table per panel of an experiment's results."""
    lines = [f"### {title}", ""]
    for label, points in panels.items():
        lines.append(f"**{label}**")
        lines.append("")
        lines.append("| system | throughput (tps) | latency (ms) |")
        lines.append("|---|---:|---:|")
        for point in points:
            lines.append(
                f"| {point.system} | {point.throughput_tps:,.0f} "
                f"| {point.mean_latency_ms:.1f} |"
            )
        lines.append("")
    return "\n".join(lines)


def ratio(points: list[PointResult], system_a: str, system_b: str) -> float:
    """Throughput ratio a/b within one panel (shape checking)."""
    by_name = {p.system: p for p in points}
    return by_name[system_a].throughput_tps / by_name[system_b].throughput_tps


def ascii_curve(
    curves: dict[str, list[PointResult]],
    width: int = 64,
    height: int = 16,
) -> str:
    """Latency-vs-throughput panel in ASCII — the shape the paper's
    figures plot (x: achieved ktps, y: latency ms), one letter per
    system.  For terminals and EXPERIMENTS.md, where matplotlib isn't.
    """
    points = [(name, p) for name, ps in curves.items() for p in ps]
    if not points:
        return "(no data)"
    xs = [p.throughput_tps for _, p in points]
    ys = [p.mean_latency_ms for _, p in points]
    x_max = max(xs) or 1.0
    y_max = max(ys) or 1.0
    grid = [[" "] * width for _ in range(height)]
    letters = {name: chr(ord("a") + i) for i, name in enumerate(curves)}
    for name, point in points:
        col = min(width - 1, int(point.throughput_tps / x_max * (width - 1)))
        row = min(height - 1, int(point.mean_latency_ms / y_max * (height - 1)))
        grid[height - 1 - row][col] = letters[name]
    lines = [f"latency 0..{y_max:.0f} ms (y), throughput 0..{x_max / 1000:.1f} ktps (x)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.extend(f"  {letter} = {name}" for name, letter in letters.items())
    return "\n".join(lines)
