"""Experiment runner: drive a system at a given load, measure.

Mirrors the paper's methodology (§5): open-loop Poisson arrivals, a
warmup window, a measurement window, results from the client side.
``sweep`` raises the offered load until the end-to-end throughput
saturates and reports the point just below saturation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.baselines.caper import CaperDeployment
from repro.baselines.fabric import FabricDeployment, FabricVariant
from repro.baselines.sharded import AHLDeployment, SharPerDeployment
from repro.core.config import DeploymentConfig
from repro.core.deployment import Deployment
from repro.errors import WorkloadError
from repro.sim.costs import CalibratedCost
from repro.sim.latency import LatencyModel
from repro.workload.generator import SmallBankWorkload, WorkloadMix

#: The six Qanaat protocol configurations of §5.
QANAAT_PROTOCOLS = {
    "Crd-B": dict(failure_model="byzantine", cross_protocol="coordinator", use_firewall=False),
    "Crd-B(PF)": dict(failure_model="byzantine", cross_protocol="coordinator", use_firewall=True),
    "Flt-B": dict(failure_model="byzantine", cross_protocol="flattened", use_firewall=False),
    "Flt-B(PF)": dict(failure_model="byzantine", cross_protocol="flattened", use_firewall=True),
    "Crd-C": dict(failure_model="crash", cross_protocol="coordinator", use_firewall=False),
    "Flt-C": dict(failure_model="crash", cross_protocol="flattened", use_firewall=False),
}

FABRIC_VARIANTS = ("Fabric", "Fabric++", "FastFabric")

#: Related-work baselines (§6): Caper (no subsets, no shards) and the
#: single-enterprise sharded systems SharPer / AHL.
RELATED_SYSTEMS = ("Caper", "SharPer", "AHL")

#: The four infrastructure configurations of Figure 4 (kept out of
#: QANAAT_PROTOCOLS so the standard figures use the paper's six
#: protocol labels).  All run the flattened family for comparability.
FIG4_CONFIGS = {
    "Fig4a": dict(failure_model="crash", cross_protocol="flattened",
                  use_firewall=False),
    "Fig4b": dict(failure_model="byzantine", cross_protocol="flattened",
                  use_firewall=False, execution_model="crash"),
    "Fig4c": dict(failure_model="byzantine", cross_protocol="flattened",
                  use_firewall=True, filter_model="crash"),
    "Fig4d": dict(failure_model="byzantine", cross_protocol="flattened",
                  use_firewall=True),
}


@dataclass
class PointResult:
    """One (offered load, achieved throughput, latency) measurement."""

    system: str
    offered_tps: float
    throughput_tps: float
    mean_latency_ms: float
    completed: int

    @property
    def saturated(self) -> bool:
        return self.throughput_tps < 0.92 * self.offered_tps

    def row(self) -> str:
        return (
            f"{self.system:<12} offered={self.offered_tps:>9.0f} tps  "
            f"achieved={self.throughput_tps:>9.0f} tps  "
            f"latency={self.mean_latency_ms:>7.2f} ms"
        )


def _drive_arrivals(sim, rate, duration, submit_next, seed):
    """Schedule Poisson arrivals calling ``submit_next`` per arrival."""
    rng = random.Random(seed + 17)
    end = sim.now + duration

    def arrival():
        if sim.now >= end:
            return
        submit_next()
        sim.schedule(rng.expovariate(rate), arrival)

    sim.schedule(rng.expovariate(rate), arrival)


def _pair_scopes(enterprises: tuple[str, ...]) -> list[frozenset]:
    """Shared collections used by the workload: the root plus every
    pair (private collaborations between two enterprises)."""
    scopes: list[frozenset] = []
    if len(enterprises) > 1:
        scopes.append(frozenset(enterprises))
    members = sorted(enterprises)
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            scopes.append(frozenset((a, b)))
    return scopes


def build_smallbank_deployment(
    config: DeploymentConfig,
    mix: WorkloadMix,
    latency: LatencyModel | None = None,
    cost: CalibratedCost | None = None,
):
    """Deployment + SmallBank workload + clients, wired the standard
    way (§5): the root workflow, every pairwise shared collection, one
    client per enterprise.  Returns ``(deployment, submit_next)`` —
    shared by the measurement runners and the recovery scenario so
    both drive identically-configured systems."""
    enterprises = config.enterprises
    shards = config.shards_per_enterprise
    deployment = Deployment(
        config,
        latency=latency,
        cost_model=cost if cost is not None else CalibratedCost(),
    )
    deployment.create_workflow("bench", enterprises, contract="smallbank")
    scopes = _pair_scopes(enterprises)
    for scope in scopes:
        if len(scope) < len(enterprises):
            deployment.collections.create(
                scope, contract="smallbank", num_shards=shards
            )
    workload = SmallBankWorkload(
        enterprises, shards, scopes, mix, seed=config.seed
    )
    clients = {e: deployment.create_client(e) for e in enterprises}

    def submit_next():
        spec = workload.next_spec()
        client = clients[spec.enterprise]
        tx = client.make_transaction(
            spec.scope, spec.operation, keys=spec.keys, confidential=False
        )
        client.submit(tx)

    return deployment, submit_next


def run_qanaat_point(
    protocol: str,
    rate: float,
    mix: WorkloadMix,
    enterprises: tuple[str, ...] = ("A", "B", "C", "D"),
    shards: int = 4,
    warmup: float = 0.4,
    measure: float = 0.8,
    drain: float = 0.3,
    latency: LatencyModel | None = None,
    cost: CalibratedCost | None = None,
    batch_size: int = 64,
    seed: int = 1,
    crash_nodes: int = 0,
    checkpoint_interval: int = 0,
) -> PointResult:
    """Measure one Qanaat configuration at one offered load."""
    options = (
        QANAAT_PROTOCOLS[protocol]
        if protocol in QANAAT_PROTOCOLS
        else FIG4_CONFIGS[protocol]
    )
    config = DeploymentConfig(
        enterprises=enterprises,
        shards_per_enterprise=shards,
        batch_size=batch_size,
        batch_wait=0.002,
        seed=seed,
        checkpoint_interval=checkpoint_interval,
        **options,
    )
    deployment, submit_next = build_smallbank_deployment(
        config, mix, latency=latency, cost=cost
    )
    if crash_nodes:
        # Table 3: fail one non-primary ordering node (plus one exec
        # node and one filter under the privacy firewall) per a chosen
        # cluster.
        info = deployment.directory.at(enterprises[0], 0)
        primary = deployment.primary_of(info.name)
        backups = [m for m in info.members if m != primary]
        for member in backups[:crash_nodes]:
            deployment.crash_node(member)
        if config.use_firewall:
            firewall = deployment.firewalls[info.name]
            firewall.execution_nodes[-1].crash()
            firewall.rows[0][-1].crash()

    total = warmup + measure
    _drive_arrivals(deployment.sim, rate, total, submit_next, seed)
    deployment.run(total + drain)
    throughput = deployment.metrics.throughput(warmup, warmup + measure)
    latency_ms = deployment.metrics.mean_latency(warmup, warmup + measure) * 1000
    completed = len(deployment.metrics.completed_between(warmup, warmup + measure))
    return PointResult(protocol, rate, throughput, latency_ms, completed)


def run_fabric_point(
    variant: str,
    rate: float,
    mix: WorkloadMix,
    enterprises: tuple[str, ...] = ("A", "B", "C", "D"),
    shards: int = 4,
    warmup: float = 0.4,
    measure: float = 0.8,
    drain: float = 0.3,
    latency: LatencyModel | None = None,
    batch_size: int = 64,
    seed: int = 1,
    crash_nodes: int = 0,
) -> PointResult:
    """Measure one Fabric-family variant at one offered load.

    ``shards`` only shapes the workload keys — a single-channel Fabric
    deployment cannot shard (§5), which is exactly the comparison.
    """
    variant_map = {
        "Fabric": FabricVariant.FABRIC,
        "Fabric++": FabricVariant.FABRIC_PP,
        "FastFabric": FabricVariant.FAST_FABRIC,
    }
    deployment = FabricDeployment(
        enterprises=enterprises,
        variant=variant_map[variant],
        latency=latency,
        batch_size=batch_size,
        seed=seed,
    )
    if crash_nodes:
        deployment.followers[0].crash()
    scopes = _pair_scopes(enterprises)
    workload = SmallBankWorkload(enterprises, shards, scopes, mix, seed=seed)
    clients = {e: deployment.create_client(e) for e in enterprises}

    def submit_next():
        spec = workload.next_spec()
        client = clients[spec.enterprise]
        from repro.datamodel.transaction import Transaction

        tx = Transaction(
            client=client.node_id,
            timestamp=0,
            operation=spec.operation,
            scope=spec.scope,
            keys=spec.keys,
        )
        client.submit(tx)

    total = warmup + measure
    _drive_arrivals(deployment.sim, rate, total, submit_next, seed)
    deployment.run(total + drain)
    throughput = deployment.metrics.throughput(warmup, warmup + measure)
    latency_ms = deployment.metrics.mean_latency(warmup, warmup + measure) * 1000
    completed = len(deployment.metrics.completed_between(warmup, warmup + measure))
    return PointResult(variant, rate, throughput, latency_ms, completed)


def run_caper_point(
    rate: float,
    mix: WorkloadMix,
    enterprises: tuple[str, ...] = ("A", "B", "C", "D"),
    shards: int = 4,  # accepted for interface parity; Caper cannot shard
    warmup: float = 0.4,
    measure: float = 0.8,
    drain: float = 0.3,
    latency: LatencyModel | None = None,
    cost: CalibratedCost | None = None,
    batch_size: int = 64,
    seed: int = 1,
    crash_nodes: int = 0,
) -> PointResult:
    """Measure Caper at one offered load.

    Caper has single-shard enterprises, so only internal and
    cross-enterprise (isce-shaped) workloads apply; subset scopes are
    promoted to the global chain by the deployment itself.
    """
    if mix.cross > 0 and mix.cross_type != "isce":
        raise WorkloadError("Caper cannot run cross-shard workloads")
    deployment = CaperDeployment(
        enterprises=enterprises,
        failure_model="byzantine",
        cross_protocol="flattened",
        contract="smallbank",
        latency=latency,
        cost_model=cost if cost is not None else CalibratedCost(),
        batch_size=batch_size,
        seed=seed,
    )
    if crash_nodes:
        info = deployment.deployment.directory.at(enterprises[0], 0)
        primary = deployment.deployment.primary_of(info.name)
        backups = [m for m in info.members if m != primary]
        for member in backups[:crash_nodes]:
            deployment.deployment.crash_node(member)
    scopes = _pair_scopes(enterprises)
    workload = SmallBankWorkload(enterprises, 1, scopes, mix, seed=seed)
    clients = {e: deployment.create_client(e) for e in enterprises}

    def submit_next():
        spec = workload.next_spec()
        clients[spec.enterprise].submit(
            spec.scope, spec.operation, keys=spec.keys
        )

    total = warmup + measure
    _drive_arrivals(deployment.sim, rate, total, submit_next, seed)
    deployment.run(total + drain)
    throughput = deployment.metrics.throughput(warmup, warmup + measure)
    latency_ms = deployment.metrics.mean_latency(warmup, warmup + measure) * 1000
    completed = len(deployment.metrics.completed_between(warmup, warmup + measure))
    return PointResult("Caper", rate, throughput, latency_ms, completed)


def run_sharded_point(
    variant: str,
    rate: float,
    mix: WorkloadMix,
    enterprises: tuple[str, ...] = ("E",),  # interface parity; one is used
    shards: int = 4,
    warmup: float = 0.4,
    measure: float = 0.8,
    drain: float = 0.3,
    latency: LatencyModel | None = None,
    cost: CalibratedCost | None = None,
    batch_size: int = 64,
    seed: int = 1,
    crash_nodes: int = 0,
) -> PointResult:
    """Measure SharPer or AHL at one offered load.

    Both are single-enterprise systems (§5): internal and cross-shard
    (csie-shaped) workloads only.
    """
    if mix.cross > 0 and mix.cross_type != "csie":
        raise WorkloadError(f"{variant} cannot run cross-enterprise workloads")
    cls = SharPerDeployment if variant == "SharPer" else AHLDeployment
    system = cls(
        num_shards=shards,
        failure_model="byzantine",
        contract="smallbank",
        latency=latency,
        cost_model=cost if cost is not None else CalibratedCost(),
        batch_size=batch_size,
        seed=seed,
    )
    if crash_nodes:
        info = system.deployment.directory.at(system.enterprise, 0)
        primary = system.deployment.primary_of(info.name)
        backups = [m for m in info.members if m != primary]
        for member in backups[:crash_nodes]:
            system.deployment.crash_node(member)
    workload = SmallBankWorkload(
        (system.enterprise,), shards, [], mix, seed=seed
    )
    client = system.create_client()

    def submit_next():
        spec = workload.next_spec()
        system.submit(client, spec.operation, keys=spec.keys)

    total = warmup + measure
    _drive_arrivals(system.sim, rate, total, submit_next, seed)
    system.run(total + drain)
    throughput = system.metrics.throughput(warmup, warmup + measure)
    latency_ms = system.metrics.mean_latency(warmup, warmup + measure) * 1000
    completed = len(system.metrics.completed_between(warmup, warmup + measure))
    return PointResult(variant, rate, throughput, latency_ms, completed)


def run_point(system: str, rate: float, mix: WorkloadMix, **kwargs) -> PointResult:
    """Dispatch to the right runner by system name."""
    if system in QANAAT_PROTOCOLS or system in FIG4_CONFIGS:
        return run_qanaat_point(system, rate, mix, **kwargs)
    kwargs.pop("checkpoint_interval", None)
    if system == "Caper":
        return run_caper_point(rate, mix, **kwargs)
    if system in ("SharPer", "AHL"):
        return run_sharded_point(system, rate, mix, **kwargs)
    kwargs.pop("cost", None)
    return run_fabric_point(system, rate, mix, **kwargs)


def sweep(
    system: str,
    rates: list[float],
    mix: WorkloadMix,
    latency_cap_ms: float = 2_000.0,
    **kwargs,
) -> tuple[list[PointResult], PointResult]:
    """Measure a load curve; return (curve, just-below-saturation point).

    Mirrors §5: "we use an increasing number of requests until the
    end-to-end throughput is saturated, and state the throughput and
    latency just below saturation."
    """
    curve: list[PointResult] = []
    best: PointResult | None = None
    for rate in rates:
        point = run_point(system, rate, mix, **kwargs)
        curve.append(point)
        if not point.saturated and point.mean_latency_ms <= latency_cap_ms:
            if best is None or point.throughput_tps > best.throughput_tps:
                best = point
        elif best is not None:
            break  # past the knee
    if best is None:
        best = max(curve, key=lambda p: p.throughput_tps)
    return curve, best
