"""Experiment runner: drive a system at a given load, measure.

Mirrors the paper's methodology (§5): open-loop Poisson arrivals, a
warmup window, a measurement window, results from the client side.
``sweep`` raises the offered load until the end-to-end throughput
saturates and reports the point just below saturation.

Every benchmarked system — the six Qanaat protocol configurations, the
Fabric family, Caper, SharPer, AHL — sits behind the
:class:`~repro.api.driver.SystemDriver` protocol (implementations in
:mod:`repro.bench.drivers`), and every measured point is described by
a declarative :class:`~repro.scenarios.spec.ScenarioSpec`.
:func:`run_point` accepts either a ready spec or the legacy loose
kwargs (which it folds into a spec via :func:`point_spec`); the old
per-family ``run_*_point`` entry points remain as thin shims.
"""

from __future__ import annotations

import inspect
import time
from dataclasses import dataclass, field

from repro.scenarios.spec import (
    MeasurementSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.workload.generator import WorkloadMix

#: The six Qanaat protocol configurations of §5.
QANAAT_PROTOCOLS = {
    "Crd-B": dict(failure_model="byzantine", cross_protocol="coordinator", use_firewall=False),
    "Crd-B(PF)": dict(failure_model="byzantine", cross_protocol="coordinator", use_firewall=True),
    "Flt-B": dict(failure_model="byzantine", cross_protocol="flattened", use_firewall=False),
    "Flt-B(PF)": dict(failure_model="byzantine", cross_protocol="flattened", use_firewall=True),
    "Crd-C": dict(failure_model="crash", cross_protocol="coordinator", use_firewall=False),
    "Flt-C": dict(failure_model="crash", cross_protocol="flattened", use_firewall=False),
}

FABRIC_VARIANTS = ("Fabric", "Fabric++", "FastFabric")

#: Related-work baselines (§6): Caper (no subsets, no shards) and the
#: single-enterprise sharded systems SharPer / AHL.
RELATED_SYSTEMS = ("Caper", "SharPer", "AHL")

#: The four infrastructure configurations of Figure 4 (kept out of
#: QANAAT_PROTOCOLS so the standard figures use the paper's six
#: protocol labels).  All run the flattened family for comparability.
FIG4_CONFIGS = {
    "Fig4a": dict(failure_model="crash", cross_protocol="flattened",
                  use_firewall=False),
    "Fig4b": dict(failure_model="byzantine", cross_protocol="flattened",
                  use_firewall=False, execution_model="crash"),
    "Fig4c": dict(failure_model="byzantine", cross_protocol="flattened",
                  use_firewall=True, filter_model="crash"),
    "Fig4d": dict(failure_model="byzantine", cross_protocol="flattened",
                  use_firewall=True),
}


@dataclass
class PointResult:
    """One (offered load, achieved throughput, latency) measurement.

    ``perf`` is measurement *metadata* — wall-clock seconds, simulated
    events/sec, and hot-path counters for the run that produced the
    point.  It is excluded from equality (timing is nondeterministic)
    and from artifact comparisons (``repro.bench.report.strip_perf``).
    """

    system: str
    offered_tps: float
    throughput_tps: float
    mean_latency_ms: float
    completed: int
    perf: dict | None = field(default=None, compare=False)

    @property
    def saturated(self) -> bool:
        return self.throughput_tps < 0.92 * self.offered_tps

    def row(self) -> str:
        return (
            f"{self.system:<12} offered={self.offered_tps:>9.0f} tps  "
            f"achieved={self.throughput_tps:>9.0f} tps  "
            f"latency={self.mean_latency_ms:>7.2f} ms"
        )


def _drive_arrivals(sim, rate, duration, submit_next, seed):
    """Schedule Poisson arrivals calling ``submit_next`` per arrival.

    Kept as a thin alias for the constant-rate path of
    :func:`repro.workload.population.launch_arrivals` (the open-loop
    engine behind rate profiles and populations) — same rng stream,
    same event shape, bit-identical to the historical loop."""
    from repro.workload.population import launch_arrivals

    launch_arrivals(sim, rate, duration, submit_next, seed)


def point_spec(
    system: str,
    rate: float,
    mix: WorkloadMix,
    warmup: float = 0.4,
    measure: float = 0.8,
    drain: float = 0.3,
    enterprises: tuple[str, ...] = ("A", "B", "C", "D"),
    shards: int = 4,
    latency=None,
    cost=None,
    batch_size: int = 64,
    batch_adaptive: bool = False,
    max_inflight: int | None = None,
    seed: int = 1,
    crash_nodes: int = 0,
    checkpoint_interval: int = 0,
    name: str | None = None,
) -> ScenarioSpec:
    """Fold the classic loose-kwargs measurement surface into a spec.

    Defaults mirror the pre-scenario ``DriverConfig``/``run_point``
    defaults exactly, so legacy call sites keep producing bit-identical
    numbers through the spec path.
    """
    return ScenarioSpec(
        name=name if name is not None else system,
        system=system,
        topology=TopologySpec(
            enterprises=enterprises,
            shards=shards,
            batch_size=batch_size,
            batch_adaptive=batch_adaptive,
            max_inflight=max_inflight,
            crash_nodes=crash_nodes,
            checkpoint_interval=checkpoint_interval,
        ),
        workload=WorkloadSpec(rate=rate, mix=mix),
        measurement=MeasurementSpec(warmup=warmup, measure=measure, drain=drain),
        seed=seed,
        latency=latency,
        cost=cost,
    )


#: Loose kwargs :func:`run_point` folds into a spec — derived from
#: :func:`point_spec` so the two cannot drift apart.
_CONFIG_FIELDS = set(inspect.signature(point_spec).parameters) - {
    "system", "rate", "mix", "warmup", "measure", "drain", "name",
}


def run_point(
    system: str | ScenarioSpec,
    rate: float | None = None,
    mix: WorkloadMix | None = None,
    warmup: float | None = None,
    measure: float | None = None,
    drain: float | None = None,
    **kwargs,
) -> PointResult:
    """Measure any benchmarked system at one offered load.

    Preferred form: ``run_point(spec)`` with a ready
    :class:`~repro.scenarios.spec.ScenarioSpec`.  The legacy form
    ``run_point(system, rate, mix, **kwargs)`` folds its arguments
    into a spec via :func:`point_spec` first.

    Builds the scenario's :class:`~repro.api.driver.SystemDriver`,
    drives open-loop Poisson arrivals through ``driver.submit_next``
    for ``warmup + measure`` seconds, lets the tail ``drain``, and
    reports the measurement window from ``driver.metrics()``.  Knobs a
    family does not support (cost model for Fabric, checkpointing
    outside Qanaat) are ignored by its driver, as the per-family
    runners did.
    """
    from repro.bench.drivers import build_driver

    if isinstance(system, ScenarioSpec):
        if (
            rate is not None or mix is not None or kwargs
            or warmup is not None or measure is not None or drain is not None
        ):
            raise TypeError(
                "run_point(spec) takes no extra arguments; put the rate "
                "in spec.workload and windows in spec.measurement"
            )
        spec = system
    else:
        if rate is None or mix is None:
            raise TypeError(
                "run_point(system, ...) needs both a rate and a mix "
                "(or pass a ready ScenarioSpec)"
            )
        unknown = set(kwargs) - _CONFIG_FIELDS
        if unknown:
            raise TypeError(f"run_point got unexpected options {sorted(unknown)}")
        # Windows default in point_spec's signature (the single source);
        # only explicitly-passed values are forwarded.
        windows = {
            name: value
            for name, value in (
                ("warmup", warmup), ("measure", measure), ("drain", drain)
            )
            if value is not None
        }
        spec = point_spec(system, rate, mix, **windows, **kwargs)
    from repro.crypto import hashing
    from repro.scenarios.runner import launch_workload, paused_gc, perf_block

    window = spec.measurement
    counters_before = hashing.counters()
    wall_start = time.perf_counter()
    with paused_gc():
        driver = build_driver(spec)
    try:
        total = window.warmup + window.measure
        submit = getattr(driver, "_submit", None) or driver.submit_next
        with paused_gc():
            launch_workload(driver.sim, spec, submit, total)
            driver.run(total + window.drain)
        perf = perf_block(
            wall_start, counters_before, driver.sim.events_processed
        )
        metrics = driver.metrics()
        throughput = metrics.throughput(window.warmup, total)
        latency_ms = metrics.mean_latency(window.warmup, total) * 1000
        completed = metrics.completed_count(window.warmup, total)
    finally:
        driver.close()
    return PointResult(
        driver.name, spec.workload.rate, throughput, latency_ms, completed,
        perf=perf,
    )


# ----------------------------------------------------------------------
# legacy per-family entry points (thin shims over the generic runner)
# ----------------------------------------------------------------------
def run_qanaat_point(protocol: str, rate: float, mix: WorkloadMix, **kwargs) -> PointResult:
    """Deprecated: use :func:`run_point` — kept for callers of the
    pre-driver harness."""
    return run_point(protocol, rate, mix, **kwargs)


def run_fabric_point(variant: str, rate: float, mix: WorkloadMix, **kwargs) -> PointResult:
    """Deprecated: use :func:`run_point`."""
    kwargs.pop("cost", None)
    kwargs.pop("checkpoint_interval", None)
    return run_point(variant, rate, mix, **kwargs)


def run_caper_point(rate: float, mix: WorkloadMix, **kwargs) -> PointResult:
    """Deprecated: use :func:`run_point`."""
    kwargs.pop("checkpoint_interval", None)
    return run_point("Caper", rate, mix, **kwargs)


def run_sharded_point(variant: str, rate: float, mix: WorkloadMix, **kwargs) -> PointResult:
    """Deprecated: use :func:`run_point`."""
    kwargs.pop("checkpoint_interval", None)
    return run_point(variant, rate, mix, **kwargs)


def point_from_payload(payload: dict) -> PointResult:
    """Rebuild a :class:`PointResult` from a worker's plain-dict result
    (the :mod:`repro.bench.parallel` wire format)."""
    return PointResult(**payload)


def _acceptable(point: PointResult, latency_cap_ms: float) -> bool:
    return not point.saturated and point.mean_latency_ms <= latency_cap_ms


def sweep_merge(
    points: list[PointResult], latency_cap_ms: float = 2_000.0
) -> tuple[list[PointResult], PointResult]:
    """The pure half of :func:`sweep`: ladder-ordered points in,
    (curve, just-below-saturation point) out.

    Walks the ladder exactly like the classic sequential sweep —
    including stopping one rung past the knee — so feeding it a *full*
    ladder (as the parallel executor produces) or the truncated prefix
    (as sequential early-stop produces) yields identical output.
    """
    curve: list[PointResult] = []
    best: PointResult | None = None
    for point in points:
        curve.append(point)
        if _acceptable(point, latency_cap_ms):
            if best is None or point.throughput_tps > best.throughput_tps:
                best = point
        elif best is not None:
            break  # past the knee
    if best is None:
        best = max(curve, key=lambda p: p.throughput_tps)
    return curve, best


def sweep_stopped(
    points: list[PointResult], latency_cap_ms: float = 2_000.0
) -> bool:
    """Would the classic sweep stop climbing after these points?  The
    sequential executor's chain-stop predicate; by construction it
    agrees with where :func:`sweep_merge` truncates."""
    seen_acceptable = False
    for point in points:
        if _acceptable(point, latency_cap_ms):
            seen_acceptable = True
        elif seen_acceptable:
            return True
    return False


def sweep_specs(
    system: str, rates: list[float], mix: WorkloadMix, **kwargs
) -> list[ScenarioSpec]:
    """One spec per rung of a rate ladder (the plan half of a sweep)."""
    return [point_spec(system, rate, mix, **kwargs) for rate in rates]


def sweep(
    system: str,
    rates: list[float],
    mix: WorkloadMix,
    latency_cap_ms: float = 2_000.0,
    **kwargs,
) -> tuple[list[PointResult], PointResult]:
    """Measure a load curve; return (curve, just-below-saturation point).

    Mirrors §5: "we use an increasing number of requests until the
    end-to-end throughput is saturated, and state the throughput and
    latency just below saturation."  Implemented as run-until-stopped
    plus the pure :func:`sweep_merge`, the same pieces the parallel
    experiment planner uses.
    """
    curve: list[PointResult] = []
    for spec in sweep_specs(system, rates, mix, **kwargs):
        curve.append(run_point(spec))
        if sweep_stopped(curve, latency_cap_ms):
            break
    return sweep_merge(curve, latency_cap_ms)


def build_smallbank_deployment(config, mix, latency=None, cost=None):
    """Re-exported from :mod:`repro.bench.drivers` (the recovery
    scenario drives the same wiring as the Qanaat driver)."""
    from repro.bench.drivers import build_smallbank_deployment as _build

    return _build(config, mix, latency=latency, cost=cost)
