"""Consensus protocols (§4).

Intra-cluster ("internal") consensus is pluggable (§4.1): Multi-Paxos
for crash-only clusters, PBFT for Byzantine ones.  Cross-cluster
transactions use one of two protocol families, each with three shapes
matching Table 1:

- coordinator-based (§4.3, Figure 5): prepare / prepared / commit
  driven by a coordinator cluster;
- flattened (§4.4, Figure 6): propose / accept / commit with all-to-all
  communication and no coordinator.
"""

from repro.consensus.base import (
    ConsensusHost,
    InternalConsensus,
    crash_quorum,
    local_majority,
)
from repro.consensus.paxos import MultiPaxos
from repro.consensus.pbft import PBFT

__all__ = [
    "ConsensusHost",
    "InternalConsensus",
    "MultiPaxos",
    "PBFT",
    "local_majority",
    "crash_quorum",
]


def make_internal_consensus(protocol: str, host: "ConsensusHost", **kwargs):
    """Factory for the pluggable internal protocol (§4.1)."""
    if protocol == "paxos":
        return MultiPaxos(host, **kwargs)
    if protocol == "pbft":
        return PBFT(host, **kwargs)
    raise ValueError(f"unknown internal consensus protocol {protocol!r}")
