"""Shared machinery for consensus protocols.

A consensus instance talks to the world through a
:class:`ConsensusHost`: sending messages, setting timers, signing, and
receiving decide/view-change callbacks.  This keeps the protocol
implementations transport-agnostic — unit tests drive them over tiny
harness clusters, and the full system runs them inside cluster nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.crypto.signatures import KeyRegistry, SignedMessage
from repro.ledger.certificate import CommitCertificate


def local_majority(failure_model: str, f: int) -> int:
    """Matching votes required from one cluster (§4).

    crash: f+1 of 2f+1 nodes; byzantine: 2f+1 of 3f+1 ordering nodes.
    """
    if failure_model == "crash":
        return f + 1
    if failure_model == "byzantine":
        return 2 * f + 1
    raise ValueError(f"unknown failure model {failure_model!r}")


def cluster_size(failure_model: str, f: int) -> int:
    """Ordering nodes per cluster: 2f+1 crash, 3f+1 Byzantine."""
    if failure_model == "crash":
        return 2 * f + 1
    if failure_model == "byzantine":
        return 3 * f + 1
    raise ValueError(f"unknown failure model {failure_model!r}")


def crash_quorum(f: int) -> int:
    return f + 1


def _block_span(tracer: Any, value: Any, node: str, t: float) -> int | None:
    """Begin-once the trace span for the batch being ordered.

    Local :class:`~repro.consensus.messages.Block` batches key on their
    first request id, cross batches on their block id — both parent on
    the first transaction's root span.  Values that are not transaction
    batches (checkpoints, election payloads) get no block span.
    """
    from repro.consensus.messages import Block, CrossOrderValue

    if isinstance(value, Block):
        otxs = value.otxs
        if not otxs:
            return None
        rid = otxs[0].tx.request_id
        return tracer.block_begin(
            ("L", rid), "block.local", rid, node, t, txs=len(otxs)
        )
    if isinstance(value, CrossOrderValue):
        block = value.block
        return tracer.block_begin(
            ("X", block.block_id),
            f"block.{block.protocol}",
            block.block_id,
            node,
            t,
            txs=len(block.txs),
            label=block.label,
        )
    return None


class ConsensusHost(Protocol):  # pragma: no cover - structural type
    """What a consensus instance needs from its surroundings."""

    node_id: str
    cluster_name: str
    members: list[str]
    key_registry: KeyRegistry

    def send(self, dst: str, msg: Any) -> bool: ...

    def multicast(self, dsts: Any, msg: Any) -> int: ...

    def set_timer(self, delay: float, fn: Callable, *args: Any) -> Any: ...

    def sign(self, payload: Any) -> SignedMessage: ...

    def verify(self, signed: SignedMessage, payload: Any = None) -> bool: ...

    def on_decide(
        self, slot: Any, value: Any, certificate: CommitCertificate
    ) -> None: ...

    def on_view_change(self, new_primary: str) -> None: ...


@dataclass
class SlotState:
    """Per-slot bookkeeping shared by both protocols."""

    value: Any = None
    value_digest: str | None = None
    votes_phase1: dict[str, SignedMessage] = field(default_factory=dict)
    votes_phase2: dict[str, SignedMessage] = field(default_factory=dict)
    decided: bool = False
    view: int = 0
    timer: Any = None

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class InternalConsensus:
    """Base class: primary tracking, slot table, decide plumbing."""

    #: Protocol label used in trace span names and metric labels.
    PROTO = "consensus"

    def __init__(self, host: ConsensusHost, timeout: float = 0.5):
        self.host = host
        self.timeout = timeout
        self.view = 0
        self.slots: dict[Any, SlotState] = {}
        self.decided_values: dict[Any, Any] = {}
        # Observability capture (all None when off): protocol subclasses
        # and _decide guard on these, never on module globals.
        from repro import obs

        self._obs_tracer = obs.TRACER
        self._obs_probes = obs.PROBES
        self._obs_registry = obs.REGISTRY

    # ------------------------------------------------------------------
    # primary / view management
    # ------------------------------------------------------------------
    @property
    def primary_id(self) -> str:
        return self.host.members[self.view % len(self.host.members)]

    def is_primary(self) -> bool:
        return self.host.node_id == self.primary_id

    def _slot(self, slot: Any) -> SlotState:
        state = self.slots.get(slot)
        if state is None:
            state = SlotState()
            self.slots[slot] = state
        return state

    def _decide(self, slot: Any, state: SlotState) -> None:
        if state.decided:
            return
        state.decided = True
        state.cancel_timer()
        self.decided_values[slot] = state.value
        certificate = CommitCertificate(
            cluster=self.host.cluster_name,
            payload_digest=state.value_digest or "",
            signatures=tuple(state.votes_phase2.values()),
        )
        if self._obs_tracer is not None:
            self._obs_decided(slot, state)
        self.host.on_decide(slot, state.value, certificate)

    # ------------------------------------------------------------------
    # observability (no-ops compiled away by the guards above when off)
    # ------------------------------------------------------------------
    def _obs_now(self) -> float | None:
        """Virtual time for trace spans, or None outside a simulation
        (unit-test harness hosts have no ``sim``)."""
        sim = getattr(self.host, "sim", None)
        return sim.now if sim is not None else None

    def _obs_instance(self, slot: Any, value: Any, t: float | None) -> int | None:
        """Ensure the block + instance spans for ``slot`` exist; the
        instance span parents every per-phase span below it."""
        if t is None:
            return None
        tracer = self._obs_tracer
        host = self.host
        block_sid = _block_span(tracer, value, host.node_id, t)
        return tracer.instance_begin(
            self.PROTO, host.cluster_name, slot, host.node_id, t, block_sid
        )

    def _obs_phase_begin(
        self, slot: Any, name: str, t: float | None, parent: int | None
    ) -> None:
        """Open this node's ``name`` phase for ``slot`` (closed by
        :meth:`_obs_phase_end` or, at decide time, by owner)."""
        if t is None:
            return
        host = self.host
        self._obs_tracer.phase_begin(
            (name, host.cluster_name, slot, host.node_id),
            name,
            host.node_id,
            t,
            parent,
            owner=(host.cluster_name, slot, host.node_id),
        )

    def _obs_phase_end(self, slot: Any, name: str, t: float | None) -> None:
        if t is None:
            return
        host = self.host
        self._obs_tracer.phase_end(
            (name, host.cluster_name, slot, host.node_id), t
        )

    def _obs_view_change(self) -> None:
        if self._obs_registry is not None:
            self._obs_registry.counter(
                "view_changes",
                cluster=self.host.cluster_name,
                protocol=self.PROTO,
            ).inc()

    def _obs_decided(self, slot: Any, state: SlotState) -> None:
        host = self.host
        t = self._obs_now()
        if t is not None:
            self._obs_tracer.decided(host.cluster_name, slot, host.node_id, t)
        if self._obs_probes is not None:
            self._obs_probes.decision(
                host.cluster_name, slot, state.value_digest or "", host.node_id
            )

    def is_decided(self, slot: Any) -> bool:
        state = self.slots.get(slot)
        return bool(state and state.decided)

    def garbage_collect(self, keep: Callable[[Any, Any], bool]) -> int:
        """Drop decided slots rejected by ``keep(slot, value)``.

        Checkpointing calls this to truncate the log below a stable
        checkpoint (undecided slots are never collected).  Returns the
        number of slots released.
        """
        removed = 0
        for slot, state in list(self.slots.items()):
            if state.decided and not keep(slot, state.value):
                del self.slots[slot]
                self.decided_values.pop(slot, None)
                removed += 1
        return removed

    def undecided_slots(self) -> list[Any]:
        return [s for s, st in self.slots.items() if not st.decided]

    # ------------------------------------------------------------------
    # interface expected by the engine
    # ------------------------------------------------------------------
    def propose(self, slot: Any, value: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def handle(self, msg: Any, src: str) -> bool:  # pragma: no cover
        raise NotImplementedError
