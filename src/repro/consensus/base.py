"""Shared machinery for consensus protocols.

A consensus instance talks to the world through a
:class:`ConsensusHost`: sending messages, setting timers, signing, and
receiving decide/view-change callbacks.  This keeps the protocol
implementations transport-agnostic — unit tests drive them over tiny
harness clusters, and the full system runs them inside cluster nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.crypto.signatures import KeyRegistry, SignedMessage
from repro.ledger.certificate import CommitCertificate


def local_majority(failure_model: str, f: int) -> int:
    """Matching votes required from one cluster (§4).

    crash: f+1 of 2f+1 nodes; byzantine: 2f+1 of 3f+1 ordering nodes.
    """
    if failure_model == "crash":
        return f + 1
    if failure_model == "byzantine":
        return 2 * f + 1
    raise ValueError(f"unknown failure model {failure_model!r}")


def cluster_size(failure_model: str, f: int) -> int:
    """Ordering nodes per cluster: 2f+1 crash, 3f+1 Byzantine."""
    if failure_model == "crash":
        return 2 * f + 1
    if failure_model == "byzantine":
        return 3 * f + 1
    raise ValueError(f"unknown failure model {failure_model!r}")


def crash_quorum(f: int) -> int:
    return f + 1


class ConsensusHost(Protocol):  # pragma: no cover - structural type
    """What a consensus instance needs from its surroundings."""

    node_id: str
    cluster_name: str
    members: list[str]
    key_registry: KeyRegistry

    def send(self, dst: str, msg: Any) -> bool: ...

    def multicast(self, dsts: Any, msg: Any) -> int: ...

    def set_timer(self, delay: float, fn: Callable, *args: Any) -> Any: ...

    def sign(self, payload: Any) -> SignedMessage: ...

    def verify(self, signed: SignedMessage, payload: Any = None) -> bool: ...

    def on_decide(
        self, slot: Any, value: Any, certificate: CommitCertificate
    ) -> None: ...

    def on_view_change(self, new_primary: str) -> None: ...


@dataclass
class SlotState:
    """Per-slot bookkeeping shared by both protocols."""

    value: Any = None
    value_digest: str | None = None
    votes_phase1: dict[str, SignedMessage] = field(default_factory=dict)
    votes_phase2: dict[str, SignedMessage] = field(default_factory=dict)
    decided: bool = False
    view: int = 0
    timer: Any = None

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class InternalConsensus:
    """Base class: primary tracking, slot table, decide plumbing."""

    def __init__(self, host: ConsensusHost, timeout: float = 0.5):
        self.host = host
        self.timeout = timeout
        self.view = 0
        self.slots: dict[Any, SlotState] = {}
        self.decided_values: dict[Any, Any] = {}

    # ------------------------------------------------------------------
    # primary / view management
    # ------------------------------------------------------------------
    @property
    def primary_id(self) -> str:
        return self.host.members[self.view % len(self.host.members)]

    def is_primary(self) -> bool:
        return self.host.node_id == self.primary_id

    def _slot(self, slot: Any) -> SlotState:
        state = self.slots.get(slot)
        if state is None:
            state = SlotState()
            self.slots[slot] = state
        return state

    def _decide(self, slot: Any, state: SlotState) -> None:
        if state.decided:
            return
        state.decided = True
        state.cancel_timer()
        self.decided_values[slot] = state.value
        certificate = CommitCertificate(
            cluster=self.host.cluster_name,
            payload_digest=state.value_digest or "",
            signatures=tuple(state.votes_phase2.values()),
        )
        self.host.on_decide(slot, state.value, certificate)

    def is_decided(self, slot: Any) -> bool:
        state = self.slots.get(slot)
        return bool(state and state.decided)

    def garbage_collect(self, keep: Callable[[Any, Any], bool]) -> int:
        """Drop decided slots rejected by ``keep(slot, value)``.

        Checkpointing calls this to truncate the log below a stable
        checkpoint (undecided slots are never collected).  Returns the
        number of slots released.
        """
        removed = 0
        for slot, state in list(self.slots.items()):
            if state.decided and not keep(slot, state.value):
                del self.slots[slot]
                self.decided_values.pop(slot, None)
                removed += 1
        return removed

    def undecided_slots(self) -> list[Any]:
        return [s for s, st in self.slots.items() if not st.decided]

    # ------------------------------------------------------------------
    # interface expected by the engine
    # ------------------------------------------------------------------
    def propose(self, slot: Any, value: Any) -> None:  # pragma: no cover
        raise NotImplementedError

    def handle(self, msg: Any, src: str) -> bool:  # pragma: no cover
        raise NotImplementedError
