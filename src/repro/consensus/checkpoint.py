"""Checkpointing, log garbage collection, and state transfer.

PBFT garbage-collects its message log at periodic *checkpoints*
(Castro & Liskov §4.3); Qanaat's DAG ledger needs the per-chain
variant: every collection-shard chain is totally ordered, so replicas
of one cluster reach identical state at identical per-chain sequence
numbers, even though the interleaving *across* chains differs between
replicas.  Checkpoints are therefore taken per collection-shard, each
time a chain's committed sequence crosses a multiple of the interval.

The flow for one chain ``(label, shard)`` at sequence ``n``:

1. every replica computes a state digest — the chain head digest plus
   the store snapshot at version ``n`` — and multicasts a signed
   :class:`CheckpointMsg`;
2. on a local-majority of matching digests the checkpoint is *stable*:
   a :class:`StableCheckpoint` certificate is assembled, consensus
   slots covered by it are garbage-collected, and older checkpoints
   for the chain are dropped;
3. a replica that discovers (through checkpoint traffic) that it is a
   full interval behind requests state transfer; the response carries
   the snapshot and the certificate, so the payload is verified
   against a quorum of signatures before being installed.

The manager is transport-agnostic (it talks through the same host
interface as the consensus protocols), so unit tests drive it over
harness clusters and :class:`~repro.core.node.ClusterNode` wires it
into the full system when ``DeploymentConfig.checkpoint_interval > 0``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.crypto.hashing import digest
from repro.crypto.signatures import KeyRegistry, SignedMessage, verify_many


ChainKey = tuple[str, int]


@dataclass(frozen=True)
class StableCheckpoint:
    """Proof that a local-majority of one cluster reached the same
    state for one collection-shard chain at sequence ``seq``."""

    cluster: str
    label: str
    shard: int
    seq: int
    state_digest: str

    signatures: tuple[SignedMessage, ...] = ()

    def payload(self) -> str:
        return digest(
            ["checkpoint", self.cluster, self.label, self.shard, self.seq,
             self.state_digest]
        )

    def verify(self, registry: KeyRegistry, quorum: int) -> bool:
        """Quorum of distinct valid signatures over the payload."""
        valid = verify_many(
            registry, self.signatures, payload=self.payload(), quorum=quorum
        )
        return len(valid) >= quorum


@dataclass
class CheckpointMsg:
    """One replica's vote that a chain reached ``seq`` with this state."""

    CPU_WEIGHT = 0.5

    cluster: str
    label: str
    shard: int
    seq: int
    state_digest: str
    signed: SignedMessage

    def tx_count(self) -> int:
        return 1


@dataclass
class StateRequest:
    """A lagging replica asks a peer for a chain's checkpointed state."""

    CPU_WEIGHT = 0.5

    label: str
    shard: int
    have_seq: int

    def tx_count(self) -> int:
        return 1


@dataclass
class StateResponse:
    """Snapshot + certificate; the receiver verifies before installing."""

    CPU_WEIGHT = 1.0

    checkpoint: StableCheckpoint
    snapshot: Any  # canonicalizable payload; digest must match

    def tx_count(self) -> int:
        return 1


@dataclass
class _ChainBook:
    """Per-chain checkpoint bookkeeping on one replica."""

    votes: dict[int, dict[str, CheckpointMsg]] = field(default_factory=dict)
    stable: StableCheckpoint | None = None
    transfer_pending: bool = False


class CheckpointManager:
    """Per-replica checkpoint/GC/state-transfer driver.

    Parameters
    ----------
    host:
        The surrounding node — same structural interface as
        :class:`~repro.consensus.base.ConsensusHost` (``node_id``,
        ``members``, ``key_registry``, ``sign``/``verify``,
        ``send``/``multicast``).
    quorum:
        Matching votes needed for stability (the cluster's
        local-majority).
    interval:
        Checkpoint every ``interval`` commits per chain.
    snapshot_fn:
        ``(label, shard, seq) -> payload`` — the replica's state for
        the chain at exactly that version (digested for the vote and
        shipped on state transfer).  ``None`` disables snapshots (pure
        ordering nodes vote on the commit vector only).
    install_fn:
        ``(checkpoint, snapshot) -> None`` — adopt a verified remote
        checkpoint (fast-forward sequence books, store, ledger anchor).
    gc_fn:
        ``(label, shard, seq) -> None`` — release log entries covered
        by a stable checkpoint.
    on_stable_fn:
        ``(label, shard, seq) -> None`` — called after a checkpoint
        becomes stable and the log is collected.  Stable checkpoints
        are the *durability frontier*: the storage layer hooks in here
        to snapshot and compact its journal (:mod:`repro.storage`).
    """

    def __init__(
        self,
        host: Any,
        quorum: int,
        interval: int = 64,
        snapshot_fn: Callable[[str, int, int], Any] | None = None,
        install_fn: Callable[[StableCheckpoint, Any], None] | None = None,
        gc_fn: Callable[[str, int, int], None] | None = None,
        on_stable_fn: Callable[[str, int, int], None] | None = None,
    ):
        if interval < 1:
            raise ValueError("checkpoint interval must be >= 1")
        self.host = host
        self.quorum = quorum
        self.interval = interval
        self.snapshot_fn = snapshot_fn
        self.install_fn = install_fn
        self.gc_fn = gc_fn
        self.on_stable_fn = on_stable_fn
        self._chains: dict[ChainKey, _ChainBook] = {}
        self._committed: dict[ChainKey, int] = {}
        self.stable_count = 0
        self.transfers_completed = 0

    # ------------------------------------------------------------------
    # local progress
    # ------------------------------------------------------------------
    def _book(self, key: ChainKey) -> _ChainBook:
        book = self._chains.get(key)
        if book is None:
            book = _ChainBook()
            self._chains[key] = book
        return book

    def stable_seq(self, label: str, shard: int = 0) -> int:
        book = self._chains.get((label, shard))
        return book.stable.seq if book and book.stable else 0

    def on_commit(self, label: str, shard: int, seq: int) -> None:
        """A transaction committed at ``seq`` on a chain this replica
        maintains; emit a checkpoint vote at interval boundaries."""
        key = (label, shard)
        self._committed[key] = max(self._committed.get(key, 0), seq)
        if seq % self.interval != 0:
            return
        self._vote(label, shard, seq)

    def _vote(self, label: str, shard: int, seq: int) -> None:
        state_digest = self._state_digest(label, shard, seq)
        draft = StableCheckpoint(
            self.host.cluster_name, label, shard, seq, state_digest
        )
        msg = CheckpointMsg(
            cluster=self.host.cluster_name,
            label=label,
            shard=shard,
            seq=seq,
            state_digest=state_digest,
            signed=self.host.sign(draft.payload()),
        )
        book = self._book((label, shard))
        book.votes.setdefault(seq, {})[self.host.node_id] = msg
        others = [m for m in self.host.members if m != self.host.node_id]
        self.host.multicast(others, msg)
        self._maybe_stable(label, shard, seq)

    def _state_digest(self, label: str, shard: int, seq: int) -> str:
        if self.snapshot_fn is None:
            return digest(["commit-vector", label, shard, seq])
        return digest(
            ["state", label, shard, seq, self.snapshot_fn(label, shard, seq)]
        )

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def handle(self, msg: Any, src: str) -> bool:
        if isinstance(msg, CheckpointMsg):
            self._on_checkpoint(msg, src)
        elif isinstance(msg, StateRequest):
            self._on_state_request(msg, src)
        elif isinstance(msg, StateResponse):
            self._on_state_response(msg, src)
        else:
            return False
        return True

    def _on_checkpoint(self, msg: CheckpointMsg, src: str) -> None:
        if src not in self.host.members or msg.signed.signer != src:
            return
        draft = StableCheckpoint(
            msg.cluster, msg.label, msg.shard, msg.seq, msg.state_digest
        )
        if not self.host.verify(msg.signed, draft.payload()):
            return
        key = (msg.label, msg.shard)
        book = self._book(key)
        if book.stable is not None and msg.seq <= book.stable.seq:
            return
        book.votes.setdefault(msg.seq, {})[src] = msg
        self._maybe_stable(msg.label, msg.shard, msg.seq)
        self._maybe_request_transfer(msg.label, msg.shard, msg.seq, src)

    def _maybe_stable(self, label: str, shard: int, seq: int) -> None:
        key = (label, shard)
        book = self._book(key)
        votes = book.votes.get(seq, {})
        by_digest: dict[str, list[CheckpointMsg]] = {}
        for vote in votes.values():
            by_digest.setdefault(vote.state_digest, []).append(vote)
        for state_digest, matching in by_digest.items():
            if len(matching) < self.quorum:
                continue
            checkpoint = StableCheckpoint(
                self.host.cluster_name,
                label,
                shard,
                seq,
                state_digest,
                signatures=tuple(v.signed for v in matching),
            )
            if book.stable is None or checkpoint.seq > book.stable.seq:
                book.stable = checkpoint
                self.stable_count += 1
                for old_seq in [s for s in book.votes if s <= seq]:
                    del book.votes[old_seq]
                if self.gc_fn is not None:
                    self.gc_fn(label, shard, seq)
                if self.on_stable_fn is not None:
                    self.on_stable_fn(label, shard, seq)
            return

    # ------------------------------------------------------------------
    # state transfer
    # ------------------------------------------------------------------
    def _maybe_request_transfer(
        self, label: str, shard: int, seq: int, src: str
    ) -> None:
        """Ask for state if checkpoint traffic shows we missed a whole
        interval (smaller gaps heal through normal retransmission)."""
        if self.install_fn is None:
            return
        key = (label, shard)
        book = self._book(key)
        behind = seq - self._committed.get(key, 0)
        if behind < self.interval or book.transfer_pending:
            return
        book.transfer_pending = True
        self.host.send(src, StateRequest(label, shard, self._committed.get(key, 0)))

    def _on_state_request(self, msg: StateRequest, src: str) -> None:
        book = self._chains.get((msg.label, msg.shard))
        if book is None or book.stable is None:
            return
        if book.stable.seq <= msg.have_seq:
            return
        snapshot = None
        if self.snapshot_fn is not None:
            snapshot = self.snapshot_fn(msg.label, msg.shard, book.stable.seq)
        self.host.send(src, StateResponse(book.stable, snapshot))

    def _on_state_response(self, msg: StateResponse, src: str) -> None:
        checkpoint = msg.checkpoint
        key = (checkpoint.label, checkpoint.shard)
        book = self._book(key)
        book.transfer_pending = False
        if checkpoint.seq <= self._committed.get(key, 0):
            return
        if not checkpoint.verify(self.host.key_registry, self.quorum):
            return
        if self.snapshot_fn is not None:
            expected = digest(
                ["state", checkpoint.label, checkpoint.shard, checkpoint.seq,
                 msg.snapshot]
            )
            if expected != checkpoint.state_digest:
                return  # snapshot does not match the certified digest
        if self.install_fn is not None:
            self.install_fn(checkpoint, msg.snapshot)
        self._committed[key] = max(self._committed.get(key, 0), checkpoint.seq)
        if book.stable is None or checkpoint.seq > book.stable.seq:
            book.stable = checkpoint
        self.transfers_completed += 1
        # The responder may have been mid-interval when it answered; if
        # a newer stable checkpoint is already known (votes that arrived
        # while this transfer was in flight), chase it immediately —
        # commits between our new position and that checkpoint may exist
        # nowhere but in snapshots.
        if book.stable.seq > checkpoint.seq:
            book.transfer_pending = True
            self.host.send(
                src,
                StateRequest(checkpoint.label, checkpoint.shard, checkpoint.seq),
            )
