"""Coordinator-based cross-cluster consensus (§4.3, Figure 5).

One engine implements the three shapes — intra-shard cross-enterprise
(isce), cross-shard intra-enterprise (csie), cross-shard
cross-enterprise (csce) — because they share the prepare / prepared /
commit skeleton and differ only in who assigns IDs and whose votes the
coordinator must collect:

- isce: the coordinator orders; every other cluster validates
  (local-majority of signed ``prepared`` messages each);
- csie: every involved cluster (same enterprise) runs internal
  consensus and sends a certificate-backed ``prepared``;
- csce: initiator-enterprise clusters run internal consensus; clusters
  of other enterprises validate the shard they replicate.

Both rounds of coordinator-cluster agreement (ordering the block, then
deciding commit) run through the pluggable internal consensus, exactly
as the paper prescribes.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.cross_base import CrossEngine, CrossState, final_otxs
from repro.consensus.messages import (
    CommitQuery,
    CrossBlock,
    CrossCommitMsg,
    CrossOrderValue,
    Prepare,
    PreparedMsg,
)
from repro.errors import ConsistencyViolation


class CoordinatorEngine(CrossEngine):
    """Per-node handler for the coordinator-based protocols."""

    MAX_RETRIES = 8

    # ------------------------------------------------------------------
    # entry point (coordinator primary)
    # ------------------------------------------------------------------
    def start(self, block: CrossBlock) -> None:
        """Order the block in the coordinator cluster (prepare phase)."""
        if not self.node.acquire_guard(block):
            return  # queued behind a conflicting cross-shard block
        if self._obs_tracer is not None:
            self._obs_block(block, self.node.sim.now)
        ids = self.node.assign_ids(block)
        block = block.with_ids(self.node.cluster_name, ids)
        self.node.internal_propose(
            ("xo", block.label, block.shards, ids[0].alpha.seq),
            CrossOrderValue(block, "order"),
        )

    # ------------------------------------------------------------------
    # internal-consensus callbacks (all coordinator-cluster nodes)
    # ------------------------------------------------------------------
    def on_cross_ordered(self, block: CrossBlock, certificate: Any) -> None:
        """The cluster agreed on the block's order for its shard."""
        state = self._state(block, coordinator=self._origin_cluster(block))
        state.block = block
        state.order_cert = certificate
        if state.committed:
            return
        if state.coordinator == self.node.cluster_name:
            state.stage = "preparing"
            if self._obs_tracer is not None:
                self._obs_phase(block, "cross.vote", self.node.sim.now)
            if self.node.is_primary():
                self._send_prepares(state, certificate)
            self._arm_coordinator_timer(state, certificate)
        else:
            # An assigning (non-coordinator) cluster finished its own
            # internal consensus: report prepared to the coordinator.
            state.stage = "prepared"
            state.prepared_sent = True
            if self._obs_tracer is not None:
                t = self.node.sim.now
                self._obs_tracer.point(
                    "cross.prepared",
                    self.node.node_id,
                    t,
                    self._obs_block(block, t),
                    cluster=self.node.cluster_name,
                )
            if self.node.is_primary():
                self._send_prepared(state, certificate)
            self._arm_involved_timer(state)
        self.drain_early(block.block_id)

    def _origin_cluster(self, block: CrossBlock) -> str:
        # The first cluster to have assigned IDs is the coordinator.
        if block.ids_by_cluster:
            return block.ids_by_cluster[0][0]
        return self.node.cluster_name

    def _send_prepares(self, state: CrossState, certificate: Any) -> None:
        targets = self._other_cluster_nodes(state.involved)
        if targets:
            self.node.multicast(
                targets,
                Prepare(state.block, self.node.cluster_name, certificate),
            )
        else:  # single involved cluster (degenerate): commit directly
            self._decide_commit(state)

    def _send_prepared(self, state: CrossState, certificate: Any) -> None:
        coord = self.node.directory.get(state.coordinator)
        ids = state.block.ids_of(self.node.cluster_name)
        msg = PreparedMsg(
            block_id=state.block.block_id,
            ids_by_cluster=((self.node.cluster_name, ids),),
            digest=state.base_digest,
            cluster=self.node.cluster_name,
            signed=self.node.sign(state.base_digest),
            certificate=certificate,
        )
        # §4.3.2: the involved primary multicasts prepared to all nodes
        # of the coordinator cluster.
        self.node.multicast(coord.members, msg)
        if state.block.protocol == "csce":
            # §4.3.3: ... and to the other clusters that maintain the
            # same data shard, so they can validate their shard's order.
            own_shard = self.node.cluster.shard
            for info in state.involved:
                if info.shard == own_shard and info.name not in (
                    self.node.cluster_name,
                    state.coordinator,
                ):
                    self.node.multicast(info.members, msg)

    # ------------------------------------------------------------------
    # prepare handling (involved clusters)
    # ------------------------------------------------------------------
    def on_prepare(self, msg: Prepare, src: str) -> None:
        block = msg.block
        coord_info = self.node.directory.get(msg.coordinator)
        if msg.certificate is None or not msg.certificate.verify(
            self.node.key_registry,
            coord_info.local_majority,
            frozenset(coord_info.members),
        ):
            return
        state = self._state(block, coordinator=msg.coordinator)
        if state.committed:
            return
        if self._obs_tracer is not None:
            t = self.node.sim.now
            parent = self._obs_block(block, t)
            start = self._obs_tracer.spans()[parent].start
            # Flight of the coordinator's prepare to this node.
            self._obs_tracer.completed(
                "cross.prepare", self.node.node_id, start, t, parent
            )
        role = self._role_on_prepare(state)
        if role == "assign":
            self._assign_and_order(state, block)
        elif role == "validate":
            self._validate_and_reply(
                state, block.ids_of(msg.coordinator), target_primary=src
            )
        self.drain_early(block.block_id)

    def _role_on_prepare(self, state: CrossState) -> str:
        assigning = {
            c.name
            for c in self._assigning(
                state.block, state.involved, state.coordinator
            )
        }
        if self.node.cluster_name in assigning:
            return "assign"
        coord_shard = self.node.directory.get(state.coordinator).shard
        if self.node.cluster.shard == coord_shard:
            return "validate"
        return "wait"  # csce, different shard: wait for assigning prepared

    def _assign_and_order(self, state: CrossState, block: CrossBlock) -> None:
        if not self.node.is_primary() or state.stage != "start":
            return
        if not self.node.acquire_guard(
            block, retry=lambda: self._assign_and_order(state, block)
        ):
            return
        state.stage = "ordering"
        ids = self.node.assign_ids(block)
        block = block.with_ids(self.node.cluster_name, ids)
        state.block = block
        self.node.internal_propose(
            ("xo", block.label, block.shards, ids[0].alpha.seq),
            CrossOrderValue(block, "order"),
        )

    def _validate_and_reply(
        self, state: CrossState, ids: tuple | None, target_primary: str
    ) -> None:
        if ids is None or state.committed:
            return
        status = self.node.validate_ids(
            ids, retry=lambda: self._validate_and_reply(state, ids, target_primary)
        )
        if status != "ok":
            return
        state.prepared_sent = True
        msg = PreparedMsg(
            block_id=state.block.block_id,
            ids_by_cluster=(),
            digest=state.base_digest,
            cluster=self.node.cluster_name,
            signed=self.node.sign(state.base_digest),
        )
        self.node.send(target_primary, msg)
        self._arm_involved_timer(state)

    # ------------------------------------------------------------------
    # prepared handling (coordinator nodes + csce same-shard validators)
    # ------------------------------------------------------------------
    def on_prepared(self, msg: PreparedMsg, src: str) -> None:
        state = self.states.get(msg.block_id)
        if state is None:
            self.buffer_early(msg.block_id, self.on_prepared, msg, src)
            return
        if state.committed:
            return
        if not self.node.verify(msg.signed, msg.digest):
            return
        if msg.digest != state.base_digest:
            return
        if self.node.cluster_name == state.coordinator:
            self._record_prepared(state, msg, src)
        else:
            # csce: a validating cluster hears the assigning cluster of
            # its shard; validate that shard's IDs and tell the
            # coordinator's primary.
            self._validate_and_reply(
                state,
                dict(msg.ids_by_cluster).get(msg.cluster),
                target_primary=self.node.believed_primary(state.coordinator),
            )

    def _record_prepared(
        self, state: CrossState, msg: PreparedMsg, src: str
    ) -> None:
        if not self._is_member(msg.cluster, src):
            return  # a vote only counts from the claimed cluster
        info = self.node.directory.get(msg.cluster)
        if msg.certificate is not None:
            if msg.certificate.verify(
                self.node.key_registry,
                info.local_majority,
                frozenset(info.members),
            ):
                state.prepared_certs[msg.cluster] = msg.certificate
                for name, ids in msg.ids_by_cluster:
                    state.prepared_ids[name] = ids
        else:
            state.prepared_votes.setdefault(msg.cluster, {})[src] = msg.signed
        if self.node.is_primary():
            self._maybe_decide_commit(state)

    def _maybe_decide_commit(self, state: CrossState) -> None:
        if state.stage != "preparing":
            return
        assigning = self._assigning(state.block, state.involved, state.coordinator)
        validating = self._validating(state.block, state.involved, state.coordinator)
        for info in assigning:
            if info.name == self.node.cluster_name:
                continue
            if info.name not in state.prepared_certs:
                return
        for info in validating:
            votes = state.prepared_votes.get(info.name, {})
            if len(votes) < info.local_majority:
                return
        state.stage = "committing"
        block = state.block
        for name, ids in state.prepared_ids.items():
            block = block.with_ids(name, ids)
        state.block = block
        if self._obs_tracer is not None:
            t = self.node.sim.now
            self._obs_phase_end(block.block_id, "cross.vote", t)
            self._obs_phase(block, "cross.decide", t)
        self._decide_commit(state)

    def _decide_commit(self, state: CrossState) -> None:
        # Second round of internal consensus in the coordinator cluster
        # (§4.3.1): agree that the block is globally prepared.
        first_seq = state.block.ids_by_cluster[0][1][0].alpha.seq
        self.node.internal_propose(
            ("xc", state.block.label, state.block.shards, first_seq),
            CrossOrderValue(state.block, "commit"),
        )

    def on_commit_decided(self, block: CrossBlock, certificate: Any) -> None:
        """Coordinator cluster agreed to commit: finalize everywhere."""
        state = self._state(block, coordinator=self._origin_cluster(block))
        state.block = block
        if state.committed:
            return
        if self.node.is_primary():
            targets = self._other_cluster_nodes(state.involved)
            if targets:
                self.node.multicast(
                    targets,
                    CrossCommitMsg(block, self.node.cluster_name, certificate),
                )
        self._commit(state, certificate)

    # ------------------------------------------------------------------
    # commit handling (involved clusters)
    # ------------------------------------------------------------------
    def on_cross_commit(self, msg: CrossCommitMsg, src: str) -> None:
        coord_info = self.node.directory.get(msg.coordinator)
        if msg.certificate is None or not msg.certificate.verify(
            self.node.key_registry,
            coord_info.local_majority,
            frozenset(coord_info.members),
        ):
            return
        state = self._state(msg.block, coordinator=msg.coordinator)
        state.block = msg.block
        self._commit(state, msg.certificate)

    # ------------------------------------------------------------------
    # failure handling (§4.3.4)
    # ------------------------------------------------------------------
    def _arm_coordinator_timer(self, state: CrossState, certificate: Any) -> None:
        state.cancel_timer()
        state.timer = self.node.set_timer(
            self.node.cross_timeout, self._coordinator_timeout, state, certificate
        )

    def _coordinator_timeout(self, state: CrossState, certificate: Any) -> None:
        if state.committed or state.retries >= self.MAX_RETRIES:
            return
        state.retries += 1
        if self.node.is_primary():
            # Deadlock/omission resolution: re-send prepare (idempotent
            # on the receivers) rather than assigning fresh IDs.
            self._send_prepares(state, certificate)
        self._arm_coordinator_timer(state, certificate)

    def _arm_involved_timer(self, state: CrossState) -> None:
        state.cancel_timer()
        state.timer = self.node.set_timer(
            self.node.cross_timeout, self._involved_timeout, state
        )

    def _involved_timeout(self, state: CrossState) -> None:
        if state.committed or state.retries >= self.MAX_RETRIES:
            return
        state.retries += 1
        coord = self.node.directory.get(state.coordinator)
        self.node.multicast(
            coord.members,
            CommitQuery(
                state.block.block_id, state.base_digest, self.node.cluster_name
            ),
        )
        self._arm_involved_timer(state)

    def on_view_change(self) -> None:
        """A new primary re-drives in-flight coordinator-side blocks."""
        if not self.node.is_primary():
            return
        for state in self.states.values():
            if state.committed or state.coordinator != self.node.cluster_name:
                continue
            if state.stage == "preparing" and state.order_cert is not None:
                self._send_prepares(state, state.order_cert)
                self._maybe_decide_commit(state)
            elif state.stage == "committing":
                self._decide_commit(state)

    def on_commit_query(self, msg: CommitQuery, src: str) -> None:
        state = self.states.get(msg.block_id)
        if state is None:
            return
        if state.committed:
            # Re-send the commit so the querying node can finish.
            certificate = self.node.commit_certificate_for(state.block)
            if certificate is not None:
                self.node.send(
                    src,
                    CrossCommitMsg(
                        state.block, self.node.cluster_name, certificate
                    ),
                )
            return
        # Not committed: count queries; a local-majority of a cluster
        # suspecting us means our primary is sitting on the block.
        if not self._is_member(msg.cluster, src):
            return
        votes = state.prepared_votes.setdefault(f"query:{msg.cluster}", {})
        votes[src] = True
        info = self.node.directory.get(msg.cluster)
        if len(votes) >= info.local_majority and not self.node.is_primary():
            self.node.suspect_primary()
