"""Shared machinery for the cross-cluster protocol engines.

Role terminology used by both families (Table 1):

- *coordinator / initiator cluster*: the cluster whose primary received
  the client request and drives the protocol;
- *assigning clusters*: clusters that assign sequence numbers — the
  coordinator itself, plus (for cross-shard transactions) the other
  clusters of the initiator enterprise, one per shard;
- *validating clusters*: clusters of other enterprises replicating the
  same shards; they only validate the proposed order (§3.6: enterprises
  share one sharding schema, so one enterprise can order and the rest
  validate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.consensus.messages import CrossBlock
from repro.core.config import ClusterInfo
from repro.crypto.hashing import digest
from repro.datamodel.transaction import OrderedTransaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import ClusterNode


def classify(scope: frozenset[str], shards: tuple[int, ...]) -> str:
    """Transaction type per Table 1 (given it is not intra/intra)."""
    cross_enterprise = len(scope) > 1
    cross_shard = len(shards) > 1
    if cross_shard and cross_enterprise:
        return "csce"
    if cross_shard:
        return "csie"
    if cross_enterprise:
        return "isce"
    return "local"


# ----------------------------------------------------------------------
# vote-payload digest interning
# ----------------------------------------------------------------------
# Every node of every involved cluster recomputes the same accept /
# commit payload digest for every vote it sends or verifies — profiling
# the smoke scenario matrix showed these two helpers producing ~28k of
# its 79k digest calls over only a few thousand distinct payloads.  The
# inputs are frozen (digest strings, cluster names, TxId tuples), so
# the digests are interned process-wide.  Keys embed ``base_digest``,
# which covers the globally-unique request ids, so entries can never
# collide across blocks; the table is dropped on overflow like the
# signature-verification cache, and cleared between bench points
# (repro.crypto.hashing.clear_intern_caches).
from repro.crypto.hashing import register_intern_cache as _register_cache

_PAYLOAD_CACHE: dict[tuple, str] = _register_cache({})
_PAYLOAD_CACHE_MAX = 1 << 18


def accept_payload(base_digest: str, cluster: str, ids: tuple) -> str:
    key = ("a", base_digest, cluster, ids)
    cached = _PAYLOAD_CACHE.get(key)
    if cached is None:
        cached = digest(
            ["accept", base_digest, cluster, [i.canonical_bytes() for i in ids]]
        )
        if len(_PAYLOAD_CACHE) >= _PAYLOAD_CACHE_MAX:
            _PAYLOAD_CACHE.clear()
        _PAYLOAD_CACHE[key] = cached
    return cached


def commit_payload(base_digest: str, ids_by_cluster: tuple) -> str:
    key = ("c", base_digest, ids_by_cluster)
    cached = _PAYLOAD_CACHE.get(key)
    if cached is None:
        flat = sorted(
            (name, [i.canonical_bytes() for i in ids])
            for name, ids in ids_by_cluster
        )
        cached = digest(["commit", base_digest, flat])
        if len(_PAYLOAD_CACHE) >= _PAYLOAD_CACHE_MAX:
            _PAYLOAD_CACHE.clear()
        _PAYLOAD_CACHE[key] = cached
    return cached


def final_otxs(block: CrossBlock) -> list[OrderedTransaction]:
    """Build per-transaction OrderedTransactions from a finished block.

    Each transaction carries the IDs assigned by every assigning
    cluster, ordered with the coordinator's first (the commit message's
    "concatenation of the received IDs", §4.3.2).
    """
    result = []
    for index, tx in enumerate(block.txs):
        ids = tuple(run[index] for _, run in block.ids_by_cluster)
        result.append(OrderedTransaction(tx, ids))
    return result


@dataclass
class CrossState:
    """Per-block protocol state kept on every participating node."""

    block: CrossBlock
    base_digest: str
    coordinator: str
    involved: list[ClusterInfo]
    committed: bool = False
    stage: str = "start"
    # coordinator-side evidence
    prepared_certs: dict[str, Any] = field(default_factory=dict)
    prepared_votes: dict[str, dict[str, Any]] = field(default_factory=dict)
    prepared_ids: dict[str, tuple] = field(default_factory=dict)
    # flattened-side evidence
    accepts: dict[str, dict[str, Any]] = field(default_factory=dict)
    commits: dict[str, dict[str, Any]] = field(default_factory=dict)
    accept_sent: bool = False
    commit_sent: bool = False
    prepared_sent: bool = False
    timer: Any = None
    retries: int = 0
    order_cert: Any = None
    commit_cert: Any = None
    #: shard index -> assigning-cluster name (resolved lazily by the
    #: flattened engine; the mapping is fixed for a block's lifetime).
    id_cluster_by_shard: dict[int, str] = field(default_factory=dict)
    #: Memoized assigning-cluster list (fixed once the state exists;
    #: recomputed per accept otherwise).
    assigning_cache: list[ClusterInfo] | None = None

    def cancel_timer(self) -> None:
        if self.timer is not None:
            self.timer.cancel()
            self.timer = None


class CrossEngine:
    """Base class: directory helpers shared by both families."""

    def __init__(self, node: "ClusterNode"):
        self.node = node
        self.states: dict[int, CrossState] = {}
        # Messages that raced ahead of the state-creating message
        # (network latencies are independent per message), replayed
        # once the state exists.
        self._early: dict[int, list[tuple[Any, Any, str]]] = {}
        # Observability capture (None when off).
        from repro import obs

        self._obs_tracer = obs.TRACER

    def buffer_early(self, block_id: int, handler: Any, msg: Any, src: str) -> None:
        self._early.setdefault(block_id, []).append((handler, msg, src))

    def drain_early(self, block_id: int) -> None:
        for handler, msg, src in self._early.pop(block_id, ()):
            handler(msg, src)

    # ------------------------------------------------------------------
    # directory helpers
    # ------------------------------------------------------------------
    def _is_member(self, cluster: str, node_id: str) -> bool:
        """Votes count toward a cluster's local-majority only when cast
        by that cluster's members — a node of another (possibly
        malicious) cluster must not inflate the quorum."""
        info = self.node.directory.clusters.get(cluster)
        return info is not None and node_id in info.members

    def _involved(self, block: CrossBlock) -> list[ClusterInfo]:
        scope = self.node.collections.get_by_label(block.label).scope
        return self.node.directory.involved_clusters(scope, block.shards)

    def _assigning(
        self, block: CrossBlock, involved: list[ClusterInfo], coordinator: str
    ) -> list[ClusterInfo]:
        coord = self.node.directory.get(coordinator)
        if block.protocol == "isce":
            return [coord]
        return [c for c in involved if c.enterprise == coord.enterprise]

    def _assigning_for(self, state: "CrossState") -> list[ClusterInfo]:
        """Memoized :meth:`_assigning` over a state's fixed block /
        involved / coordinator triple (probed once per accept vote)."""
        cached = state.assigning_cache
        if cached is None:
            cached = self._assigning(
                state.block, state.involved, state.coordinator
            )
            state.assigning_cache = cached
        return cached

    def _validating(
        self, block: CrossBlock, involved: list[ClusterInfo], coordinator: str
    ) -> list[ClusterInfo]:
        assigning = {
            c.name for c in self._assigning(block, involved, coordinator)
        }
        return [c for c in involved if c.name not in assigning]

    def _state(
        self, block: CrossBlock, coordinator: str
    ) -> CrossState:
        state = self.states.get(block.block_id)
        if state is None:
            state = CrossState(
                block=block,
                base_digest=block.base_digest(),
                coordinator=coordinator,
                involved=self._involved(block),
            )
            self.states[block.block_id] = state
        return state

    def _other_cluster_nodes(
        self, involved: list[ClusterInfo], include_own: bool = False
    ) -> list[str]:
        nodes: list[str] = []
        for info in involved:
            if not include_own and info.name == self.node.cluster_name:
                continue
            nodes.extend(info.members)
        if include_own:
            nodes = [n for n in nodes if n != self.node.node_id]
        return nodes

    # ------------------------------------------------------------------
    # observability (guarded by ``self._obs_tracer is not None`` at
    # every call site; no-ops never run when off)
    # ------------------------------------------------------------------
    def _obs_block(self, block: CrossBlock, t: float) -> int:
        """Begin-once the span for ``block`` (same key the internal
        consensus layer uses, so both parent the same span)."""
        return self._obs_tracer.block_begin(
            ("X", block.block_id),
            f"block.{block.protocol}",
            block.block_id,
            self.node.node_id,
            t,
            txs=len(block.txs),
            label=block.label,
        )

    def _obs_phase(self, block: CrossBlock, name: str, t: float) -> None:
        parent = self._obs_block(block, t)
        node = self.node.node_id
        self._obs_tracer.phase_begin(
            (name, block.block_id, node),
            name,
            node,
            t,
            parent,
            owner=("x", block.block_id, node),
        )

    def _obs_phase_end(self, block_id: int, name: str, t: float) -> None:
        self._obs_tracer.phase_end((name, block_id, self.node.node_id), t)

    # ------------------------------------------------------------------
    # common commit path
    # ------------------------------------------------------------------
    def _commit(self, state: CrossState, certificate: Any) -> None:
        if state.committed:
            return
        state.committed = True
        state.cancel_timer()
        state.stage = "done"
        if self._obs_tracer is not None:
            t = self.node.sim.now
            block_id = state.block.block_id
            self._obs_tracer.close_owner(("x", block_id, self.node.node_id), t)
            self._obs_tracer.block_end(("X", block_id), t)
        reply = state.coordinator == self.node.cluster_name
        self.node.commit_cross(state.block, certificate, reply_to_client=reply)
        self.node.release_guard(state.block)
