"""Flattened cross-cluster consensus (§4.4, Figure 6).

No coordinator-side internal consensus: the initiator's primary
proposes, every node of every involved cluster validates and exchanges
``accept`` then ``commit`` messages all-to-all, and a node commits on
matching votes from a local-majority of *every* involved cluster.

Shapes:

- isce (Fig 6a): all clusters share the shard; everyone validates the
  initiator's IDs directly from the propose;
- csie (Fig 6b): each involved cluster's primary assigns its shard's
  IDs and announces them cluster-internally with a primary-accept;
  with crash-only nodes the CFT fast path (§4.4.2) collapses the
  all-to-all phases into accept-to-initiator + commit broadcast;
- csce (Fig 6c): initiator-enterprise primaries assign; clusters of
  other enterprises learn their shard's IDs from the same-shard
  primary-accept and then join the all-to-all phases.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.cross_base import (
    CrossEngine,
    CrossState,
    accept_payload,
    commit_payload,
)
from repro.consensus.messages import (
    CommitQuery,
    CrossBlock,
    FastCommit,
    FlatAccept,
    FlatCommit,
    PrimaryAccept,
    Propose,
)
from repro.ledger.certificate import CommitCertificate


class FlattenedEngine(CrossEngine):
    """Per-node handler for the flattened protocols."""

    MAX_RETRIES = 8

    # ------------------------------------------------------------------
    # entry point (initiator primary)
    # ------------------------------------------------------------------
    def start(self, block: CrossBlock) -> None:
        if not self.node.acquire_guard(block):
            return
        if self._obs_tracer is not None:
            self._obs_block(block, self.node.sim.now)
        ids = self.node.assign_ids(block)
        block = block.with_ids(self.node.cluster_name, ids)
        state = self._state(block, coordinator=self.node.cluster_name)
        state.block = block
        msg = Propose(block, self.node.cluster_name)
        self.node.multicast(
            self._other_cluster_nodes(state.involved, include_own=True), msg
        )
        self._handle_propose(state, msg)

    # ------------------------------------------------------------------
    # propose (every node of every involved cluster)
    # ------------------------------------------------------------------
    def on_propose(self, msg: Propose, src: str) -> None:
        initiator_info = self.node.directory.get(msg.initiator)
        if src != self.node.believed_primary(msg.initiator):
            self.node.observe_primary(msg.initiator, src)
        state = self._state(msg.block, coordinator=msg.initiator)
        if state.block.ids_of(msg.initiator) is None:
            state.block = msg.block
        if self._obs_tracer is not None:
            t = self.node.sim.now
            parent = self._obs_block(msg.block, t)
            start = self._obs_tracer.spans()[parent].start
            # Flight of the initiator's propose to this node.
            self._obs_tracer.completed(
                "cross.propose", self.node.node_id, start, t, parent
            )
        self._handle_propose(state, msg)
        self.drain_early(msg.block.block_id)

    def _fast_path(self, state: CrossState) -> bool:
        """CFT fast path: cross-shard intra-enterprise, crash-only."""
        return (
            state.block.protocol == "csie"
            and all(c.failure_model == "crash" for c in state.involved)
        )

    def _handle_propose(self, state: CrossState, msg: Propose) -> None:
        if state.committed:
            return
        self._arm_timer(state)
        own = self.node.cluster_name
        if own == msg.initiator:
            # Initiator-cluster nodes: the propose carries our IDs.
            self._accept_with_ids(state, own, state.block.ids_of(own))
            return
        assigning = {c.name for c in self._assigning_for(state)}
        if own in assigning:
            if self.node.is_primary():
                self._assign_and_announce(state)
            # Non-primary nodes wait for their primary's primary-accept.
            return
        # Validating cluster: same shard as initiator -> validate now;
        # otherwise wait for the same-shard primary-accept (csce).
        if self.node.cluster.shard == self.node.directory.get(msg.initiator).shard:
            self._accept_with_ids(
                state, msg.initiator, state.block.ids_of(msg.initiator)
            )

    def _assign_and_announce(self, state: CrossState) -> None:
        if state.block.ids_of(self.node.cluster_name) is not None:
            return
        if not self.node.acquire_guard(
            state.block, retry=lambda: self._assign_and_announce(state)
        ):
            return
        ids = self.node.assign_ids(state.block)
        state.block = state.block.with_ids(self.node.cluster_name, ids)
        payload = accept_payload(state.base_digest, self.node.cluster_name, ids)
        msg = PrimaryAccept(
            state.block.block_id,
            self.node.cluster_name,
            ids,
            state.base_digest,
            self.node.sign(payload),
        )
        targets = [
            m for m in self.node.cluster.members if m != self.node.node_id
        ]
        if state.block.protocol == "csce":
            # §4.4.3: also to the clusters maintaining the same shard.
            own_shard = self.node.cluster.shard
            for info in state.involved:
                if info.shard == own_shard and info.name != self.node.cluster_name:
                    targets.extend(info.members)
        self.node.multicast(targets, msg)
        self._record_accept(
            state, self.node.cluster_name, self.node.node_id, msg.signed, ids
        )
        self._send_own_accept(state, self.node.cluster_name, ids)

    # ------------------------------------------------------------------
    # primary-accept (own cluster nodes + same-shard validators)
    # ------------------------------------------------------------------
    def on_primary_accept(self, msg: PrimaryAccept, src: str) -> None:
        state = self.states.get(msg.block_id)
        if state is None:
            self.buffer_early(msg.block_id, self.on_primary_accept, msg, src)
            return
        if state.committed:
            return
        payload = accept_payload(msg.digest, msg.cluster, msg.ids)
        if not self.node.verify(msg.signed, payload):
            return
        if msg.digest != state.base_digest:
            return
        if not self._is_member(msg.cluster, src):
            return
        state.block = state.block.with_ids(msg.cluster, msg.ids)
        self._record_accept(state, msg.cluster, src, msg.signed, msg.ids)
        if self.node.cluster_name == msg.cluster:
            # Our own primary announced the IDs: validate and accept.
            self._accept_with_ids(state, msg.cluster, msg.ids)
        elif self.node.cluster.shard == self.node.directory.get(msg.cluster).shard:
            # Same-shard validating cluster (csce).
            self._accept_with_ids(state, msg.cluster, msg.ids)

    def _accept_with_ids(
        self, state: CrossState, id_cluster: str, ids: tuple | None
    ) -> None:
        """Validate a shard's IDs, then multicast our accept."""
        if ids is None or state.accept_sent or state.committed:
            return
        status = self.node.validate_ids(
            ids, retry=lambda: self._accept_with_ids(state, id_cluster, ids)
        )
        if status != "ok":
            return
        state.accept_sent = True
        self._send_own_accept(state, id_cluster, ids)

    def _send_own_accept(
        self, state: CrossState, id_cluster: str, ids: tuple
    ) -> None:
        payload = accept_payload(state.base_digest, id_cluster, ids)
        signed = self.node.sign(payload)
        msg = FlatAccept(
            state.block.block_id,
            self.node.cluster_name,
            ids,
            state.base_digest,
            signed,
        )
        if self._fast_path(state):
            # CFT fast path: accepts go to the initiator primary only.
            self.node.send(self.node.believed_primary(state.coordinator), msg)
        else:
            self.node.multicast(
                self._other_cluster_nodes(state.involved, include_own=True),
                msg,
            )
        self._record_accept(
            state, self.node.cluster_name, self.node.node_id, signed, ids
        )
        if self._obs_tracer is not None:
            self._obs_phase(state.block, "cross.vote", self.node.sim.now)
        self._maybe_send_commit(state)

    # ------------------------------------------------------------------
    # accept (all-to-all)
    # ------------------------------------------------------------------
    def on_flat_accept(self, msg: FlatAccept, src: str) -> None:
        state = self.states.get(msg.block_id)
        if state is None:
            self.buffer_early(msg.block_id, self.on_flat_accept, msg, src)
            return
        if state.committed:
            return
        if msg.digest != state.base_digest:
            return
        # The accept is signed over the IDs of the shard it validated;
        # recover the assigning cluster from the IDs themselves.
        id_cluster = self._id_cluster_of(state, msg.ids)
        payload = accept_payload(state.base_digest, id_cluster, msg.ids)
        if not self.node.verify(msg.signed, payload):
            return
        if not self._is_member(msg.cluster, src):
            return
        state.block = state.block.with_ids(id_cluster, msg.ids)
        self._record_accept(state, msg.cluster, src, msg.signed, msg.ids)
        if self._fast_path(state):
            self._maybe_fast_commit(state)
        else:
            self._maybe_send_commit(state)

    def _id_cluster_of(self, state: CrossState, ids: tuple) -> str:
        """Which assigning cluster produced this run of IDs?

        Cached per state and shard: every accept of a block repeats
        the same directory walk otherwise (coordinator and shard map
        are fixed for the block's lifetime).
        """
        shard = ids[0].alpha.shard
        cached = state.id_cluster_by_shard.get(shard)
        if cached is None:
            coord = self.node.directory.get(state.coordinator)
            cached = self.node.directory.at(coord.enterprise, shard).name
            state.id_cluster_by_shard[shard] = cached
        return cached

    def _record_accept(
        self, state: CrossState, cluster: str, node: str, signed: Any, ids: tuple
    ) -> None:
        votes = state.accepts.get(cluster)
        if votes is None:
            votes = state.accepts[cluster] = {}
        votes[node] = (signed, ids)

    def _accept_quorum_met(self, state: CrossState) -> bool:
        accepts = state.accepts
        for info in state.involved:
            votes = accepts.get(info.name)
            if votes is None or len(votes) < info.local_majority:
                return False
        block = state.block
        return all(
            block.ids_of(c.name) is not None
            for c in self._assigning_for(state)
        )

    def _maybe_send_commit(self, state: CrossState) -> None:
        if state.commit_sent or state.committed:
            return
        if not self._accept_quorum_met(state):
            return
        state.commit_sent = True
        payload = commit_payload(state.base_digest, state.block.ids_by_cluster)
        signed = self.node.sign(payload)
        msg = FlatCommit(
            state.block.block_id,
            self.node.cluster_name,
            state.block.ids_by_cluster,
            state.base_digest,
            signed,
        )
        self.node.multicast(
            self._other_cluster_nodes(state.involved, include_own=True), msg
        )
        self._record_commit(state, self.node.cluster_name, self.node.node_id, signed)
        if self._obs_tracer is not None:
            t = self.node.sim.now
            self._obs_phase_end(state.block.block_id, "cross.vote", t)
            self._obs_phase(state.block, "cross.decide", t)
        self._maybe_commit(state)

    # ------------------------------------------------------------------
    # commit (all-to-all)
    # ------------------------------------------------------------------
    def on_flat_commit(self, msg: FlatCommit, src: str) -> None:
        state = self.states.get(msg.block_id)
        if state is None:
            self.buffer_early(msg.block_id, self.on_flat_commit, msg, src)
            return
        if state.committed:
            return
        if msg.digest != state.base_digest:
            return
        payload = commit_payload(state.base_digest, msg.ids_by_cluster)
        if not self.node.verify(msg.signed, payload):
            return
        if not self._is_member(msg.cluster, src):
            return
        for name, ids in msg.ids_by_cluster:
            state.block = state.block.with_ids(name, ids)
        self._record_commit(state, msg.cluster, src, msg.signed)
        # A straggler that missed accepts can still join the commit wave.
        self._maybe_send_commit(state)
        self._maybe_commit(state)

    def _record_commit(
        self, state: CrossState, cluster: str, node: str, signed: Any
    ) -> None:
        votes = state.commits.get(cluster)
        if votes is None:
            votes = state.commits[cluster] = {}
        votes[node] = signed

    def _maybe_commit(self, state: CrossState) -> None:
        if state.committed:
            return
        signatures = []
        for info in state.involved:
            votes = state.commits.get(info.name, {})
            if len(votes) < info.local_majority:
                return
            signatures.extend(votes.values())
        certificate = CommitCertificate(
            cluster=state.coordinator,
            payload_digest=commit_payload(
                state.base_digest, state.block.ids_by_cluster
            ),
            signatures=tuple(signatures),
        )
        self._commit(state, certificate)

    # ------------------------------------------------------------------
    # CFT fast path (§4.4.2)
    # ------------------------------------------------------------------
    def _maybe_fast_commit(self, state: CrossState) -> None:
        if state.committed or self.node.cluster_name != state.coordinator:
            return
        if not self.node.is_primary():
            return
        for info in state.involved:
            votes = state.accepts.get(info.name, {})
            if len(votes) < info.f + 1:
                return
        assigning = self._assigning_for(state)
        if any(state.block.ids_of(c.name) is None for c in assigning):
            return
        msg = FastCommit(state.block, self.node.cluster_name)
        self.node.multicast(
            self._other_cluster_nodes(state.involved, include_own=True), msg
        )
        self._commit(state, self._fast_certificate(state))

    def on_fast_commit(self, msg: FastCommit, src: str) -> None:
        if src != self.node.believed_primary(msg.initiator):
            self.node.observe_primary(msg.initiator, src)
        state = self._state(msg.block, coordinator=msg.initiator)
        state.block = msg.block
        self._commit(state, self._fast_certificate(state))

    def _fast_certificate(self, state: CrossState) -> CommitCertificate:
        signatures = tuple(
            signed
            for votes in state.accepts.values()
            for signed, _ in votes.values()
        )
        return CommitCertificate(
            cluster=state.coordinator,
            payload_digest=state.base_digest,
            signatures=signatures,
        )

    # ------------------------------------------------------------------
    # failure handling (§4.4.4)
    # ------------------------------------------------------------------
    def _arm_timer(self, state: CrossState) -> None:
        if state.timer is not None:
            return
        state.timer = self.node.set_timer(
            self.node.cross_timeout, self._on_timeout, state
        )

    def _on_timeout(self, state: CrossState) -> None:
        if state.committed or state.retries >= self.MAX_RETRIES:
            return
        state.retries += 1
        if self.node.cluster_name == state.coordinator:
            # Our own primary stalled the block: suspect it.
            if not self.node.is_primary():
                self.node.suspect_primary()
            else:
                # Re-drive the propose (lost messages / deadlock).
                self.node.multicast(
                    self._other_cluster_nodes(state.involved, include_own=True),
                    Propose(state.block, self.node.cluster_name),
                )
        else:
            self.node.multicast(
                self.node.directory.get(state.coordinator).members,
                CommitQuery(
                    state.block.block_id,
                    state.base_digest,
                    self.node.cluster_name,
                ),
            )
        state.timer = self.node.set_timer(
            self.node.cross_timeout, self._on_timeout, state
        )

    def on_view_change(self) -> None:
        """A new initiator primary re-proposes in-flight blocks."""
        if not self.node.is_primary():
            return
        for state in self.states.values():
            if state.committed or state.coordinator != self.node.cluster_name:
                continue
            self.node.multicast(
                self._other_cluster_nodes(state.involved, include_own=True),
                Propose(state.block, self.node.cluster_name),
            )

    def on_commit_query(self, msg: CommitQuery, src: str) -> None:
        state = self.states.get(msg.block_id)
        if state is None:
            return
        if state.committed:
            payload = commit_payload(
                state.base_digest, state.block.ids_by_cluster
            )
            self.node.send(
                src,
                FlatCommit(
                    state.block.block_id,
                    self.node.cluster_name,
                    state.block.ids_by_cluster,
                    state.base_digest,
                    self.node.sign(payload),
                ),
            )
            return
        if not self._is_member(msg.cluster, src):
            return
        votes = state.commits.setdefault(f"query:{msg.cluster}", {})
        votes[src] = True
        info = self.node.directory.get(msg.cluster)
        if len(votes) >= info.local_majority and not self.node.is_primary():
            self.node.suspect_primary()
