"""Wire messages for clients, cross-cluster protocols, and the firewall.

Message classes carry ``CPU_WEIGHT`` / ``EXEC_WEIGHT`` hints for the
calibrated cost model and ``tx_count()`` for batch scaling.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import Canonical
from repro.crypto.signatures import SignedMessage
from repro.datamodel.transaction import OrderedTransaction, Transaction
from repro.datamodel.txid import TxId
from repro.ledger.certificate import CommitCertificate, ReplyCertificate


# ----------------------------------------------------------------------
# client <-> cluster
# ----------------------------------------------------------------------
@dataclass
class ClientRequest:
    CPU_WEIGHT = 1.0
    tx: Transaction
    retransmission: bool = False

    def tx_count(self) -> int:
        return 1


@dataclass
class ClientReply:
    CPU_WEIGHT = 0.3
    request_id: int
    client: str
    timestamp: int
    result: Any
    signed: SignedMessage | None = None
    reply_certificate: ReplyCertificate | None = None

    def tx_count(self) -> int:
        return 1


# ----------------------------------------------------------------------
# batching (intra-cluster)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Block(Canonical):
    """A batch of ordered transactions on one collection-shard."""

    otxs: tuple[OrderedTransaction, ...]

    def _canonical_bytes(self) -> bytes:
        return b"block|" + b";".join(o.canonical_bytes() for o in self.otxs)

    def tx_count(self) -> int:
        return len(self.otxs)

    @property
    def first_seq(self) -> int:
        return self.otxs[0].primary_id.alpha.seq


@dataclass(frozen=True)
class CrossBlock(Canonical):
    """A batch of cross-cluster transactions processed together.

    All transactions target the same collection and shard set.  Each
    involved cluster assigns the batch a consecutive run of sequence
    numbers for its shard; ``ids_by_cluster`` accumulates those runs
    (tuples parallel to ``txs``) as the protocol progresses.
    """

    txs: tuple[Transaction, ...]
    label: str
    shards: tuple[int, ...]
    protocol: str  # "isce" | "csie" | "csce"
    ids_by_cluster: tuple[tuple[str, tuple[TxId, ...]], ...] = ()

    @property
    def block_id(self) -> int:
        """The batch is identified by its first request id."""
        return self.txs[0].request_id

    def ids_of(self, cluster: str) -> tuple[TxId, ...] | None:
        for name, ids in self.ids_by_cluster:
            if name == cluster:
                return ids
        return None

    def with_ids(self, cluster: str, ids: tuple[TxId, ...]) -> "CrossBlock":
        if self.ids_of(cluster) is not None:
            return self
        return CrossBlock(
            self.txs,
            self.label,
            self.shards,
            self.protocol,
            self.ids_by_cluster + ((cluster, ids),),
        )

    def base_digest(self) -> str:
        """Digest over the transactions only (ID-independent matching).

        Memoized: every cluster involved in a cross block matches
        accept/commit votes by this digest, re-hashing the same
        transactions otherwise.  ``txs`` is frozen, so it cannot stale.
        """
        cached = getattr(self, "_base_digest_cache", None)
        if cached is not None:
            return cached
        from repro.crypto.hashing import digest

        result = digest([t.canonical_bytes() for t in self.txs])
        object.__setattr__(self, "_base_digest_cache", result)
        return result

    def _canonical_bytes(self) -> bytes:
        ids = b";".join(
            name.encode() + b"=" + b",".join(i.canonical_bytes() for i in run)
            for name, run in self.ids_by_cluster
        )
        txs = b";".join(t.canonical_bytes() for t in self.txs)
        return (
            f"xblock|{self.label}|{self.shards}|{self.protocol}|".encode()
            + txs
            + b"|"
            + ids
        )

    def tx_count(self) -> int:
        return len(self.txs)


@dataclass(frozen=True)
class CrossOrderValue(Canonical):
    """Internal-consensus value: 'this cluster ordered this cross block'."""

    block: CrossBlock
    stage: str  # "order" | "commit"

    def _canonical_bytes(self) -> bytes:
        return f"xord|{self.stage}|".encode() + self.block.canonical_bytes()

    def tx_count(self) -> int:
        return self.block.tx_count()


# ----------------------------------------------------------------------
# coordinator-based cross-cluster (§4.3, Figure 5)
# ----------------------------------------------------------------------
@dataclass
class Prepare:
    CPU_WEIGHT = 1.0
    block: CrossBlock              # carries the coordinator's IDs
    coordinator: str               # coordinator cluster name
    certificate: CommitCertificate | None  # σ_Pc evidence

    def tx_count(self) -> int:
        return self.block.tx_count()


@dataclass
class PreparedMsg:
    CPU_WEIGHT = 0.5
    block_id: int
    ids_by_cluster: tuple[tuple[str, tuple[TxId, ...]], ...]
    digest: str                    # base digest of the block
    cluster: str
    signed: SignedMessage
    certificate: CommitCertificate | None = None  # involved-cluster consensus

    def tx_count(self) -> int:
        return 1


@dataclass
class CrossCommitMsg:
    CPU_WEIGHT = 1.0
    block: CrossBlock              # final, with IDs of every cluster
    coordinator: str
    certificate: CommitCertificate | None
    prepared_evidence: tuple[PreparedMsg, ...] = ()

    def tx_count(self) -> int:
        return self.block.tx_count()


@dataclass
class AbortMsg:
    CPU_WEIGHT = 0.5
    block_id: int
    cluster: str
    reason: str

    def tx_count(self) -> int:
        return 1


# ----------------------------------------------------------------------
# flattened cross-cluster (§4.4, Figure 6)
# ----------------------------------------------------------------------
@dataclass
class Propose:
    CPU_WEIGHT = 1.0
    block: CrossBlock              # initiator primary's IDs
    initiator: str                 # initiator cluster name

    def tx_count(self) -> int:
        return self.block.tx_count()


@dataclass
class PrimaryAccept:
    """An involved primary's accept, carrying the IDs it assigned."""

    CPU_WEIGHT = 0.7
    block_id: int
    cluster: str
    ids: tuple[TxId, ...]
    digest: str
    signed: SignedMessage

    def tx_count(self) -> int:
        return 1


@dataclass
class FlatAccept:
    CPU_WEIGHT = 0.5
    block_id: int
    cluster: str
    ids: tuple[TxId, ...]          # this cluster's run of IDs
    digest: str
    signed: SignedMessage

    def tx_count(self) -> int:
        return 1


@dataclass
class FlatCommit:
    CPU_WEIGHT = 0.5
    block_id: int
    cluster: str
    ids_by_cluster: tuple[tuple[str, tuple[TxId, ...]], ...]
    digest: str
    signed: SignedMessage

    def tx_count(self) -> int:
        return 1


@dataclass
class FastCommit:
    """CFT fast path for cross-shard intra-enterprise clusters (§4.4.2)."""

    CPU_WEIGHT = 0.7
    block: CrossBlock
    initiator: str

    def tx_count(self) -> int:
        return self.block.tx_count()


# ----------------------------------------------------------------------
# failure handling (§4.3.4 / §4.4.4)
# ----------------------------------------------------------------------
@dataclass
class CommitQuery:
    CPU_WEIGHT = 0.3
    block_id: int
    digest: str
    cluster: str                   # querying cluster

    def tx_count(self) -> int:
        return 1


@dataclass
class PreparedQuery:
    CPU_WEIGHT = 0.3
    block_id: int
    digest: str
    cluster: str

    def tx_count(self) -> int:
        return 1


# ----------------------------------------------------------------------
# ordering -> firewall -> execution (§3.4, §4.2)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExecEntry(Canonical):
    """One committed transaction bound for the execution nodes."""

    otx: OrderedTransaction
    tx_id: TxId
    certificate: CommitCertificate
    reply_to_client: bool

    def _canonical_bytes(self) -> bytes:
        return (
            b"exec|"
            + self.otx.canonical_bytes()
            + b"|"
            + self.tx_id.canonical_bytes()
            + b"|"
            + self.certificate.canonical_bytes()
            + (b"|r1" if self.reply_to_client else b"|r0")
        )


@dataclass
class ExecOrder:
    CPU_WEIGHT = 0.5
    entries: tuple[ExecEntry, ...]

    def tx_count(self) -> int:
        return len(self.entries)


@dataclass
class ExecReply:
    CPU_WEIGHT = 0.2
    request_id: int
    client: str
    timestamp: int
    result_digest: str
    signed: SignedMessage
    result: Any = None             # sealed for the client in real life

    def tx_count(self) -> int:
        return 1


@dataclass
class ReplyCertMsg:
    CPU_WEIGHT = 0.1
    certificate: ReplyCertificate
    client: str
    timestamp: int
    result: Any = None

    def tx_count(self) -> int:
        return 1
