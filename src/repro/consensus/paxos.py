"""Multi-Paxos for crash-only clusters (§4.1).

Steady state with a stable leader is phase-2 only: ``accept`` ->
``accepted`` (f+1 of 2f+1) -> ``decide``.  Leader failure triggers a
ballot-based election (``prepare``/``promise``) where the candidate
re-proposes the highest-ballot accepted values it learns — the
standard Paxos safety argument.

Ballots are partitioned by node index (ballot mod n names the leader),
so competing candidates never share a ballot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import Canonical, value_digest
from repro.crypto.signatures import SignedMessage, verify_many
from repro.consensus.base import ConsensusHost, InternalConsensus


#: Memoized per value object (see :func:`repro.crypto.hashing.value_digest`).
_value_digest = value_digest


@dataclass(frozen=True)
class PaxosAccept(Canonical):
    CPU_WEIGHT = 1.0
    ballot: int
    slot: Any
    value: Any
    value_digest: str

    def _canonical_bytes(self) -> bytes:
        # The digest stands in for the value (checked on receipt), so
        # values without canonical_bytes stay encodable.
        return f"paxos-a|{self.ballot}|{self.slot!r}|{self.value_digest}".encode()

    def tx_count(self) -> int:
        return self.value.tx_count() if hasattr(self.value, "tx_count") else 1


@dataclass(frozen=True)
class PaxosAccepted(Canonical):
    CPU_WEIGHT = 0.5
    ballot: int
    slot: Any
    value_digest: str
    signed: SignedMessage

    def _canonical_bytes(self) -> bytes:
        return (
            f"paxos-ad|{self.ballot}|{self.slot!r}|{self.value_digest}|".encode()
            + self.signed.canonical_bytes()
        )

    def tx_count(self) -> int:
        return 1


@dataclass(frozen=True)
class PaxosDecide(Canonical):
    CPU_WEIGHT = 0.5
    slot: Any
    value: Any
    value_digest: str
    signatures: tuple[SignedMessage, ...]

    def _canonical_bytes(self) -> bytes:
        sigs = b";".join(s.canonical_bytes() for s in self.signatures)
        return (
            f"paxos-d|{self.slot!r}|{self.value_digest}|".encode() + sigs
        )

    def tx_count(self) -> int:
        return self.value.tx_count() if hasattr(self.value, "tx_count") else 1


@dataclass(frozen=True)
class PaxosPrepare(Canonical):
    CPU_WEIGHT = 0.5
    ballot: int

    def _canonical_bytes(self) -> bytes:
        return f"paxos-p|{self.ballot}".encode()

    def tx_count(self) -> int:
        return 1


@dataclass(frozen=True)
class PaxosPromise(Canonical):
    CPU_WEIGHT = 0.5
    ballot: int
    accepted: dict = field(default_factory=dict)  # slot -> (ballot, value)

    def _canonical_bytes(self) -> bytes:
        # Bind the per-slot accepted (ballot, value) payloads so two
        # promises carrying different values never share a preimage.
        slots = ";".join(
            f"{slot!r}:{ballot}:{_value_digest(value)}"
            for slot, (ballot, value) in sorted(
                self.accepted.items(), key=lambda item: repr(item[0])
            )
        )
        return f"paxos-pr|{self.ballot}|{slots}".encode()

    def tx_count(self) -> int:
        return max(1, len(self.accepted))


class MultiPaxos(InternalConsensus):
    """Crash-fault-tolerant internal consensus (2f+1 nodes)."""

    PROTO = "paxos"

    def __init__(self, host: ConsensusHost, f: int = 1, timeout: float = 0.5):
        super().__init__(host, timeout)
        self.f = f
        self.quorum = f + 1
        self.ballot = 0  # current ballot; leader = members[ballot % n]
        self.promised = 0
        self._accepted: dict[Any, tuple[int, Any]] = {}
        self._promises: dict[int, dict[str, dict]] = {}
        self._election_timer: Any = None
        self._backoff = 1.0

    # ------------------------------------------------------------------
    @property
    def primary_id(self) -> str:
        return self.host.members[self.ballot % len(self.host.members)]

    def _others(self) -> list[str]:
        return [m for m in self.host.members if m != self.host.node_id]

    # ------------------------------------------------------------------
    # steady state
    # ------------------------------------------------------------------
    def propose(self, slot: Any, value: Any) -> None:
        if not self.is_primary():
            raise RuntimeError(f"{self.host.node_id} is not the Paxos leader")
        state = self._slot(slot)
        if state.decided:
            return
        vdigest = _value_digest(value)
        state.value = value
        state.value_digest = vdigest
        state.votes_phase2 = {}
        self._accepted[slot] = (self.ballot, value)
        own = self.host.sign(vdigest)
        state.votes_phase2[self.host.node_id] = own
        state.timer = self.host.set_timer(self.timeout, self._on_timeout, slot)
        self.host.multicast(
            self._others(),
            PaxosAccept(self.ballot, slot, value, vdigest),
        )
        if self._obs_tracer is not None:
            t = self._obs_now()
            inst = self._obs_instance(slot, value, t)
            self._obs_phase_begin(slot, "paxos.accept", t, inst)
        self._maybe_decide(slot, state)

    def handle(self, msg: Any, src: str) -> bool:
        if isinstance(msg, PaxosAccept):
            self._on_accept(msg, src)
        elif isinstance(msg, PaxosAccepted):
            self._on_accepted(msg, src)
        elif isinstance(msg, PaxosDecide):
            self._on_decide_msg(msg, src)
        elif isinstance(msg, PaxosPrepare):
            self._on_prepare(msg, src)
        elif isinstance(msg, PaxosPromise):
            self._on_promise(msg, src)
        else:
            return False
        return True

    def _on_accept(self, msg: PaxosAccept, src: str) -> None:
        if msg.ballot < self.promised:
            return
        self.promised = msg.ballot
        self.ballot = msg.ballot
        self._accepted[msg.slot] = (msg.ballot, msg.value)
        state = self._slot(msg.slot)
        if state.decided:
            return
        state.value = msg.value
        state.value_digest = msg.value_digest
        if state.timer is None:
            state.timer = self.host.set_timer(
                self.timeout, self._on_timeout, msg.slot
            )
        signed = self.host.sign(msg.value_digest)
        self.host.send(
            src, PaxosAccepted(msg.ballot, msg.slot, msg.value_digest, signed)
        )
        if self._obs_tracer is not None:
            t = self._obs_now()
            inst = self._obs_instance(msg.slot, msg.value, t)
            if t is not None:
                host = self.host
                start = self._obs_tracer.instance_start(
                    host.cluster_name, msg.slot
                )
                # Flight of the leader's accept to this acceptor.
                self._obs_tracer.completed(
                    "paxos.accept",
                    host.node_id,
                    start if start is not None else t,
                    t,
                    inst,
                )
            self._obs_phase_begin(msg.slot, "paxos.learn", t, inst)


    def _on_accepted(self, msg: PaxosAccepted, src: str) -> None:
        state = self._slot(msg.slot)
        if state.decided or state.value_digest != msg.value_digest:
            return
        if msg.ballot != self.ballot:
            return
        if not self.host.verify(msg.signed, msg.value_digest):
            return
        state.votes_phase2[src] = msg.signed
        self._maybe_decide(msg.slot, state)

    def _maybe_decide(self, slot: Any, state: Any) -> None:
        if state.decided or len(state.votes_phase2) < self.quorum:
            return
        signatures = tuple(state.votes_phase2.values())
        self._decide(slot, state)
        self.host.multicast(
            self._others(),
            PaxosDecide(slot, state.value, state.value_digest, signatures),
        )

    def _on_decide_msg(self, msg: PaxosDecide, src: str) -> None:
        state = self._slot(msg.slot)
        if state.decided:
            return
        state.value = msg.value
        state.value_digest = msg.value_digest
        # Batched: the decide message carries the quorum's signatures
        # together, so one verify_many pass (shared digest, early exit
        # at quorum) replaces per-signature verify calls.
        valid = verify_many(
            self.host.key_registry,
            msg.signatures,
            payload=msg.value_digest,
            quorum=self.quorum,
        )
        for signed in msg.signatures:
            if signed.signer in valid:
                state.votes_phase2[signed.signer] = signed
        if len(state.votes_phase2) >= self.quorum:
            self._decide(msg.slot, state)

    # ------------------------------------------------------------------
    # leader election
    # ------------------------------------------------------------------
    def _next_ballot_for_self(self) -> int:
        n = len(self.host.members)
        index = self.host.members.index(self.host.node_id)
        ballot = self.ballot + 1
        while ballot % n != index:
            ballot += 1
        return ballot

    def _on_timeout(self, slot: Any) -> None:
        state = self.slots.get(slot)
        if state is None or state.decided:
            return
        self.start_election()
        # Re-arm with backoff so a failed election retries.
        state.timer = self.host.set_timer(
            self.timeout * self._backoff, self._on_timeout, slot
        )

    def request_view_change(self) -> None:
        """Uniform failure-handling entry point (alias for election)."""
        self.start_election()

    def start_election(self) -> None:
        """Bid for leadership with a fresh ballot owned by this node."""
        ballot = self._next_ballot_for_self()
        self._backoff = min(self._backoff * 2.0, 16.0)
        self.promised = ballot
        self._promises[ballot] = {
            self.host.node_id: {
                slot: acc for slot, acc in self._accepted.items()
            }
        }
        self.host.multicast(self._others(), PaxosPrepare(ballot))
        self._check_promises(ballot)

    def _on_prepare(self, msg: PaxosPrepare, src: str) -> None:
        if msg.ballot <= self.promised:
            return
        self.promised = msg.ballot
        accepted = {slot: acc for slot, acc in self._accepted.items()}
        self.host.send(src, PaxosPromise(msg.ballot, accepted))

    def _on_promise(self, msg: PaxosPromise, src: str) -> None:
        bucket = self._promises.get(msg.ballot)
        if bucket is None:
            return
        bucket[src] = msg.accepted
        self._check_promises(msg.ballot)

    def _check_promises(self, ballot: int) -> None:
        bucket = self._promises.get(ballot)
        if bucket is None or len(bucket) < self.quorum:
            return
        del self._promises[ballot]
        self.ballot = ballot
        self._backoff = 1.0
        self._obs_view_change()
        # Re-propose the highest-ballot accepted value per slot.
        merged: dict[Any, tuple[int, Any]] = {}
        for accepted in bucket.values():
            for slot, (b, value) in accepted.items():
                if slot not in merged or b > merged[slot][0]:
                    merged[slot] = (b, value)
        for slot, (_, value) in merged.items():
            state = self._slot(slot)
            if state.decided:
                continue
            state.votes_phase2 = {}
            state.value = value
            state.value_digest = _value_digest(value)
            self._accepted[slot] = (ballot, value)
            own = self.host.sign(state.value_digest)
            state.votes_phase2[self.host.node_id] = own
            self.host.multicast(
                self._others(),
                PaxosAccept(ballot, slot, value, state.value_digest),
            )
        self.host.on_view_change(self.primary_id)
