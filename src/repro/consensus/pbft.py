"""PBFT for Byzantine clusters (§4.1).

The classic three phases over 3f+1 ordering nodes: ``pre-prepare``
(primary) -> ``prepare`` (2f matching + pre-prepare) -> ``commit``
(2f+1 matching) -> decided.  Commit messages carry signatures, which
become the commit certificate the execution routine appends to the
ledger and the privacy firewall verifies (§4.2).

View changes follow PBFT's shape (§4.3.4/§4.4.4): timeouts trigger
``view-change`` messages carrying prepared slots; on 2f+1 of them the
new primary installs the view with ``new-view`` and re-proposes.
Timeouts double on consecutive failures, as in PBFT.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import Canonical, value_digest
from repro.crypto.signatures import SignedMessage
from repro.consensus.base import ConsensusHost, InternalConsensus


#: Memoized per value object (see :func:`repro.crypto.hashing.value_digest`).
_value_digest = value_digest


@dataclass(frozen=True)
class PbftPrePrepare(Canonical):
    CPU_WEIGHT = 1.0
    view: int
    slot: Any
    value: Any
    value_digest: str

    def _canonical_bytes(self) -> bytes:
        # The digest binds the value (the protocol checks it against
        # value_digest(value) on receipt), so it stands in for the
        # value here — values without canonical_bytes stay encodable.
        return f"pbft-pp|{self.view}|{self.slot!r}|{self.value_digest}".encode()

    def tx_count(self) -> int:
        return self.value.tx_count() if hasattr(self.value, "tx_count") else 1


@dataclass(frozen=True)
class PbftPrepare(Canonical):
    CPU_WEIGHT = 0.5
    view: int
    slot: Any
    value_digest: str
    signed: SignedMessage

    def _canonical_bytes(self) -> bytes:
        return (
            f"pbft-p|{self.view}|{self.slot!r}|{self.value_digest}|".encode()
            + self.signed.canonical_bytes()
        )

    def tx_count(self) -> int:
        return 1


@dataclass(frozen=True)
class PbftCommit(Canonical):
    CPU_WEIGHT = 0.5
    view: int
    slot: Any
    value_digest: str
    signed: SignedMessage

    def _canonical_bytes(self) -> bytes:
        return (
            f"pbft-c|{self.view}|{self.slot!r}|{self.value_digest}|".encode()
            + self.signed.canonical_bytes()
        )

    def tx_count(self) -> int:
        return 1


@dataclass(frozen=True)
class PbftViewChange(Canonical):
    CPU_WEIGHT = 1.0
    new_view: int
    prepared: dict = field(default_factory=dict)  # slot -> (view, value)
    signed: SignedMessage | None = None

    def _canonical_bytes(self) -> bytes:
        # Bind the per-slot payloads, not just the slot names: two
        # view-changes carrying different prepared values must never
        # share a digest preimage.
        slots = ";".join(
            f"{slot!r}:{view}:{_value_digest(value)}"
            for slot, (view, value) in sorted(
                self.prepared.items(), key=lambda item: repr(item[0])
            )
        )
        own = self.signed.canonical_bytes() if self.signed is not None else b"-"
        return f"pbft-vc|{self.new_view}|{slots}|".encode() + own

    def tx_count(self) -> int:
        return max(1, len(self.prepared))


@dataclass(frozen=True)
class PbftNewView(Canonical):
    CPU_WEIGHT = 1.0
    new_view: int
    proposals: dict = field(default_factory=dict)  # slot -> value

    def _canonical_bytes(self) -> bytes:
        slots = ";".join(
            f"{slot!r}:{_value_digest(value)}"
            for slot, value in sorted(
                self.proposals.items(), key=lambda item: repr(item[0])
            )
        )
        return f"pbft-nv|{self.new_view}|{slots}".encode()

    def tx_count(self) -> int:
        return max(1, len(self.proposals))


class PBFT(InternalConsensus):
    """Byzantine-fault-tolerant internal consensus (3f+1 ordering nodes)."""

    PROTO = "pbft"

    def __init__(self, host: ConsensusHost, f: int = 1, timeout: float = 0.5):
        super().__init__(host, timeout)
        self.f = f
        self.quorum = 2 * f + 1
        self._view_changes: dict[int, dict[str, PbftViewChange]] = {}
        self._current_timeout = timeout
        self._view_change_in_progress = False
        # Messages from views we have not installed yet (a new primary's
        # pre-prepare can race ahead of its new-view); replayed on
        # install, dropped if the view is skipped.
        self._future_msgs: dict[int, list[tuple[Any, str]]] = {}

    def _others(self) -> list[str]:
        return [m for m in self.host.members if m != self.host.node_id]

    # ------------------------------------------------------------------
    # normal case
    # ------------------------------------------------------------------
    def propose(self, slot: Any, value: Any) -> None:
        if not self.is_primary():
            raise RuntimeError(f"{self.host.node_id} is not the PBFT primary")
        state = self._slot(slot)
        if state.decided:
            return
        if state.value is not None and state.view == self.view:
            return  # already in flight in this view
        state.votes_phase1 = {}
        state.votes_phase2 = {}
        vdigest = _value_digest(value)
        state.value = value
        state.value_digest = vdigest
        state.view = self.view
        state.votes_phase1[self.host.node_id] = self.host.sign(vdigest)
        state.timer = self.host.set_timer(
            self._current_timeout, self._on_timeout, slot
        )
        self.host.multicast(
            self._others(), PbftPrePrepare(self.view, slot, value, vdigest)
        )
        if self._obs_tracer is not None:
            t = self._obs_now()
            inst = self._obs_instance(slot, value, t)
            self._obs_phase_begin(slot, "pbft.prepare", t, inst)
        self._maybe_prepared(slot, state)

    def handle(self, msg: Any, src: str) -> bool:
        if isinstance(msg, PbftPrePrepare):
            self._on_preprepare(msg, src)
        elif isinstance(msg, PbftPrepare):
            self._on_prepare(msg, src)
        elif isinstance(msg, PbftCommit):
            self._on_commit(msg, src)
        elif isinstance(msg, PbftViewChange):
            self._on_view_change_msg(msg, src)
        elif isinstance(msg, PbftNewView):
            self._on_new_view(msg, src)
        else:
            return False
        return True

    def _on_preprepare(self, msg: PbftPrePrepare, src: str) -> None:
        if msg.view > self.view:
            self._buffer_future(msg.view, msg, src)
            return
        if msg.view != self.view or src != self.primary_id:
            return
        if _value_digest(msg.value) != msg.value_digest:
            return  # equivocating/bogus primary: ignore, timer will fire
        state = self._slot(msg.slot)
        if state.decided:
            return
        if state.value is not None and state.value_digest != msg.value_digest:
            return  # conflicting pre-prepare for the slot in this view
        state.value = msg.value
        state.value_digest = msg.value_digest
        state.view = msg.view
        if state.timer is None:
            state.timer = self.host.set_timer(
                self._current_timeout, self._on_timeout, msg.slot
            )
        signed = self.host.sign(msg.value_digest)
        state.votes_phase1[self.host.node_id] = signed
        # The pre-prepare is the primary's phase-1 vote (PBFT rule):
        # without it a single slow backup would block the 2f+1 quorum.
        state.votes_phase1.setdefault(src, None)
        self.host.multicast(
            self._others(),
            PbftPrepare(self.view, msg.slot, msg.value_digest, signed),
        )
        if self._obs_tracer is not None:
            t = self._obs_now()
            inst = self._obs_instance(msg.slot, msg.value, t)
            if t is not None:
                host = self.host
                start = self._obs_tracer.instance_start(
                    host.cluster_name, msg.slot
                )
                # Flight of the primary's pre-prepare to this replica.
                self._obs_tracer.completed(
                    "pbft.pre-prepare",
                    host.node_id,
                    start if start is not None else t,
                    t,
                    inst,
                )
            self._obs_phase_begin(msg.slot, "pbft.prepare", t, inst)
        self._maybe_prepared(msg.slot, state)

    def _on_prepare(self, msg: PbftPrepare, src: str) -> None:
        if msg.view > self.view:
            self._buffer_future(msg.view, msg, src)
            return
        if msg.view != self.view:
            return
        if not self.host.verify(msg.signed, msg.value_digest):
            return
        state = self._slot(msg.slot)
        if state.decided:
            return
        if state.value_digest is not None and state.value_digest != msg.value_digest:
            return
        state.votes_phase1[src] = msg.signed
        self._maybe_prepared(msg.slot, state)

    def _maybe_prepared(self, slot: Any, state: Any) -> None:
        # prepared = pre-prepare (value known) + 2f+1 prepare votes
        # (own vote included).  Send commit exactly once.
        if state.value is None or len(state.votes_phase1) < self.quorum:
            return
        if self.host.node_id in state.votes_phase2:
            return
        signed = self.host.sign(state.value_digest)
        state.votes_phase2[self.host.node_id] = signed
        self.host.multicast(
            self._others(),
            PbftCommit(self.view, slot, state.value_digest, signed),
        )
        if self._obs_tracer is not None:
            t = self._obs_now()
            self._obs_phase_end(slot, "pbft.prepare", t)
            self._obs_phase_begin(
                slot,
                "pbft.commit",
                t,
                self._obs_tracer.instance_sid(self.host.cluster_name, slot),
            )
        self._maybe_decide(slot, state)

    def _on_commit(self, msg: PbftCommit, src: str) -> None:
        if not self.host.verify(msg.signed, msg.value_digest):
            return
        state = self._slot(msg.slot)
        if state.decided:
            return
        if state.value_digest is not None and state.value_digest != msg.value_digest:
            return
        state.votes_phase2[src] = msg.signed
        self._maybe_decide(msg.slot, state)

    def _maybe_decide(self, slot: Any, state: Any) -> None:
        if state.decided or state.value is None:
            return
        if len(state.votes_phase2) < self.quorum:
            return
        self._current_timeout = self.timeout  # progress: reset backoff
        self._decide(slot, state)

    # ------------------------------------------------------------------
    # view change
    # ------------------------------------------------------------------
    def _on_timeout(self, slot: Any) -> None:
        state = self.slots.get(slot)
        if state is None or state.decided:
            return
        self.request_view_change()
        state.timer = self.host.set_timer(
            self._current_timeout, self._on_timeout, slot
        )

    def request_view_change(self) -> None:
        """Vote to replace the current primary (timeout fired)."""
        new_view = self.view + 1
        self._current_timeout = min(self._current_timeout * 2.0, self.timeout * 16)
        prepared = {
            slot: (state.view, state.value)
            for slot, state in self.slots.items()
            if not state.decided
            and state.value is not None
            and len(state.votes_phase1) >= self.quorum
        }
        signed = self.host.sign(f"view-change|{new_view}")
        msg = PbftViewChange(new_view, prepared, signed)
        bucket = self._view_changes.setdefault(new_view, {})
        bucket[self.host.node_id] = msg
        self.host.multicast(self._others(), msg)
        self._maybe_install_view(new_view)

    def _on_view_change_msg(self, msg: PbftViewChange, src: str) -> None:
        if msg.new_view <= self.view:
            return
        if msg.signed is None or not self.host.verify(
            msg.signed, f"view-change|{msg.new_view}"
        ):
            return
        bucket = self._view_changes.setdefault(msg.new_view, {})
        bucket[src] = msg
        # Join the view change once f+1 honest-looking votes exist
        # (PBFT's liveness rule avoids waiting for our own timeout).
        if (
            len(bucket) >= self.f + 1
            and self.host.node_id not in bucket
        ):
            self.request_view_change()
        self._maybe_install_view(msg.new_view)

    def _maybe_install_view(self, new_view: int) -> None:
        bucket = self._view_changes.get(new_view, {})
        if len(bucket) < self.quorum or new_view <= self.view:
            return
        new_primary = self.host.members[new_view % len(self.host.members)]
        if new_primary != self.host.node_id:
            return
        # New primary: install and re-propose every prepared slot.
        proposals: dict[Any, Any] = {}
        for vc in bucket.values():
            for slot, (view, value) in vc.prepared.items():
                current = proposals.get(slot)
                if current is None or view > current[0]:
                    proposals[slot] = (view, value)
        self._install_view(new_view)
        flat = {slot: value for slot, (_, value) in proposals.items()}
        self.host.multicast(self._others(), PbftNewView(new_view, flat))
        for slot, value in flat.items():
            self._adopt_proposal(slot, value, send_prepare=False)
        self.host.on_view_change(self.primary_id)

    def _on_new_view(self, msg: PbftNewView, src: str) -> None:
        if msg.new_view <= self.view:
            return
        expected_primary = self.host.members[
            msg.new_view % len(self.host.members)
        ]
        if src != expected_primary:
            return
        self._install_view(msg.new_view)
        for slot, value in msg.proposals.items():
            self._adopt_proposal(slot, value, send_prepare=True)
        self.host.on_view_change(self.primary_id)

    def _buffer_future(self, view: int, msg: Any, src: str) -> None:
        bucket = self._future_msgs.setdefault(view, [])
        if len(bucket) < 256:  # bound a malicious flood
            bucket.append((msg, src))

    def _install_view(self, new_view: int) -> None:
        self._obs_view_change()
        self.view = new_view
        for state in self.slots.values():
            if not state.decided:
                state.votes_phase1 = {}
                state.votes_phase2 = {}
                state.view = new_view
        for view in [v for v in self._view_changes if v <= new_view]:
            del self._view_changes[view]
        for view in [v for v in self._future_msgs if v < new_view]:
            del self._future_msgs[view]
        for msg, src in self._future_msgs.pop(new_view, ()):
            self.handle(msg, src)

    def _adopt_proposal(self, slot: Any, value: Any, send_prepare: bool) -> None:
        """Adopt a new-view proposal as if freshly pre-prepared."""
        state = self._slot(slot)
        if state.decided:
            return
        state.value = value
        state.value_digest = _value_digest(value)
        state.view = self.view
        signed = self.host.sign(state.value_digest)
        state.votes_phase1[self.host.node_id] = signed
        if state.timer is None:
            state.timer = self.host.set_timer(
                self._current_timeout, self._on_timeout, slot
            )
        if send_prepare:
            self.host.multicast(
                self._others(),
                PbftPrepare(self.view, slot, state.value_digest, signed),
            )
        self._maybe_prepared(slot, state)
