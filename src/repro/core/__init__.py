"""Qanaat system assembly: enterprises, clusters, nodes, clients.

:class:`~repro.core.deployment.Deployment` builds a full Qanaat network
from a :class:`~repro.core.config.DeploymentConfig`: per-enterprise
clusters of ordering/execution nodes (with the privacy firewall when
configured), the collection registry, clients, and the simulation
substrate underneath.
"""

from repro.core.config import ClusterInfo, DeploymentConfig
from repro.core.contracts import Contract, ContractRegistry, StoreView
from repro.core.deployment import Deployment
from repro.core.executor import ExecutionUnit

__all__ = [
    "DeploymentConfig",
    "ClusterInfo",
    "Deployment",
    "Contract",
    "ContractRegistry",
    "StoreView",
    "ExecutionUnit",
]
