"""Byzantine behavior injection for ordering nodes.

The safety arguments of §4.3.5/§4.4.5 are about what a *malicious*
primary can and cannot do: equivocate, assign invalid IDs, or sit on
messages.  Crash injection (``SimNode.crash``) cannot exercise those
paths, so this module subverts a live :class:`~repro.core.node.
ClusterNode` by wrapping its outbound edge — the node keeps running
the honest protocol code, but its messages are dropped, replaced, or
forked per destination on the way out.  That mirrors the paper's
adversary model: the attacker controls what a compromised node *sends*,
not what honest nodes accept.

Behaviors compose: ``subvert(node, first, second)`` pipes each outbound
message through both interceptors in order.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable

from repro.consensus.messages import CrossCommitMsg
from repro.consensus.pbft import PbftPrePrepare, _value_digest
from repro.core.node import ClusterNode


#: ``(dst, msg) -> msg | None`` — return the (possibly replaced)
#: message to deliver toward ``dst``, or ``None`` to drop it.
Interceptor = Callable[[str, Any], Any]


def subvert(node: ClusterNode, *interceptors: Interceptor) -> ClusterNode:
    """Route every outbound message of ``node`` through interceptors.

    Replaces the node's ``send``/``multicast`` with intercepted
    versions; multicast is decomposed into per-destination sends so an
    interceptor can treat destinations differently (the essence of
    equivocation).
    """
    if not interceptors:
        raise ValueError("subvert needs at least one interceptor")

    def send(dst: str, msg: Any) -> bool:
        for interceptor in interceptors:
            msg = interceptor(dst, msg)
            if msg is None:
                return False
        return node.network.send(node.node_id, dst, msg)

    def multicast(dsts: Iterable[str], msg: Any) -> int:
        return sum(1 for dst in dsts if send(dst, msg))

    node.send = send        # type: ignore[method-assign]
    node.multicast = multicast  # type: ignore[method-assign]
    return node


# ----------------------------------------------------------------------
# behaviors
# ----------------------------------------------------------------------
class EquivocatingPrimary:
    """Fork PBFT pre-prepares: ``victims`` receive a variant block.

    The variant carries the same transactions with their assigned IDs
    swapped between the first two entries — internally consistent
    (digest matches value), so victims accept and vote for it.  Honest
    quorum intersection must then ensure at most one of the two values
    decides, and every replica that decides ends with the same state.
    """

    def __init__(self, victims: Iterable[str]):
        self.victims = frozenset(victims)
        self.forked_slots: list[Any] = []
        self._variants: dict[str, PbftPrePrepare] = {}

    def __call__(self, dst: str, msg: Any) -> Any:
        if not isinstance(msg, PbftPrePrepare) or dst not in self.victims:
            return msg
        variant = self._variant(msg)
        if variant is None:
            return msg
        return variant

    def _variant(self, msg: PbftPrePrepare) -> PbftPrePrepare | None:
        cached = self._variants.get(msg.value_digest)
        if cached is not None:
            return cached
        otxs = getattr(msg.value, "otxs", None)
        if otxs is None or len(otxs) < 2:
            return None  # nothing to equivocate with
        first, second = otxs[0], otxs[1]
        swapped = (
            dataclasses.replace(first, ids=second.ids),
            dataclasses.replace(second, ids=first.ids),
        ) + tuple(otxs[2:])
        value = dataclasses.replace(msg.value, otxs=swapped)
        variant = PbftPrePrepare(
            msg.view, msg.slot, value, _value_digest(value)
        )
        self._variants[msg.value_digest] = variant
        self.forked_slots.append(msg.slot)
        return variant


class DigestTamperer:
    """Send pre-prepares whose digest does not match their value.

    Honest backups ignore the malformed proposal (§4.1), their timers
    fire, and the view change replaces this primary — the liveness path
    of §4.3.4.
    """

    def __init__(self) -> None:
        self.tampered = 0

    def __call__(self, dst: str, msg: Any) -> Any:
        if isinstance(msg, PbftPrePrepare):
            self.tampered += 1
            return PbftPrePrepare(
                msg.view, msg.slot, msg.value, "0" * 32
            )
        return msg


class MessageDropper:
    """Drop outbound messages matching ``types`` toward ``targets``.

    With ``types=(CrossCommitMsg,)`` on a coordinator primary this is
    the §4.3.4 scenario: "the (malicious) primary of the coordinator
    cluster maliciously has not sent commit messages to other clusters"
    — the involved clusters must recover through ``commit-query``.
    """

    def __init__(
        self,
        types: tuple[type, ...],
        targets: Iterable[str] | None = None,
    ):
        self.types = types
        self.targets = frozenset(targets) if targets is not None else None
        self.dropped = 0

    def __call__(self, dst: str, msg: Any) -> Any:
        if isinstance(msg, self.types) and (
            self.targets is None or dst in self.targets
        ):
            self.dropped += 1
            return None
        return msg


def drop_cross_commits_outside(node: ClusterNode) -> MessageDropper:
    """Convenience: a coordinator primary that never tells *other*
    clusters about commits (its own cluster still hears internal
    consensus, so it commits locally)."""
    own = set(node.cluster.members)
    outside = {
        member
        for info in node.directory.clusters.values()
        for member in info.members
        if member not in own
    }
    dropper = MessageDropper((CrossCommitMsg,), outside)
    subvert(node, dropper)
    return dropper


class SequenceSkewer:
    """A cross-cluster primary proposing IDs with skewed sequences.

    Installed on ``assign_ids`` rather than the network edge: the
    primary hands every other cluster IDs that are ``skew`` ahead of
    the legal next sequence.  Validators must reject them ("bad" /
    "deferred", §3.6) and the transaction must not commit anywhere —
    the agreement property, not liveness, is what survives.
    """

    def __init__(self, node: ClusterNode, skew: int = 1000):
        self.node = node
        self.skew = skew
        self.skewed_blocks = 0
        self._original = node.assign_ids
        node.assign_ids = self._assign  # type: ignore[method-assign]

    def _assign(self, block):
        ids = self._original(block)
        self.skewed_blocks += 1
        return tuple(
            dataclasses.replace(
                tx_id,
                alpha=dataclasses.replace(
                    tx_id.alpha, seq=tx_id.alpha.seq + self.skew
                ),
            )
            for tx_id in ids
        )
