"""Confidential intangible assets over data collections (§3.2 extension).

The paper's motivating case: "for intangible assets, e.g.,
cryptocurrencies, if enterprise A initiates a transaction in data
collection d_AB that consumes some coins, enterprise B needs to verify
the existence of the coins in data collection d_A" — *without* reading
d_A (B is not allowed to: AB ⊄ A).  The resolution is the classic
confidential-transaction pattern:

- A mints coins on its local collection ``d_A`` (plaintext amount plus
  a Pedersen commitment; only A's executors ever see the amount);
- when A brings a coin into a shared collection ``d_AB``, the *deposit*
  transaction carries the commitment with a proof of opening knowledge
  and a range proof — B's execution nodes verify existence and
  well-formedness without learning the amount;
- confidential transfers inside ``d_AB`` conserve value homomorphically
  (``∏ inputs == ∏ outputs``) with per-output range proofs, so no coin
  can be created or made negative invisibly;
- either party may later ``reveal`` a coin by opening its commitment.

Proof verification happens inside contract execution, which is
deterministic across replicas (proofs travel in the transaction args),
so ordinary Qanaat consensus suffices — exactly the paper's point that
the extension sits on top of the data/consensus layers.

Sharding note: a confidential transfer must see all of its input and
output coins, so asset operations are single-shard (all keys anchored
to the transaction's first key).  Cross-shard confidential transfers
would need cross-shard proof aggregation, which the paper leaves — as
do we — to future work.
"""

from __future__ import annotations

import random
from typing import Any, Iterable

from repro.core.contracts import Contract, StoreView
from repro.crypto.zkp import (
    Commitment,
    EqualityProof,
    OpeningProof,
    PedersenParams,
    RangeProof,
    balances,
    default_params,
    prove_equality,
    prove_opening,
    prove_range,
    verify_equality,
    verify_opening,
    verify_range,
)
from repro.datamodel.transaction import Operation
from repro.errors import AssetError, DataModelError


AMOUNT_BITS = 16  # coins hold 0 .. 65535 units


class ConfidentialAssetContract(Contract):
    """Collection logic for commitment-based assets."""

    name = "assets"

    def __init__(self, params: PedersenParams | None = None):
        self.params = params if params is not None else default_params()

    # ------------------------------------------------------------------
    def execute(self, view: StoreView, op: Operation) -> Any:
        handler = getattr(self, f"_op_{op.name}", None)
        if handler is None:
            raise DataModelError(f"assets contract has no operation {op.name!r}")
        try:
            return handler(view, *op.args)
        except AssetError as exc:
            # Rejected transfers abort cleanly: no partial writes.
            view.writes.clear()
            return f"<rejected: {exc}>"

    @staticmethod
    def _coin_key(coin_id: str) -> str:
        return f"coin:{coin_id}"

    def _load_coin(self, view: StoreView, coin_id: str) -> dict | None:
        return view.get(self._coin_key(coin_id))

    # ------------------------------------------------------------------
    # local-collection side: plaintext mint (visible only to the owner
    # enterprise's executors)
    # ------------------------------------------------------------------
    def _op_mint(self, view, coin_id, amount, commitment_c, owner):
        if self._load_coin(view, coin_id) is not None:
            raise AssetError(f"coin {coin_id!r} already minted")
        if not isinstance(amount, int) or amount < 0:
            raise AssetError("mint amount must be a non-negative integer")
        view.put(
            self._coin_key(coin_id),
            {"c": commitment_c, "owner": owner, "amount": amount, "spent": False},
            routing_key=coin_id,
        )
        return "minted"

    # ------------------------------------------------------------------
    # shared-collection side: commitments + proofs only
    # ------------------------------------------------------------------
    def _op_deposit(self, view, coin_id, commitment_c, opening, range_proof, owner):
        """Bring a committed coin into this collection.

        The counterparty's executors verify the proofs; nobody outside
        the owner enterprise learns the amount (§3.2's verify rule)."""
        if self._load_coin(view, coin_id) is not None:
            raise AssetError(f"coin {coin_id!r} already exists here")
        commitment = Commitment(commitment_c)
        if not isinstance(opening, OpeningProof) or not verify_opening(
            self.params, commitment, opening, context=coin_id
        ):
            raise AssetError("invalid opening proof")
        if not isinstance(range_proof, RangeProof) or not verify_range(
            self.params, commitment, range_proof, AMOUNT_BITS, context=coin_id
        ):
            raise AssetError("invalid range proof")
        view.put(
            self._coin_key(coin_id),
            {"c": commitment_c, "owner": owner, "spent": False},
            routing_key=coin_id,
        )
        return "deposited"

    def _op_transfer(self, view, owner, input_ids, outputs):
        """Spend ``input_ids`` into ``outputs`` (confidentially).

        ``outputs`` is a tuple of ``(coin_id, commitment_c, range_proof,
        recipient)``.  Conservation is the homomorphic product check;
        each output additionally proves its range so no negative-value
        "change" can balance an overdraw.
        """
        input_commitments: list[Commitment] = []
        for coin_id in input_ids:
            coin = self._load_coin(view, coin_id)
            if coin is None:
                raise AssetError(f"input coin {coin_id!r} does not exist")
            if coin["spent"]:
                raise AssetError(f"input coin {coin_id!r} already spent")
            if coin["owner"] != owner:
                raise AssetError(f"input coin {coin_id!r} not owned by {owner!r}")
            input_commitments.append(Commitment(coin["c"]))
        output_commitments: list[Commitment] = []
        for coin_id, commitment_c, range_proof, _recipient in outputs:
            if self._load_coin(view, coin_id) is not None:
                raise AssetError(f"output coin {coin_id!r} already exists")
            commitment = Commitment(commitment_c)
            if not isinstance(range_proof, RangeProof) or not verify_range(
                self.params, commitment, range_proof, AMOUNT_BITS, context=coin_id
            ):
                raise AssetError(f"invalid range proof for {coin_id!r}")
            output_commitments.append(commitment)
        if not balances(self.params, input_commitments, output_commitments):
            raise AssetError("inputs and outputs do not balance")
        first_input = input_ids[0]
        for coin_id in input_ids:
            coin = dict(self._load_coin(view, coin_id))
            coin["spent"] = True
            view.put(self._coin_key(coin_id), coin, routing_key=first_input)
        for coin_id, commitment_c, _range_proof, recipient in outputs:
            view.put(
                self._coin_key(coin_id),
                {"c": commitment_c, "owner": recipient, "spent": False},
                routing_key=first_input,
            )
        return "transferred"

    def _op_link(self, view, coin_id, attested_c, proof):
        """Bind this collection's coin to an attestation elsewhere.

        The §3.2 scenario end to end: A mints on ``d_A`` (commitment
        ``attested_c``), deposits a *re-randomized* commitment into
        ``d_AB``, and proves the two open to the same value.  B's
        executors verify equality without learning the amount — and
        without reading ``d_A``, which they may not."""
        coin = self._load_coin(view, coin_id)
        if coin is None:
            raise AssetError(f"coin {coin_id!r} does not exist")
        if not isinstance(proof, EqualityProof) or not verify_equality(
            self.params,
            Commitment(coin["c"]),
            Commitment(attested_c),
            proof,
            context=coin_id,
        ):
            raise AssetError("invalid equality proof")
        linked = dict(coin, linked=attested_c)
        view.put(self._coin_key(coin_id), linked, routing_key=coin_id)
        return "linked"

    def _op_reveal(self, view, coin_id, amount, blinding):
        """Open a commitment publicly (e.g. for settlement/audit)."""
        coin = self._load_coin(view, coin_id)
        if coin is None:
            raise AssetError(f"coin {coin_id!r} does not exist")
        expected = self.params.commit(amount, blinding)
        if expected.c != coin["c"]:
            raise AssetError("opening does not match the commitment")
        opened = dict(coin)
        opened["amount"] = amount
        view.put(self._coin_key(coin_id), opened, routing_key=coin_id)
        return amount

    def _op_exists(self, view, coin_id):
        """The §3.2 existence check: yes/no plus the commitment —
        never the amount."""
        coin = self._load_coin(view, coin_id)
        if coin is None:
            return {"exists": False}
        return {"exists": True, "c": coin["c"], "spent": coin["spent"]}


class AssetWallet:
    """Client-side key material: amounts and blinding factors.

    The wallet never leaves the client; collections only ever store
    commitments (plus plaintext on the owner's local collection, which
    only the owner's executors replicate).
    """

    def __init__(
        self,
        owner: str,
        params: PedersenParams | None = None,
        seed: int = 0,
    ):
        self.owner = owner
        self.params = params if params is not None else default_params()
        self.rng = random.Random(seed)
        self.coins: dict[str, tuple[int, int]] = {}  # coin_id -> (amount, blinding)

    # ------------------------------------------------------------------
    def track(self, coin_id: str, amount: int, blinding: int) -> None:
        """Adopt a coin (e.g. one received from a counterparty who
        shared the opening out of band)."""
        self.coins[coin_id] = (amount, blinding)

    def commitment(self, coin_id: str) -> Commitment:
        amount, blinding = self.coins[coin_id]
        return self.params.commit(amount, blinding)

    # ------------------------------------------------------------------
    # operation builders
    # ------------------------------------------------------------------
    def mint_op(self, coin_id: str, amount: int) -> Operation:
        if not 0 <= amount < (1 << AMOUNT_BITS):
            raise AssetError(f"amount outside [0, 2^{AMOUNT_BITS})")
        blinding = self.params.random_blinding(self.rng)
        self.coins[coin_id] = (amount, blinding)
        commitment = self.params.commit(amount, blinding)
        return Operation(
            "assets", "mint", (coin_id, amount, commitment.c, self.owner)
        )

    def deposit_op(self, coin_id: str) -> Operation:
        amount, blinding = self.coins[coin_id]
        commitment = self.params.commit(amount, blinding)
        opening = prove_opening(
            self.params, amount, blinding, self.rng, context=coin_id
        )
        range_proof = prove_range(
            self.params, amount, blinding, AMOUNT_BITS, self.rng, context=coin_id
        )
        return Operation(
            "assets",
            "deposit",
            (coin_id, commitment.c, opening, range_proof, self.owner),
        )

    def transfer_op(
        self,
        input_ids: Iterable[str],
        outputs: Iterable[tuple[str, int, str]],
    ) -> Operation:
        """Build a balanced confidential transfer.

        ``outputs`` is ``(coin_id, amount, recipient)`` triples; output
        amounts must sum to the input amounts, and the wallet arranges
        output blindings so the commitments balance homomorphically.
        """
        input_ids = tuple(input_ids)
        outputs = tuple(outputs)
        if not input_ids or not outputs:
            raise AssetError("transfer needs inputs and outputs")
        total_in = sum(self.coins[c][0] for c in input_ids)
        total_out = sum(amount for _, amount, _ in outputs)
        if total_in != total_out:
            raise AssetError(
                f"transfer does not balance: {total_in} in, {total_out} out"
            )
        blinding_in = sum(self.coins[c][1] for c in input_ids) % self.params.q
        out_blindings = [
            self.params.random_blinding(self.rng) for _ in outputs[:-1]
        ]
        out_blindings.append(
            (blinding_in - sum(out_blindings)) % self.params.q
        )
        built = []
        for (coin_id, amount, recipient), blinding in zip(outputs, out_blindings):
            if not 0 <= amount < (1 << AMOUNT_BITS):
                raise AssetError(f"amount outside [0, 2^{AMOUNT_BITS})")
            commitment = self.params.commit(amount, blinding)
            range_proof = prove_range(
                self.params, amount, blinding, AMOUNT_BITS, self.rng,
                context=coin_id,
            )
            built.append((coin_id, commitment.c, range_proof, recipient))
            self.coins[coin_id] = (amount, blinding)
        return Operation(
            "assets", "transfer", (self.owner, input_ids, tuple(built))
        )

    def rerandomize(self, coin_id: str) -> tuple[int, int]:
        """Fresh blinding for a coin; returns the *old* commitment and
        blinding so an equality link can still be proven.

        Re-randomizing before a deposit unlinks the shared-collection
        commitment from the local-collection attestation — observers of
        both cannot correlate them unless a ``link`` is published."""
        amount, old_blinding = self.coins[coin_id]
        old_c = self.params.commit(amount, old_blinding).c
        new_blinding = self.params.random_blinding(self.rng)
        self.coins[coin_id] = (amount, new_blinding)
        return old_c, old_blinding

    def link_op(
        self, coin_id: str, attested_c: int, attested_blinding: int
    ) -> Operation:
        """Prove this coin's current commitment equals ``attested_c``."""
        amount, blinding = self.coins[coin_id]
        if self.params.commit(amount, attested_blinding).c != attested_c:
            raise AssetError("attested commitment does not open with the "
                             "provided blinding")
        proof = prove_equality(
            self.params, amount, blinding, attested_blinding, self.rng,
            context=coin_id,
        )
        return Operation("assets", "link", (coin_id, attested_c, proof))

    def reveal_op(self, coin_id: str) -> Operation:
        amount, blinding = self.coins[coin_id]
        return Operation("assets", "reveal", (coin_id, amount, blinding))

    def exists_op(self, coin_id: str) -> Operation:
        return Operation("assets", "exists", (coin_id,))
