"""Clients: request submission, reply quorums, retransmission (§4).

A client signs requests, seals confidential operation bodies for the
execution nodes (ordering nodes never see plaintext, §3.4), and accepts
a result once it has the model-appropriate evidence: one reply from a
crash cluster, f+1 matching replies from a Byzantine cluster, or one
valid reply certificate through the privacy firewall.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.consensus.messages import ClientReply, ClientRequest, ReplyCertMsg
from repro.crypto.envelope import seal, unseal
from repro.crypto.hashing import digest
from repro.datamodel.transaction import Operation, Transaction
from repro.errors import CryptoError
from repro.sim.node import Actor

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Deployment


# Reply-matching digests interned by result value: a Byzantine-cluster
# client hashes the identical result f+1 times otherwise.  Keys go
# through hashing.typed_key so canonically-distinct values that
# compare equal (True/1/1.0) never share an entry; results typed_key
# cannot represent (dicts, nested containers) skip the table.
from repro.crypto.hashing import register_intern_cache, typed_key

_result_key_cache: dict[Any, str] = register_intern_cache({})
_RESULT_CACHE_MAX = 1 << 17


def _result_key(result: Any) -> str:
    key = typed_key(result)
    if key is None:
        return digest(["r", result])
    cached = _result_key_cache.get(key)
    if cached is None:
        cached = digest(["r", result])
        if len(_result_key_cache) >= _RESULT_CACHE_MAX:
            _result_key_cache.clear()
        _result_key_cache[key] = cached
    return cached


@dataclass
class _PendingRequest:
    tx: Transaction
    cluster: str
    sent_at: float
    results: dict[str, set[str]] = field(default_factory=dict)
    timer: Any = None
    done: bool = False


class Client(Actor):
    """A client of one enterprise."""

    def __init__(self, node_id: str, deployment: "Deployment", enterprise: str):
        super().__init__(node_id, deployment.sim, deployment.network)
        self.deployment = deployment
        self.enterprise = enterprise
        deployment.key_registry.enroll(node_id)
        self._timestamp = 0
        self._pending: dict[int, _PendingRequest] = {}
        self.completed: list[tuple[int, float, Any]] = []  # rid, latency, result
        self.received_leaks: list[Any] = []
        self._listeners: dict[int, list[Any]] = {}
        # Observability capture (None when off).
        from repro import obs

        self._obs_tracer = obs.TRACER
        self._obs_registry = obs.REGISTRY

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def make_transaction(
        self,
        scope,
        operation: Operation,
        keys: tuple[str, ...] = (),
        confidential: bool = True,
    ) -> Transaction:
        """Build a request; confidential bodies are sealed for executors."""
        self._timestamp += 1
        scope = frozenset(scope)
        sealed = None
        op = operation
        if confidential:
            audience = self.deployment.execution_identities(scope) | {
                self.node_id
            }
            sealed = seal(operation, audience)
            op = Operation(operation.contract, "confidential", ())
        return Transaction(
            client=self.node_id,
            timestamp=self._timestamp,
            operation=op,
            scope=scope,
            keys=keys,
            confidential=confidential,
            sealed_operation=sealed,
        )

    def submit(self, tx: Transaction) -> int:
        """Send a request toward its initiator cluster; returns the rid."""
        cluster = self.deployment.initiator_cluster(tx)
        pending = _PendingRequest(tx, cluster.name, self.sim.now)
        self._pending[tx.request_id] = pending
        primary = self.deployment.believed_primary(cluster.name)
        if self._obs_tracer is not None:
            self._obs_tracer.tx_begin(
                tx.request_id,
                self.node_id,
                self.sim.now,
                client=self.node_id,
                cluster=cluster.name,
                scope="+".join(sorted(tx.scope)),
            )
        self.send(primary, ClientRequest(tx))
        pending.timer = self.set_timer(
            self.deployment.config.request_timeout, self._retransmit, tx.request_id
        )
        return tx.request_id

    def _retransmit(self, rid: int) -> None:
        pending = self._pending.get(rid)
        if pending is None or pending.done:
            return
        # §4.3.4: multicast to every node of the cluster.
        members = self.deployment.directory.get(pending.cluster).members
        if self._obs_registry is not None:
            self._obs_registry.counter(
                "retransmissions", cluster=pending.cluster
            ).inc()
        self.multicast(members, ClientRequest(pending.tx, retransmission=True))
        pending.timer = self.set_timer(
            self.deployment.config.request_timeout * 2, self._retransmit, rid
        )

    # ------------------------------------------------------------------
    # replies
    # ------------------------------------------------------------------
    def on_message(self, msg: Any, src: str) -> None:
        if isinstance(msg, ClientReply):
            self._on_reply(msg, src)
        elif isinstance(msg, ReplyCertMsg):
            self._on_reply_cert(msg, src)
        elif isinstance(msg, dict) and msg.get("LEAK"):
            # A smuggled plaintext reached this client: the
            # confidentiality tests assert this list stays empty.
            self.received_leaks.append(msg)

    def _on_reply(self, msg: ClientReply, src: str) -> None:
        pending = self._pending.get(msg.request_id)
        if pending is None or pending.done:
            return
        result_key = _result_key(msg.result)
        voters = pending.results.setdefault(result_key, set())
        voters.add(src)
        if len(voters) >= self.deployment.config.reply_quorum:
            self._complete(pending, msg.request_id, msg.result)

    def _on_reply_cert(self, msg: ReplyCertMsg, src: str) -> None:
        pending = self._pending.get(msg.certificate.request_id)
        if pending is None or pending.done:
            return
        quorum = self.deployment.config.reply_cert_quorum
        if not msg.certificate.verify(self.deployment.key_registry, quorum):
            return
        result = msg.result
        try:
            result = unseal(msg.result, self.node_id)
        except (CryptoError, TypeError, AttributeError):
            pass
        self._complete(pending, msg.certificate.request_id, result)

    def _complete(self, pending: _PendingRequest, rid: int, result: Any) -> None:
        from repro.core.executor import is_error_result

        pending.done = True
        if pending.timer is not None:
            pending.timer.cancel()
        latency = self.sim.now - pending.sent_at
        self.completed.append((rid, latency, result))
        del self._pending[rid]
        if self._obs_tracer is not None:
            self._obs_tracer.tx_end(
                rid, self.sim.now, ok=not is_error_result(result)
            )
        self.deployment.metrics.record_completion(
            rid, pending.sent_at, latency, ok=not is_error_result(result)
        )
        for listener in self._listeners.pop(rid, ()):
            listener(rid, result, latency)

    # ------------------------------------------------------------------
    def on_complete(self, rid: int, listener: Any) -> None:
        """Call ``listener(rid, result, latency)`` when ``rid`` completes.

        The hook behind :class:`repro.api.futures.TxHandle`; a request
        that already completed fires the listener immediately.
        """
        if rid in self._pending:
            # Normal path: the request is in flight — no need to scan
            # history (handle-heavy runs register one listener per tx).
            self._listeners.setdefault(rid, []).append(listener)
            return
        for done_rid, latency, result in self.completed:
            if done_rid == rid:
                listener(rid, result, latency)
                return
        self._listeners.setdefault(rid, []).append(listener)

    def outstanding(self) -> int:
        return len(self._pending)
