"""Deployment configuration and the cluster directory."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.consensus.base import cluster_size, local_majority
from repro.errors import ConfigurationError
from repro.storage import BACKENDS


@dataclass
class DeploymentConfig:
    """Everything needed to build a Qanaat network.

    Defaults mirror the paper's evaluation setup (§5): 4 enterprises,
    4 shards each, ``f = g = h = 1``, Paxos/PBFT internal consensus.
    """

    enterprises: tuple[str, ...] = ("A", "B", "C", "D")
    shards_per_enterprise: int = 1
    failure_model: str = "crash"            # "crash" | "byzantine"
    use_firewall: bool = False               # privacy firewall (§3.4)
    #: Failure model of *execution* nodes when they are separated from
    #: ordering (Fig 4): "crash" is Fig 4(b) — g+1 crash-only executors,
    #: no firewall needed; "byzantine" is Fig 4(c)/(d) — 2g+1 executors
    #: behind filters.
    execution_model: str = "byzantine"
    #: Failure model of the filter nodes: "crash" is Fig 4(c) — one row
    #: of h+1 filters; "byzantine" is Fig 4(d) — h+1 rows of h+1.
    filter_model: str = "byzantine"
    cross_protocol: str = "flattened"        # "flattened" | "coordinator"
    f: int = 1                               # max faulty ordering nodes
    g: int = 1                               # max faulty execution nodes
    h: int = 1                               # max faulty filter nodes
    batch_size: int = 64
    batch_wait: float = 0.002                # seconds
    #: Adaptive batch sealing: seal immediately while the consensus
    #: pipeline has idle capacity, grow batches toward ``batch_size``
    #: (the cap) when the inflight window is full.  Requires
    #: ``max_inflight`` — occupancy is what drives the sealer.
    batch_adaptive: bool = False
    #: Pipelined instance window: at most this many undecided consensus
    #: instances (and uncommitted cross-cluster flows) per lane.  None
    #: keeps the seed's unbounded pipelining.
    max_inflight: int | None = None
    request_timeout: float = 0.5             # client retransmission
    consensus_timeout: float = 0.25          # intra-cluster timer
    cross_timeout: float = 0.75              # cross-cluster timer (>= 3 RTT)
    reduce_gamma: bool = False               # γ transitive reduction ablation
    checkpoint_interval: int = 0             # per-chain commits; 0 disables
    #: Durable storage (repro.storage): "memory" keeps the seed
    #: behavior; "wal" / "sqlite" journal committed effects so a
    #: replica can be rebuilt from disk after a crash.
    storage_backend: str = "memory"
    storage_dir: str | None = None           # on-disk root for durable backends
    seed: int = 0

    def __post_init__(self) -> None:
        if len(set(self.enterprises)) != len(self.enterprises):
            raise ConfigurationError("duplicate enterprise names")
        if self.failure_model not in ("crash", "byzantine"):
            raise ConfigurationError(
                f"unknown failure model {self.failure_model!r}"
            )
        if self.cross_protocol not in ("flattened", "coordinator"):
            raise ConfigurationError(
                f"unknown cross protocol {self.cross_protocol!r}"
            )
        if self.use_firewall and self.failure_model != "byzantine":
            raise ConfigurationError(
                "the privacy firewall applies to Byzantine clusters "
                "(crash-only clusters leak nothing by assumption, Fig 4a)"
            )
        if self.execution_model not in ("crash", "byzantine"):
            raise ConfigurationError(
                f"unknown execution model {self.execution_model!r}"
            )
        if self.filter_model not in ("crash", "byzantine"):
            raise ConfigurationError(
                f"unknown filter model {self.filter_model!r}"
            )
        if self.execution_model == "crash":
            if self.failure_model != "byzantine":
                raise ConfigurationError(
                    "crash-only execution separation (Fig 4b) applies to "
                    "Byzantine ordering nodes; crash clusters combine "
                    "ordering and execution (Fig 4a)"
                )
            if self.use_firewall:
                raise ConfigurationError(
                    "crash-only execution nodes need no privacy firewall "
                    "(Fig 4b: they reply to clients directly)"
                )
        if self.shards_per_enterprise < 1 or self.f < 1:
            raise ConfigurationError("shards and f must be >= 1")
        if self.checkpoint_interval < 0:
            raise ConfigurationError("checkpoint_interval must be >= 0")
        if self.max_inflight is not None and self.max_inflight < 1:
            raise ConfigurationError("max_inflight must be >= 1 when set")
        if self.batch_adaptive and self.max_inflight is None:
            raise ConfigurationError(
                "batch_adaptive sealing is driven by window occupancy; "
                "set max_inflight alongside it"
            )
        if self.storage_backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown storage backend {self.storage_backend!r}"
            )
        if self.storage_backend != "memory" and self.storage_dir is None:
            raise ConfigurationError(
                f"storage backend {self.storage_backend!r} needs a storage_dir"
            )

    @property
    def internal_protocol(self) -> str:
        """Pluggable internal consensus (§4.1): Paxos or PBFT."""
        return "paxos" if self.failure_model == "crash" else "pbft"

    @property
    def ordering_nodes_per_cluster(self) -> int:
        return cluster_size(self.failure_model, self.f)

    @property
    def separate_execution(self) -> bool:
        """Are ordering and execution on distinct nodes (Fig 4b/c/d)?"""
        if self.use_firewall:
            return True
        return self.failure_model == "byzantine" and self.execution_model == "crash"

    @property
    def execution_nodes_per_cluster(self) -> int:
        if not self.separate_execution:
            return 0
        # §3.4: "a simple majority of non-faulty nodes is sufficient to
        # mask Byzantine failure among execution nodes" — 2g+1; and
        # crash-only execution needs only g+1 (Fig 4b).
        return self.g + 1 if self.execution_model == "crash" else 2 * self.g + 1

    @property
    def filter_rows(self) -> int:
        """Rows of filters: h+1 of h+1 (Fig 4d) or one row of h+1 when
        filters are crash-only (Fig 4c)."""
        if not self.use_firewall:
            return 0
        return 1 if self.filter_model == "crash" else self.h + 1

    @property
    def reply_cert_quorum(self) -> int:
        """Matching execution signatures that certify one reply."""
        return 1 if self.execution_model == "crash" else self.g + 1

    @property
    def local_majority(self) -> int:
        return local_majority(self.failure_model, self.f)

    @property
    def reply_quorum(self) -> int:
        """Matching replies a client needs before accepting a result."""
        if self.separate_execution:
            return 1  # one valid reply certificate
        if self.failure_model == "crash":
            return 1
        return self.f + 1


@dataclass(frozen=True)
class ClusterInfo:
    """Directory entry for one cluster: who it is, who is in it."""

    name: str                 # e.g. "A1"
    enterprise: str
    shard: int
    members: tuple[str, ...]  # ordering-node ids
    failure_model: str
    f: int

    @property
    def local_majority(self) -> int:
        return local_majority(self.failure_model, self.f)


@dataclass
class ClusterDirectory:
    """Deployment-wide lookup of clusters and their membership."""

    clusters: dict[str, ClusterInfo] = field(default_factory=dict)
    _by_location: dict[tuple[str, int], str] = field(default_factory=dict)

    def add(self, info: ClusterInfo) -> None:
        self.clusters[info.name] = info
        self._by_location[(info.enterprise, info.shard)] = info.name

    def get(self, name: str) -> ClusterInfo:
        return self.clusters[name]

    def at(self, enterprise: str, shard: int) -> ClusterInfo:
        return self.clusters[self._by_location[(enterprise, shard)]]

    def members_of(self, name: str) -> tuple[str, ...]:
        return self.clusters[name].members

    def involved_clusters(
        self, scope: frozenset[str], shards: tuple[int, ...]
    ) -> list[ClusterInfo]:
        """Every cluster touching (scope, shards), deterministic order."""
        result = []
        for enterprise in sorted(scope):
            for shard in shards:
                result.append(self.at(enterprise, shard))
        return result
