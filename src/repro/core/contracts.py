"""Contract execution: per-collection business logic (§3.2).

Each data collection may carry its own application logic.  Contracts
execute against a :class:`StoreView` that pins reads to the versions
captured in the transaction's γ — the mechanism that makes execution
deterministic across replicas (§4.2) — and buffers writes, which the
execution unit applies atomically at version α.seq.
"""

from __future__ import annotations

from typing import Any

from repro.datamodel.collections import CollectionRegistry
from repro.datamodel.sharding import ShardingSchema
from repro.datamodel.store import MultiVersionStore
from repro.datamodel.transaction import Operation
from repro.datamodel.txid import TxId
from repro.errors import AccessViolation, DataModelError


class StoreView:
    """Deterministic read/write window for one transaction execution.

    Reads of the target collection see the state as of α.seq − 1 plus
    this transaction's own buffered writes; reads of order-dependent
    collections see exactly the version γ captured (0 — empty — if the
    collection had no commits when the ID was assigned).
    """

    def __init__(
        self,
        store: MultiVersionStore,
        registry: CollectionRegistry,
        schema: ShardingSchema,
        label: str,
        shard: int,
        tx_id: TxId,
    ):
        self._store = store
        self._registry = registry
        self._schema = schema
        self.label = label
        self.shard = shard
        self.tx_id = tx_id
        self._gamma = tx_id.gamma_map()
        self.writes: dict[str, Any] = {}

    def is_local(self, key: str) -> bool:
        """Does this key live in the shard this cluster maintains?"""
        return self._schema.shard_of(key) == self.shard

    def get(self, key: str, collection: str | None = None, default: Any = None) -> Any:
        """Read a key; ``collection`` defaults to the target collection."""
        if collection is None or collection == self.label:
            if key in self.writes:
                return self.writes[key]
            return self._store.read(
                self.label,
                key,
                shard=self.shard,
                at_version=self.tx_id.alpha.seq - 1,
                default=default,
            )
        return self._read_dependency(key, collection, default)

    def _read_dependency(self, key: str, collection: str, default: Any) -> Any:
        own = self._registry.get_by_label(self.label)
        target = self._registry.get_by_label(collection)
        if not own.can_read(target):
            raise AccessViolation(
                f"transactions on {self.label} cannot read {collection} "
                f"(scope is not a subset)"
            )
        pinned = self._gamma.get((collection, self.shard), 0)
        if pinned == 0:
            return default
        return self._store.read(
            collection, key, shard=self.shard, at_version=pinned, default=default
        )

    def put(self, key: str, value: Any, routing_key: str | None = None) -> None:
        """Buffer a write to the target collection (write rule, §3.2).

        ``routing_key`` names the entity that decides the shard when the
        storage key is a derived name (e.g. SmallBank's ``c:<account>``
        balance cells route by account).
        """
        if not self.is_local(routing_key if routing_key is not None else key):
            raise DataModelError(
                f"key {key!r} does not belong to shard {self.shard}"
            )
        self.writes[key] = value


class Contract:
    """Base class for collection business logic."""

    name = "contract"

    def execute(self, view: StoreView, op: Operation) -> Any:
        raise NotImplementedError


class KVContract(Contract):
    """Minimal key-value logic: the default collection contract."""

    name = "kv"

    def execute(self, view: StoreView, op: Operation) -> Any:
        if op.name == "set":
            key, value = op.args
            if view.is_local(key):
                view.put(key, value)
            return "ok"
        if op.name == "get":
            (key,) = op.args
            return view.get(key)
        if op.name == "incr":
            key, amount = op.args
            if view.is_local(key):
                view.put(key, (view.get(key, default=0)) + amount)
            return "ok"
        if op.name == "copy_from":
            # Read a record from an order-dependent collection and
            # materialize it locally (e.g. a supplier pulling order
            # data from the root collection, §3.2).
            key, source = op.args
            value = view.get(key, collection=source)
            if view.is_local(key):
                view.put(key, value)
            return value
        raise DataModelError(f"kv contract has no operation {op.name!r}")


class SmallBankContract(Contract):
    """The (modified) SmallBank benchmark of §5.

    Accounts hold a checking and a savings balance.  ``send_payment``
    is the write-heavy workhorse the paper uses; with sharding, each
    cluster applies the legs of the payment whose accounts live in its
    shard.
    """

    name = "smallbank"
    DEFAULT_BALANCE = 10_000

    def _checking(self, view: StoreView, account: str) -> int:
        return view.get(f"c:{account}", default=self.DEFAULT_BALANCE)

    def _savings(self, view: StoreView, account: str) -> int:
        return view.get(f"s:{account}", default=self.DEFAULT_BALANCE)

    def execute(self, view: StoreView, op: Operation) -> Any:
        handler = getattr(self, f"_op_{op.name}", None)
        if handler is None:
            raise DataModelError(f"smallbank has no operation {op.name!r}")
        return handler(view, *op.args)

    def _op_create_account(self, view, account, checking=0, savings=0):
        if view.is_local(account):
            view.put(f"c:{account}", checking, routing_key=account)
            view.put(f"s:{account}", savings, routing_key=account)
        return "ok"

    def _op_send_payment(self, view, src, dst, amount):
        if view.is_local(src):
            view.put(f"c:{src}", self._checking(view, src) - amount, routing_key=src)
        if view.is_local(dst):
            view.put(f"c:{dst}", self._checking(view, dst) + amount, routing_key=dst)
        return "ok"

    def _op_deposit_checking(self, view, account, amount):
        if view.is_local(account):
            view.put(
                f"c:{account}",
                self._checking(view, account) + amount,
                routing_key=account,
            )
        return "ok"

    def _op_transact_savings(self, view, account, amount):
        if view.is_local(account):
            view.put(
                f"s:{account}",
                self._savings(view, account) + amount,
                routing_key=account,
            )
        return "ok"

    def _op_write_check(self, view, account, amount):
        if view.is_local(account):
            total = self._checking(view, account) + self._savings(view, account)
            penalty = 1 if amount > total else 0
            view.put(
                f"c:{account}",
                self._checking(view, account) - amount - penalty,
                routing_key=account,
            )
        return "ok"

    def _op_amalgamate(self, view, src, dst):
        if view.is_local(src):
            moved = self._checking(view, src) + self._savings(view, src)
            view.put(f"c:{src}", 0, routing_key=src)
            view.put(f"s:{src}", 0, routing_key=src)
            view.put("amalgamated:" + src, moved, routing_key=src)
        if view.is_local(dst):
            view.put(f"c:{dst}", self._checking(view, dst), routing_key=dst)
        return "ok"

    def _op_balance(self, view, account):
        return self._checking(view, account) + self._savings(view, account)


class ContractRegistry:
    """Name -> contract instance; collections reference contracts by name."""

    def __init__(self) -> None:
        self._contracts: dict[str, Contract] = {}
        self.register(KVContract())
        self.register(SmallBankContract())
        # Imported here: assets builds on Contract/StoreView above.
        from repro.core.assets import ConfidentialAssetContract

        self.register(ConfidentialAssetContract())

    def register(self, contract: Contract) -> None:
        self._contracts[contract.name] = contract

    def get(self, name: str) -> Contract:
        try:
            return self._contracts[name]
        except KeyError:
            raise DataModelError(f"no contract named {name!r}") from None
