"""Deployment: build and drive a full Qanaat network.

Mirrors the paper's evaluation setup (§5): each enterprise owns one
cluster per shard; crash clusters have 2f+1 combined nodes, Byzantine
clusters either 3f+1 combined nodes (no firewall) or 3f+1 ordering +
2g+1 execution + (h+1)² filter nodes.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Any, Iterable

from repro.core.client import Client
from repro.core.config import ClusterDirectory, ClusterInfo, DeploymentConfig
from repro.core.contracts import ContractRegistry
from repro.core.node import ClusterNode
from repro.crypto.signatures import KeyRegistry
from repro.datamodel.collections import CollectionRegistry
from repro.datamodel.sharding import ShardingSchema
from repro.datamodel.transaction import Transaction
from repro.datamodel.workflow import CollaborationWorkflow
from repro.firewall.topology import FirewallTopology, build_firewall
from repro.sim.costs import CostModel
from repro.sim.kernel import Simulator
from repro.sim.latency import LatencyModel
from repro.sim.network import Network
from repro.storage import StorageBackend, make_backend


@dataclass
class Metrics:
    """Client-observed completions, for throughput/latency reporting.

    Completions are kept sorted by completion time so window queries
    (warmup/measure/drain, per-window sweeps) bisect instead of
    scanning — heavy-traffic runs issue many window queries over
    hundreds of thousands of completions, and a full scan per query
    goes quadratic across a sweep.
    """

    completions: list[tuple[int, float, float]] = field(default_factory=list)
    _done_at: list[float] = field(default_factory=list, repr=False)
    #: Completion times of requests whose reply reported a rejected
    #: execution (contract abort, unreadable sealed body) — kept
    #: sorted, like ``_done_at``, so window queries bisect.
    _abort_at: list[float] = field(default_factory=list, repr=False)

    def record_completion(
        self, rid: int, sent_at: float, latency: float, ok: bool = True
    ) -> None:
        done_at = sent_at + latency
        if not self._done_at or done_at >= self._done_at[-1]:
            # Simulated time is monotonic, so this is the hot path.
            self._done_at.append(done_at)
            self.completions.append((rid, sent_at, latency))
        else:
            index = bisect.bisect_right(self._done_at, done_at)
            self._done_at.insert(index, done_at)
            self.completions.insert(index, (rid, sent_at, latency))
        if not ok:
            bisect.insort(self._abort_at, done_at)

    def completed_between(self, start: float, end: float) -> list[float]:
        """Latencies of requests that *completed* within [start, end)."""
        lo = bisect.bisect_left(self._done_at, start)
        hi = bisect.bisect_left(self._done_at, end)
        return [latency for _, _, latency in self.completions[lo:hi]]

    def completed_count(self, start: float, end: float) -> int:
        """How many requests completed within [start, end) — O(log n)."""
        return bisect.bisect_left(self._done_at, end) - bisect.bisect_left(
            self._done_at, start
        )

    def aborted_count(self, start: float, end: float) -> int:
        """Completions within [start, end) whose execution was rejected."""
        return bisect.bisect_left(self._abort_at, end) - bisect.bisect_left(
            self._abort_at, start
        )

    def abort_rate(self, start: float, end: float) -> float:
        """Fraction of completions in [start, end) that aborted."""
        completed = self.completed_count(start, end)
        if completed == 0:
            return 0.0
        return self.aborted_count(start, end) / completed

    def throughput(self, start: float, end: float) -> float:
        window = end - start
        if window <= 0:
            return 0.0
        return self.completed_count(start, end) / window

    def mean_latency(self, start: float, end: float) -> float:
        window = self.completed_between(start, end)
        return sum(window) / len(window) if window else 0.0

    def percentile_latency(self, p: float, start: float, end: float) -> float:
        """The ``p``-th percentile latency (nearest-rank) of requests
        completing in [start, end); ``p`` in (0, 100]."""
        if not 0.0 < p <= 100.0:
            raise ValueError(f"percentile out of range: {p}")
        window = self.completed_between(start, end)
        if not window:
            return 0.0
        window.sort()
        rank = max(1, -(-len(window) * p // 100))  # ceil without floats
        return window[int(rank) - 1]


class Deployment:
    """A fully wired Qanaat network on a discrete-event simulator."""

    def __init__(
        self,
        config: DeploymentConfig,
        latency: LatencyModel | None = None,
        cost_model: CostModel | None = None,
        sim: Any = None,
        static_primaries: bool = False,
    ):
        self.config = config
        # ``sim`` is injectable so the shard-parallel builder can hand
        # in a PartitionedSimulator facade; every actor then shares it
        # as their clock/scheduler exactly like a plain Simulator.
        self.sim = Simulator() if sim is None else sim
        # Shard-parallel mode: client-side primary resolution must not
        # read another partition's live node state (see
        # believed_primary below).
        self.static_primaries = static_primaries
        self.network = Network(self.sim, latency=latency, seed=config.seed)
        self.key_registry = KeyRegistry()
        self.collections = CollectionRegistry()
        self.contracts = ContractRegistry()
        self.schema = ShardingSchema(config.shards_per_enterprise)
        self.directory = ClusterDirectory()
        self.metrics = Metrics()
        self.nodes: dict[str, ClusterNode] = {}
        self.firewalls: dict[str, FirewallTopology] = {}
        self.clients: list[Client] = []
        self.backends: dict[str, StorageBackend] = {}
        self._cost_model = cost_model
        self._build_clusters()

    def make_backend(self, node_id: str) -> StorageBackend | None:
        """One storage backend per stateful node, from the config knobs.

        ``memory`` returns None — the seed's no-journaling behavior.
        Journaling every commit into a dict nothing ever reads would
        tax every benchmark for no durability; tests that want to
        inspect journaled effects attach a
        :class:`~repro.storage.MemoryBackend` explicitly.
        """
        if self.config.storage_backend == "memory":
            return None
        backend = make_backend(
            self.config.storage_backend, self.config.storage_dir, node_id
        )
        self.backends[node_id] = backend
        return backend

    def close(self) -> None:
        """Release storage resources (file handles, connections)."""
        for backend in self.backends.values():
            backend.close()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build_clusters(self) -> None:
        config = self.config
        role = "ordering" if config.separate_execution else "combined"
        n_order = config.ordering_nodes_per_cluster
        for enterprise in config.enterprises:
            for shard in range(config.shards_per_enterprise):
                name = f"{enterprise}{shard + 1}"
                members = tuple(f"{name}.o{i}" for i in range(n_order))
                info = ClusterInfo(
                    name=name,
                    enterprise=enterprise,
                    shard=shard,
                    members=members,
                    failure_model=config.failure_model,
                    f=config.f,
                )
                self.directory.add(info)
        # Nodes are created after the full directory exists, so every
        # node can resolve every cluster.
        for info in self.directory.clusters.values():
            cluster_nodes = [
                ClusterNode(member, self, info, role, self._cost_model)
                for member in info.members
            ]
            for node in cluster_nodes:
                self.nodes[node.node_id] = node
            if config.separate_execution:
                firewall = build_firewall(
                    self, info.name, info.shard, info.members, self._cost_model
                )
                self.firewalls[info.name] = firewall
                for node in cluster_nodes:
                    node.firewall_row_below = firewall.bottom_row_ids

    # ------------------------------------------------------------------
    # workflows and collections
    # ------------------------------------------------------------------
    def create_workflow(
        self, name: str, enterprises: Iterable[str], contract: str = "kv"
    ) -> CollaborationWorkflow:
        return CollaborationWorkflow.create(
            name,
            enterprises,
            self.collections,
            contract=contract,
            num_shards=self.config.shards_per_enterprise,
        )

    # ------------------------------------------------------------------
    # clients and routing
    # ------------------------------------------------------------------
    def create_client(self, enterprise: str) -> Client:
        client = Client(
            f"client-{enterprise}-{len(self.clients)}", self, enterprise
        )
        self.clients.append(client)
        return client

    def initiator_cluster(self, tx: Transaction) -> ClusterInfo:
        """The designated initiator cluster for a transaction (§4.3.5:
        a designated coordinator per collection-shard avoids deadlocks).

        Internal transactions go to the owner enterprise; shared
        collections rotate the designated enterprise by shard so load
        spreads while staying deterministic.
        """
        shards = self.schema.shards_of(tx.keys)
        members = sorted(tx.scope)
        if len(members) == 1:
            enterprise = members[0]
        else:
            enterprise = members[shards[0] % len(members)]
        return self.directory.at(enterprise, shards[0])

    def believed_primary(self, cluster_name: str) -> str:
        members = self.directory.get(cluster_name).members
        if self.static_primaries:
            # Shard-parallel mode: asking a cluster node which primary
            # it currently believes in would read live state owned by
            # another partition's worker — a stale forked copy, and
            # different at different worker counts.  The view-0 primary
            # is members[0] (view % n with view 0), which matches the
            # live answer at client-submission time in the common case;
            # after a view change, the client's retransmission
            # multicast (§4.3.4) reaches the real primary regardless.
            return members[0]
        node = self.nodes.get(members[0])
        if node is not None:
            return node.believed_primary(cluster_name)
        return members[0]

    def execution_identities(self, scope: frozenset[str]) -> set[str]:
        """Who may see plaintext for a collection: execution (or
        combined) nodes of every involved cluster."""
        identities: set[str] = set()
        for enterprise in scope:
            for shard in range(self.config.shards_per_enterprise):
                info = self.directory.at(enterprise, shard)
                if self.config.separate_execution:
                    firewall = self.firewalls[info.name]
                    identities.update(
                        e.node_id for e in firewall.execution_nodes
                    )
                else:
                    identities.update(info.members)
        return identities

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def crash_node(self, node_id: str) -> None:
        self.network.node(node_id).crash()

    def primary_of(self, cluster_name: str) -> str:
        members = self.directory.get(cluster_name).members
        return self.nodes[members[0]].consensus.primary_id

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------
    def run(self, duration: float) -> None:
        """Advance simulated time by ``duration`` seconds."""
        self.sim.run(until=self.sim.now + duration)

    def run_until_quiescent(self, max_time: float = 30.0) -> None:
        self.sim.run(until=self.sim.now + max_time)

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    def executors_of(self, cluster_name: str) -> list[Any]:
        """Execution units holding the cluster's ledger/state."""
        if self.config.separate_execution:
            return [e.executor for e in self.firewalls[cluster_name].execution_nodes]
        info = self.directory.get(cluster_name)
        return [self.nodes[m].executor for m in info.members]

    def ledgers_of_enterprise(self, enterprise: str) -> list[Any]:
        ledgers = []
        for shard in range(self.config.shards_per_enterprise):
            info = self.directory.at(enterprise, shard)
            executor = self.executors_of(info.name)[0]
            ledgers.append(executor.ledger)
        return ledgers
