"""The transaction execution routine (§4.2).

One :class:`ExecutionUnit` lives on every node that executes
transactions: combined order+execute nodes in crash clusters, and the
dedicated execution nodes behind the privacy firewall in Byzantine
clusters.  It owns the node's DAG ledger and multi-versioned store and
enforces the paper's execution discipline:

- per collection-shard, transactions are appended and executed in
  strict α order (buffering out-of-order commit arrivals);
- execution of a transaction waits until every collection referenced
  in its γ has been applied up to the captured version, so all
  replicas read the same state;
- the last reply per client is remembered so retransmitted requests
  are answered without re-execution.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.core.contracts import ContractRegistry, StoreView
from repro.crypto.hashing import digest
from repro.datamodel.collections import CollectionRegistry
from repro.datamodel.sharding import ShardingSchema
from repro.datamodel.store import MultiVersionStore
from repro.datamodel.transaction import OrderedTransaction
from repro.datamodel.txid import TxId
from repro.errors import CryptoError, DataModelError
from repro.ledger.archive import ARCHIVE_NAMESPACE_PREFIX
from repro.ledger.certificate import CommitCertificate
from repro.ledger.dag import DagLedger
from repro.storage.base import (
    KIND_HEAD,
    LogRecord,
    StorageBackend,
    encode_head_payload,
    head_digest_of,
)


@dataclass
class _PendingCommit:
    otx: OrderedTransaction
    tx_id: TxId
    certificate: CommitCertificate | None
    reply_to_client: bool


#: Reply sentinels for rejected executions.  In-band because replies
#: are digested and quorum-matched as plain values; the futures API
#: (`repro.api`) maps them to ``TxStatus.ABORTED`` via
#: :func:`is_error_result`.
ERROR_PREFIX = "<error:"
UNREADABLE_RESULT = "<unreadable>"


def is_error_result(value: Any) -> bool:
    """Whether an execution result is a rejection sentinel."""
    return isinstance(value, str) and (
        value.startswith(ERROR_PREFIX) or value == UNREADABLE_RESULT
    )


@dataclass
class ExecutionResult:
    """What execution produced for one transaction."""

    otx: OrderedTransaction
    tx_id: TxId
    result: Any
    reply_to_client: bool


@dataclass
class RecoveryStats:
    """What :meth:`ExecutionUnit.recover` rebuilt from disk."""

    namespaces: int = 0
    snapshots_loaded: int = 0
    records_replayed: int = 0


class ExecutionUnit:
    """Ledger + store + contract execution for one node."""

    def __init__(
        self,
        identity: str,
        collections: CollectionRegistry,
        contracts: ContractRegistry,
        schema: ShardingSchema,
        shard: int,
        on_executed: Callable[[ExecutionResult], None] | None = None,
        backend: StorageBackend | None = None,
    ):
        self.identity = identity
        self.collections = collections
        self.contracts = contracts
        self.schema = schema
        self.shard = shard
        self.on_executed = on_executed
        self.backend = backend
        self.ledger = DagLedger(identity)
        self.store = MultiVersionStore(backend=backend)
        self.executed_count = 0
        self._buffer: dict[tuple[str, int], dict[int, _PendingCommit]] = {}
        self._appended: dict[tuple[str, int], int] = {}
        self._gamma_parked: dict[tuple[str, int], deque[_PendingCommit]] = {}
        self._executed_requests: dict[tuple[str, int], set[int]] = {}
        self._last_reply: dict[str, tuple[int, Any]] = {}

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def commit(
        self,
        otx: OrderedTransaction,
        tx_id: TxId,
        certificate: CommitCertificate | None = None,
        reply_to_client: bool = True,
    ) -> None:
        """Hand over a committed transaction; ordering may be ahead."""
        key = tx_id.alpha.key()
        if tx_id.alpha.seq <= self._appended.get(key, 0):
            return  # duplicate delivery
        pending = _PendingCommit(otx, tx_id, certificate, reply_to_client)
        self._buffer.setdefault(key, {})[tx_id.alpha.seq] = pending
        self._drain()

    def cached_reply(self, client: str, timestamp: int) -> Any | None:
        """The stored reply if this request was already executed (§4.2)."""
        entry = self._last_reply.get(client)
        if entry is not None and entry[0] >= timestamp:
            return entry[1]
        return None

    # ------------------------------------------------------------------
    # ordered append + gamma-gated execution
    # ------------------------------------------------------------------
    def _drain(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for key in list(self._buffer):
                if self._try_append_next(key):
                    progressed = True
            for key in list(self._gamma_parked):
                if self._try_execute_parked(key):
                    progressed = True

    def _try_append_next(self, key: tuple[str, int]) -> bool:
        waiting = self._buffer.get(key)
        if not waiting:
            return False
        next_seq = self._appended.get(key, 0) + 1
        pending = waiting.pop(next_seq, None)
        if pending is None:
            return False
        if not waiting:
            del self._buffer[key]
        record = self.ledger.append(
            pending.otx, pending.tx_id, pending.certificate
        )
        self._appended[key] = next_seq
        if self.backend is not None:
            # Journal the content head so recovery can re-anchor the
            # chain without re-running consensus.  The record carries a
            # transaction projection alongside the digest for the
            # off-replica analytics ingest; body_digest is interned, so
            # this adds no digest work to the hot path.
            tx = pending.otx.tx
            payload = encode_head_payload(
                self.ledger.content_head(*key),
                body=record.body_digest(),
                request_id=tx.request_id,
                client=tx.client,
                timestamp=tx.timestamp,
                keys=tuple(tx.keys),
                gamma=tuple(
                    (entry.label, entry.shard, entry.seq)
                    for entry in pending.tx_id.gamma
                ),
            )
            self.backend.append(
                key, LogRecord(next_seq, KIND_HEAD, None, payload)
            )
        parked = self._gamma_parked.get(key)
        if parked is None:
            parked = self._gamma_parked[key] = deque()
        parked.append(pending)
        self._try_execute_parked(key)
        return True

    def _try_execute_parked(self, key: tuple[str, int]) -> bool:
        # Execute parked transactions strictly in α order: the head of
        # the queue gates everything behind it.
        queue = self._gamma_parked.get(key)
        progressed = False
        while queue:
            if not self._gamma_satisfied(queue[0].tx_id):
                break
            self._execute(queue.popleft())
            progressed = True
        if queue is not None and not queue:
            del self._gamma_parked[key]
        return progressed

    def _gamma_satisfied(self, tx_id: TxId) -> bool:
        """All γ-captured versions applied locally (for collections this
        shard maintains)?"""
        for entry in tx_id.gamma:
            if self.store.applied_version(entry.label, entry.shard) < entry.seq:
                return False
        return True

    def _execute(self, pending: _PendingCommit) -> None:
        otx, tx_id = pending.otx, pending.tx_id
        label, shard = tx_id.alpha.label, tx_id.alpha.shard
        # Deterministic duplicate suppression: a request re-ordered after
        # a view change executes once.  The per-key history is identical
        # on every replica, so all replicas skip the same duplicates.
        executed = self._executed_requests.setdefault((label, shard), set())
        if otx.tx.request_id in executed:
            self.store.mark_version(label, shard, tx_id.alpha.seq)
            return
        executed.add(otx.tx.request_id)
        collection = self.collections.get_by_label(label)
        view = StoreView(
            self.store, self.collections, self.schema, label, shard, tx_id
        )
        operation = self._open_operation(otx)
        if operation is None:
            result = UNREADABLE_RESULT
        else:
            try:
                # Configuration metadata agreements (collection
                # creation, §3.6) are system-level: they run under the
                # config contract on whatever collection hosts the
                # agreement.  Everything else follows the collection's
                # own business logic (§3.2).
                contract_name = (
                    "config"
                    if operation.contract == "config"
                    else collection.contract
                )
                contract = self.contracts.get(contract_name)
                result = contract.execute(view, operation)
            except DataModelError as exc:
                result = f"{ERROR_PREFIX} {exc}>"
                view.writes.clear()
        if view.writes:
            for write_key, value in view.writes.items():
                self.store.write(label, shard, tx_id.alpha.seq, write_key, value)
        else:
            self.store.mark_version(label, shard, tx_id.alpha.seq)
        self.executed_count += 1
        self._last_reply[otx.tx.client] = (otx.tx.timestamp, result)
        if self.on_executed is not None:
            self.on_executed(
                ExecutionResult(otx, tx_id, result, pending.reply_to_client)
            )

    def _open_operation(self, otx: OrderedTransaction):
        """Unseal the operation if the request body is encrypted."""
        sealed = getattr(otx.tx, "sealed_operation", None)
        if sealed is None:
            return otx.tx.operation
        try:
            from repro.crypto.envelope import unseal

            return unseal(sealed, self.identity)
        except CryptoError:
            return None

    # ------------------------------------------------------------------
    # checkpoints / state transfer
    # ------------------------------------------------------------------
    def chain_snapshot(self, label: str, shard: int, seq: int) -> dict[str, Any]:
        """Deterministic snapshot of one chain at exactly version ``seq``.

        Contains the ledger head digest at ``seq`` and the latest value
        of every key in the chain's namespace as of ``seq``.  Identical
        on every replica that executed the chain up to ``seq``.
        """
        missing = object()
        state: dict[str, Any] = {}
        for key in self.store.keys(label, shard):
            value = self.store.read(
                label, key, shard=shard, at_version=seq, default=missing
            )
            if value is not missing:
                state[key] = value
        return {
            "head": self.ledger.record(label, shard, seq).content_digest(),
            "state": state,
        }

    def install_checkpoint(
        self, label: str, shard: int, seq: int, snapshot: dict[str, Any]
    ) -> None:
        """Adopt a verified checkpoint for a chain we have fallen behind
        on: anchor the ledger, load the state, discard superseded
        buffered work, and let anything after ``seq`` drain normally."""
        key = (label, shard)
        if seq <= self._appended.get(key, 0):
            return
        self.ledger.install_anchor(label, shard, seq, snapshot["head"])
        for store_key, value in snapshot["state"].items():
            self.store.write(label, shard, seq, store_key, value)
        self.store.mark_version(label, shard, seq)
        self._appended[key] = seq
        if self.backend is not None:
            # The transferred checkpoint is a durability frontier too:
            # persist it (head anchor included) so a crash right after
            # the transfer still recovers an anchored chain.
            self.backend.snapshot(key, seq, snapshot)
            self.backend.compact(key, seq)
        waiting = self._buffer.get(key)
        if waiting:
            for stale_seq in [s for s in waiting if s <= seq]:
                del waiting[stale_seq]
            if not waiting:
                del self._buffer[key]
        parked = self._gamma_parked.get(key)
        if parked:
            fresh = deque(p for p in parked if p.tx_id.alpha.seq > seq)
            if fresh:
                self._gamma_parked[key] = fresh
            else:
                del self._gamma_parked[key]
        self._drain()

    # ------------------------------------------------------------------
    # durability (see repro.storage)
    # ------------------------------------------------------------------
    def state_digest(self, label: str, shard: int = 0) -> str:
        """Digest of one chain's durable state: height, content head,
        and latest store values.

        Computable identically before a crash and after
        :meth:`recover` — individual records below the recovery anchor
        are gone, but the content head and materialized state survive.
        """
        return digest(
            [
                "durable-state",
                label,
                shard,
                self.ledger.height(label, shard),
                self.ledger.content_head(label, shard),
                self.store.latest_snapshot(label, shard),
            ]
        )

    def persist_checkpoint(self, label: str, shard: int, seq: int) -> None:
        """A stable checkpoint is the durability frontier (PBFT GC,
        Castro & Liskov §4.3): snapshot the chain at ``seq`` and drop
        the journal records the snapshot covers."""
        if self.backend is None:
            return
        key = (label, shard)
        if seq <= self.ledger.base(label, shard):
            return  # already anchored past this point (post-recovery)
        if (
            self._appended.get(key, 0) < seq
            or self.store.applied_version(label, shard) < seq
        ):
            return  # not executed that far yet; a later one will cover it
        self.backend.snapshot(key, seq, self.chain_snapshot(label, shard, seq))
        self.backend.compact(key, seq)

    @classmethod
    def recover(
        cls,
        identity: str,
        collections: CollectionRegistry,
        contracts: ContractRegistry,
        schema: ShardingSchema,
        shard: int,
        backend: StorageBackend,
        on_executed: Callable[[ExecutionResult], None] | None = None,
    ) -> tuple["ExecutionUnit", RecoveryStats]:
        """Rebuild an execution unit from a backend with zero
        re-consensus: replay each namespace's snapshot + log into the
        store, then re-anchor each ledger chain at its journaled
        content head."""
        unit = cls(identity, collections, contracts, schema, shard, on_executed)
        stats = RecoveryStats()
        for namespace in backend.namespaces():
            label, ns_shard = namespace
            if label.startswith(ARCHIVE_NAMESPACE_PREFIX):
                continue  # archived segments belong to the LedgerArchiver
            recovered = backend.load(namespace)
            stats.namespaces += 1
            if recovered.snapshot is not None:
                stats.snapshots_loaded += 1
            stats.records_replayed += unit.store.restore_namespace(
                label, ns_shard, recovered
            )
            head_seq, head_digest = 0, None
            snapshot = recovered.snapshot
            if snapshot is not None and isinstance(snapshot.payload, dict):
                head_digest = snapshot.payload.get("head")
                if head_digest is not None:
                    head_seq = snapshot.version
            for record in recovered.replay_records():
                if record.kind == KIND_HEAD and record.version > head_seq:
                    head_seq = record.version
                    head_digest = head_digest_of(record.value)
                    stats.records_replayed += 1
            if head_seq > 0 and head_digest is not None:
                unit.ledger.install_anchor(label, ns_shard, head_seq, head_digest)
                unit._appended[namespace] = head_seq
        unit.backend = backend
        unit.store.attach_backend(backend)
        return unit, stats

    # ------------------------------------------------------------------
    # introspection (tests, audits)
    # ------------------------------------------------------------------
    def applied_seq(self, label: str, shard: int | None = None) -> int:
        return self._appended.get((label, self.shard if shard is None else shard), 0)

    def backlog(self) -> int:
        """Committed-but-unexecuted transactions currently buffered."""
        buffered = sum(len(v) for v in self._buffer.values())
        parked = sum(len(q) for q in self._gamma_parked.values())
        return buffered + parked
