"""Cluster nodes: ordering (or combined order+execute) replicas.

A :class:`ClusterNode` hosts

- the pluggable internal consensus instance (Paxos or PBFT, §4.1),
- the batcher that groups client requests per collection-shard,
- one cross-cluster engine (coordinator-based or flattened),
- the in-order commit pipeline feeding either a local
  :class:`~repro.core.executor.ExecutionUnit` (crash / no-firewall
  clusters) or the privacy firewall (Byzantine clusters, §3.4),
- request bookkeeping for retransmissions and primary-failure handling.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable

from repro.consensus import make_internal_consensus
from repro.consensus.checkpoint import (
    CheckpointManager,
    CheckpointMsg,
    StableCheckpoint,
    StateRequest,
    StateResponse,
)
from repro.consensus.coordinator import CoordinatorEngine
from repro.consensus.cross_base import classify, final_otxs
from repro.consensus.flattened import FlattenedEngine
from repro.consensus.messages import (
    Block,
    ClientReply,
    ClientRequest,
    CommitQuery,
    CrossBlock,
    CrossCommitMsg,
    CrossOrderValue,
    ExecEntry,
    ExecOrder,
    FastCommit,
    FlatAccept,
    FlatCommit,
    Prepare,
    PreparedMsg,
    PrimaryAccept,
    Propose,
    ReplyCertMsg,
)
from repro.core.config import ClusterInfo, DeploymentConfig
from repro.core.executor import ExecutionResult, ExecutionUnit
from repro.crypto.hashing import digest as _digest
from repro.crypto.signatures import sign as crypto_sign
from repro.crypto.signatures import verify as crypto_verify
from repro.datamodel.sharding import ShardingSchema
from repro.datamodel.transaction import OrderedTransaction, Transaction
from repro.datamodel.txid import LocalPart, SequenceBook, TxId
from repro.errors import ConsistencyViolation
from repro.ledger.certificate import CommitCertificate
from repro.sim.node import SimNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Deployment


# Reply-payload digests are identical on every node replying to the
# same request (the digest is what makes f+1 replies "matching"), so
# they are interned across nodes.  Request ids are process-unique, so
# entries never collide; results are keyed through hashing.typed_key
# (True/1/1.0 encode differently but compare equal), and shapes it
# cannot represent skip the table.
from repro.crypto.hashing import register_intern_cache as _register_cache
from repro.crypto.hashing import typed_key as _typed_key

_reply_digest_cache: dict[tuple, str] = _register_cache({})
_REPLY_CACHE_MAX = 1 << 17


def _reply_payload_digest(rid: int, result: Any) -> str:
    result_key = _typed_key(result)
    if result_key is None:
        return _digest(["reply", rid, result])
    key = (rid, result_key)
    cached = _reply_digest_cache.get(key)
    if cached is None:
        cached = _digest(["reply", rid, result])
        if len(_reply_digest_cache) >= _REPLY_CACHE_MAX:
            _reply_digest_cache.clear()
        _reply_digest_cache[key] = cached
    return cached


class ClusterNode(SimNode):
    """One ordering (or combined) replica of one cluster."""

    def __init__(
        self,
        node_id: str,
        deployment: "Deployment",
        cluster: ClusterInfo,
        role: str,  # "combined" | "ordering"
        cost_model=None,
    ):
        super().__init__(node_id, deployment.sim, deployment.network, cost_model)
        self.deployment = deployment
        self.config: DeploymentConfig = deployment.config
        self.cluster = cluster
        self.role = role
        self.collections = deployment.collections
        self.directory = deployment.directory
        self.key_registry = deployment.key_registry
        self.schema: ShardingSchema = deployment.schema
        self.cross_timeout = self.config.cross_timeout
        deployment.key_registry.enroll(node_id)

        self.seqbook = SequenceBook(
            self.collections,
            shard=cluster.shard,
            reduce_gamma=self.config.reduce_gamma,
        )
        self.consensus = make_internal_consensus(
            self.config.internal_protocol,
            self,
            f=self.config.f,
            timeout=self.config.consensus_timeout,
        )
        if self.config.cross_protocol == "coordinator":
            self.engine: Any = CoordinatorEngine(self)
        else:
            self.engine = FlattenedEngine(self)
        self.executor: ExecutionUnit | None = None
        if role == "combined":
            self.executor = ExecutionUnit(
                identity=node_id,
                collections=self.collections,
                contracts=deployment.contracts,
                schema=self.schema,
                shard=cluster.shard,
                on_executed=self._on_executed,
                backend=deployment.make_backend(node_id),
            )
        # firewall wiring (set by the deployment when enabled)
        self.firewall_row_below: tuple[str, ...] = ()

        self.checkpoints: CheckpointManager | None = None
        if self.config.checkpoint_interval > 0:
            # Combined nodes checkpoint full state; pure ordering nodes
            # (firewall clusters) checkpoint their log position only —
            # state lives on the execution nodes (§3.4).
            has_state = self.executor is not None
            self.checkpoints = CheckpointManager(
                self,
                quorum=self.config.local_majority,
                interval=self.config.checkpoint_interval,
                snapshot_fn=self._chain_snapshot if has_state else None,
                install_fn=self._install_checkpoint,
                gc_fn=self._gc_consensus_log,
                on_stable_fn=self._persist_checkpoint if has_state else None,
            )

        # message-class -> bound handler, filled lazily by on_message
        # (engine handlers differ between the coordinator and flattened
        # families, so they are resolved per instance).
        self._dispatch: dict[type, Callable[[Any, str], Any]] = {}
        self._batch: dict[Any, list[Transaction]] = {}
        self._batch_timers: dict[Any, Any] = {}
        # Pipelined instance windows (config.max_inflight): what this
        # node has proposed and not yet seen decided/committed, per
        # lane — "local" tracks internal-consensus Block slots, "cross"
        # tracks engine flows by block id.  ``_stalled`` is an ordered
        # set (dict keyed by batch key) of lanes waiting for a slot.
        self._inflight_local: set[Any] = set()
        self._inflight_cross: set[int] = set()
        self._stalled: dict[Any, None] = {}
        self._pending_requests: dict[int, Transaction] = {}
        self._committed_requests: set[int] = set()
        self._request_reply: dict[int, ClientReply] = {}
        self._reply_certs: dict[int, ReplyCertMsg] = {}
        self._exec_orders: dict[int, ExecOrder] = {}
        self._commit_buffer: dict[tuple[str, int], dict[int, tuple]] = {}
        self._deferred: dict[tuple[tuple[str, int], int], list[Callable]] = {}
        self._believed_primary: dict[str, str] = {}
        self._guard_active: dict[int, tuple[str, frozenset]] = {}
        self._guard_queue: list[tuple[int, str, frozenset, Callable]] = []
        self.committed_tx_count = 0

        # Observability capture (all None when off).
        from repro import obs

        self._obs_tracer = obs.TRACER
        self._obs_probes = obs.PROBES
        self._obs_registry = obs.REGISTRY

    # ==================================================================
    # ConsensusHost interface
    # ==================================================================
    @property
    def cluster_name(self) -> str:
        return self.cluster.name

    @property
    def members(self) -> list[str]:
        return list(self.cluster.members)

    def sign(self, payload: Any):
        return crypto_sign(self.key_registry, self.node_id, payload)

    def verify(self, signed, payload: Any = None) -> bool:
        return crypto_verify(self.key_registry, signed, payload)

    def is_primary(self) -> bool:
        return self.consensus.is_primary()

    def internal_propose(self, slot: Any, value: Any) -> None:
        if self.consensus.is_primary():
            self.consensus.propose(slot, value)

    def on_decide(self, slot: Any, value: Any, certificate) -> None:
        if isinstance(value, Block):
            self._inflight_local.discard(slot)
            if self._stalled:
                self._drain_stalled()
            keys = set()
            for otx in value.otxs:
                keys.add(otx.primary_id.alpha.key())
                self._buffer_commit(otx, otx.primary_id, certificate, True)
            for key in keys:
                self._drain_commits(key)
        elif isinstance(value, CrossOrderValue):
            if value.stage == "order":
                self.engine.on_cross_ordered(value.block, certificate)
            else:
                self.engine.on_commit_decided(value.block, certificate)

    def on_view_change(self, new_primary: str) -> None:
        self._believed_primary[self.cluster_name] = new_primary
        # The window restarts with the view: slots proposed under the
        # old primary are either decided normally or redriven below, and
        # a window pinned full by a dead view must not gag the sealer.
        self._inflight_local.clear()
        self._inflight_cross.clear()
        if hasattr(self.engine, "on_view_change"):
            self.engine.on_view_change()
        if new_primary == self.node_id:
            self._redrive_pending()
        elif self._stalled:
            # Demoted mid-batch: stalled batches flush through the
            # non-primary path below, which relays to the new primary.
            self._drain_stalled()

    def suspect_primary(self) -> None:
        """Local-majority queries say our primary is faulty (§4.3.4)."""
        self.consensus.request_view_change()

    # ==================================================================
    # message dispatch
    # ==================================================================
    def on_message(self, msg: Any, src: str) -> None:
        # Hot path: one type-keyed dict probe per message instead of a
        # 12-branch isinstance chain.  Handlers bind lazily per message
        # class (the first message of each kind walks the classic chain
        # in _bind_handler, preserving its dispatch order).
        dispatch = self._dispatch
        handler = dispatch.get(msg.__class__)
        if handler is None:
            handler = dispatch[msg.__class__] = self._bind_handler(msg.__class__)
        handler(msg, src)

    def _bind_handler(self, cls: type) -> Callable[[Any, str], Any]:
        """Resolve the handler for one message class (the old
        ``isinstance`` chain, evaluated once per class)."""
        if issubclass(cls, ClientRequest):
            return self._on_client_request
        if issubclass(cls, Prepare):
            return self._on_coordinator_prepare
        if issubclass(cls, PreparedMsg):
            return self.engine.on_prepared
        if issubclass(cls, CrossCommitMsg):
            return self.engine.on_cross_commit
        if issubclass(cls, Propose):
            return self.engine.on_propose
        if issubclass(cls, PrimaryAccept):
            return self.engine.on_primary_accept
        if issubclass(cls, FlatAccept):
            return self.engine.on_flat_accept
        if issubclass(cls, FlatCommit):
            return self.engine.on_flat_commit
        if issubclass(cls, FastCommit):
            return self.engine.on_fast_commit
        if issubclass(cls, CommitQuery):
            return self.engine.on_commit_query
        if issubclass(cls, ReplyCertMsg):
            return self._on_reply_certificate
        if issubclass(cls, (CheckpointMsg, StateRequest, StateResponse)):
            return self._on_checkpoint_message
        return self.consensus.handle

    def _on_coordinator_prepare(self, msg: Prepare, src: str) -> None:
        self.observe_primary(msg.coordinator, src)
        self.engine.on_prepare(msg, src)

    def _on_checkpoint_message(self, msg: Any, src: str) -> None:
        if self.checkpoints is not None:
            self.checkpoints.handle(msg, src)

    # ==================================================================
    # client requests, batching, routing
    # ==================================================================
    def _on_client_request(self, msg: ClientRequest, src: str) -> None:
        tx = msg.tx
        rid = tx.request_id
        cached = self._request_reply.get(rid)
        if cached is not None:
            self.send(tx.client, cached)
            return
        if rid in self._reply_certs:
            self.send(tx.client, self._reply_certs[rid])
            return
        if rid in self._committed_requests:
            # Committed but not yet replied; with the firewall, re-push
            # the batch in case the original sender failed (§4.4.4).
            if msg.retransmission and rid in self._exec_orders:
                self.multicast(self.firewall_row_below, self._exec_orders[rid])
            return
        if not self.consensus.is_primary():
            self._pending_requests.setdefault(rid, tx)
            self.send(self.consensus.primary_id, msg)
            if msg.retransmission:
                # §4.3.4: a relayed-but-stuck request makes the node
                # suspect the primary.
                self.set_timer(
                    self.config.consensus_timeout * 3, self._check_progress, rid
                )
            return
        if rid in self._pending_requests:
            return  # already being handled by us
        self._pending_requests[rid] = tx
        self._route(tx)

    def _check_progress(self, rid: int) -> None:
        if rid in self._committed_requests or rid in self._request_reply:
            return
        self.suspect_primary()

    def _route(self, tx: Transaction) -> None:
        collection = self.collections.get(tx.scope)
        shards = self.schema.shards_of(tx.keys)
        protocol = classify(tx.scope, shards)
        if protocol == "local":
            key = ("local", collection.label, shards[0])
        else:
            key = (protocol, collection.label, shards)
        batch = self._batch.setdefault(key, [])
        batch.append(tx)
        if self.config.batch_adaptive:
            # Adaptive sealer: seal immediately while the inflight
            # window has idle capacity (1-tx batches at low load keep
            # latency minimal); once the window is full, _flush stalls
            # and the batch grows toward the batch_size cap until a
            # decide frees a slot (or the batch_wait backstop fires).
            self._flush(key)
        elif len(batch) >= self.config.batch_size:
            self._flush(key)
        elif key not in self._batch_timers:
            self._batch_timers[key] = self.set_timer(
                self.config.batch_wait, self._force_flush, key
            )

    def _window_full(self, key: Any) -> bool:
        window = self.config.max_inflight
        if window is None:
            return False
        lane = self._inflight_local if key[0] == "local" else self._inflight_cross
        return len(lane) >= window

    def _force_flush(self, key: Any) -> None:
        """batch_wait elapsed: seal even through a full window.  The
        backstop keeps batches from stranding if window accounting ever
        leaks a slot (and bounds queueing delay under backpressure)."""
        self._flush(key, force=True)

    def _flush(self, key: Any, force: bool = False) -> None:
        windowed = self.config.max_inflight is not None
        if windowed and not force and self._window_full(key):
            # Backpressure: the lane's window is full.  The batch stays
            # queued (and keeps growing); the next freed slot drains
            # it via _drain_stalled, with the batch_wait timer as the
            # liveness backstop.  The timer is NOT re-armed per arrival
            # — its deadline must not slide under continuous load.
            if self._batch.get(key):
                self._stalled[key] = None
                if key not in self._batch_timers:
                    self._batch_timers[key] = self.set_timer(
                        self.config.batch_wait, self._force_flush, key
                    )
            return
        timer = self._batch_timers.pop(key, None)
        if timer is not None:
            timer.cancel()
        if windowed:
            queued = self._batch.get(key)
            if not queued:
                self._batch.pop(key, None)
                self._stalled.pop(key, None)
                return
            # batch_size is a hard cap: a batch that outgrew it while
            # stalled seals in cap-sized chunks, remainder re-queued.
            txs = queued[: self.config.batch_size]
            del queued[: self.config.batch_size]
            if queued:
                self._stalled[key] = None
                self._batch_timers[key] = self.set_timer(
                    self.config.batch_wait, self._force_flush, key
                )
            else:
                self._batch.pop(key, None)
                self._stalled.pop(key, None)
        else:
            txs = self._batch.pop(key, None)
            if not txs:
                return
        if not self.consensus.is_primary():
            # A view change flipped primaryship mid-batch.  Relay the
            # half-sealed batch to the new primary instead of dropping
            # it: _redrive_pending only rescues these txs when *this*
            # node wins the new view, and clients would otherwise wait
            # a full retransmission timeout.
            primary = self.consensus.primary_id
            for tx in txs:
                self.send(primary, ClientRequest(tx, retransmission=True))
            return
        kind, label, shard_info = key
        collection = self.collections.get_by_label(label)
        if kind == "local":
            ids = self.seqbook.assign_block(collection, len(txs), shard_info)
            otxs = tuple(
                OrderedTransaction(tx, (tx_id,)) for tx, tx_id in zip(txs, ids)
            )
            slot = (label, shard_info, ids[0].alpha.seq)
            if windowed:
                self._inflight_local.add(slot)
            self.consensus.propose(slot, Block(otxs))
        else:
            block = CrossBlock(tuple(txs), label, shard_info, kind)
            if windowed:
                self._inflight_cross.add(block.block_id)
            self.engine.start(block)

    def _drain_stalled(self) -> None:
        """A window slot freed: seal stalled batches that now fit."""
        for key in list(self._stalled):
            if self._window_full(key):
                continue
            self._stalled.pop(key, None)
            self._flush(key)

    def _redrive_pending(self) -> None:
        """New primary: re-route requests that cannot be in flight."""
        # Half-sealed batches first: their txs are all in
        # _pending_requests and were never proposed, so folding them
        # into the uniform re-route below cannot double-propose (and
        # leaving them batched would double-append when _route runs).
        for timer in self._batch_timers.values():
            timer.cancel()
        self._batch_timers.clear()
        self._batch.clear()
        self._stalled.clear()
        in_flight: set[int] = set()
        for slot in self.consensus.undecided_slots():
            state = self.consensus.slots[slot]
            value = state.value
            if isinstance(value, Block):
                in_flight.update(o.tx.request_id for o in value.otxs)
            elif isinstance(value, CrossOrderValue):
                in_flight.update(t.request_id for t in value.block.txs)
        for state in self.engine.states.values():
            if not state.committed:
                in_flight.update(t.request_id for t in state.block.txs)
        for rid, tx in list(self._pending_requests.items()):
            if rid in self._committed_requests or rid in in_flight:
                continue
            self._route(tx)

    # ==================================================================
    # services used by the cross-cluster engines
    # ==================================================================
    def assign_ids(self, block: CrossBlock) -> tuple[TxId, ...]:
        collection = self.collections.get_by_label(block.label)
        return self.seqbook.assign_block(
            collection, len(block.txs), self.cluster.shard
        )

    def validate_ids(
        self, ids: tuple[TxId, ...], retry: Callable | None = None
    ) -> str:
        """Validate a proposed run of IDs against local state.

        Returns "ok", "deferred" (predecessor still in flight — retry
        is registered), "stale" (already committed), or "bad".
        """
        first = ids[0]
        key = first.alpha.key()
        committed = self.seqbook.last_committed(key)
        if first.alpha.seq <= committed:
            return "stale"
        if first.alpha.seq > committed + 1:
            if retry is not None:
                self.defer_until(key, first.alpha.seq, retry)
            return "deferred"
        try:
            self.seqbook.validate_chain(ids)
        except ConsistencyViolation:
            return "bad"
        return "ok"

    def defer_until(self, key: tuple[str, int], seq: int, fn: Callable) -> None:
        """Run ``fn`` once the collection-shard has committed seq-1."""
        self._deferred.setdefault((key, seq), []).append(fn)

    def believed_primary(self, cluster_name: str) -> str:
        if cluster_name == self.cluster_name:
            return self.consensus.primary_id
        default = self.directory.get(cluster_name).members[0]
        return self._believed_primary.get(cluster_name, default)

    def observe_primary(self, cluster_name: str, node_id: str) -> None:
        if node_id in self.directory.get(cluster_name).members:
            self._believed_primary[cluster_name] = node_id

    def commit_certificate_for(self, block: CrossBlock):
        state = self.engine.states.get(block.block_id)
        return getattr(state, "commit_cert", None) if state else None

    # ------------------------------------------------------------------
    # cross-shard concurrency guard (§4.3.2: no two concurrent blocks
    # sharing >= 2 shards)
    # ------------------------------------------------------------------
    def acquire_guard(self, block: CrossBlock, retry: Callable | None = None) -> bool:
        if len(block.shards) < 2:
            return True
        if block.block_id in self._guard_active:
            return True
        shard_set = frozenset(block.shards)
        for _, (label, shards) in self._guard_active.items():
            if label == block.label and len(shards & shard_set) >= 2:
                self._guard_queue.append(
                    (block.block_id, block.label, shard_set,
                     retry if retry is not None else (lambda: self.engine.start(block)))
                )
                if self._obs_tracer is not None:
                    # The block now waits on the cross-shard guard.
                    self._obs_tracer.phase_begin(
                        ("cross.lock", block.block_id, self.node_id),
                        "cross.lock",
                        self.node_id,
                        self.sim.now,
                        self._obs_tracer.tx_sid(block.block_id),
                    )
                return False
        self._guard_active[block.block_id] = (block.label, shard_set)
        return True

    def release_guard(self, block: CrossBlock) -> None:
        self._guard_active.pop(block.block_id, None)
        if not self._guard_queue:
            return
        still_queued = []
        for entry in self._guard_queue:
            block_id, label, shard_set, retry = entry
            conflict = any(
                active_label == label and len(active_shards & shard_set) >= 2
                for active_label, active_shards in self._guard_active.values()
            )
            if conflict:
                still_queued.append(entry)
            else:
                self._guard_active[block_id] = (label, shard_set)
                if self._obs_tracer is not None:
                    self._obs_tracer.phase_end(
                        ("cross.lock", block_id, self.node_id), self.sim.now
                    )
                retry()
        self._guard_queue = still_queued

    # ==================================================================
    # commit pipeline
    # ==================================================================
    def commit_cross(
        self, block: CrossBlock, certificate, reply_to_client: bool
    ) -> None:
        state = self.engine.states.get(block.block_id)
        if state is not None:
            state.commit_cert = certificate
        self._inflight_cross.discard(block.block_id)
        if self._stalled:
            self._drain_stalled()
        own_ids = block.ids_of(self._own_id_cluster(block))
        if own_ids is None:
            return
        keys = set()
        for otx, tx_id in zip(final_otxs(block), own_ids):
            keys.add(tx_id.alpha.key())
            self._buffer_commit(otx, tx_id, certificate, reply_to_client)
        for key in keys:
            self._drain_commits(key)

    def _own_id_cluster(self, block: CrossBlock) -> str:
        """Which assigning cluster's IDs apply to our shard?"""
        for name, ids in block.ids_by_cluster:
            if ids and ids[0].alpha.shard == self.cluster.shard:
                return name
        return self.cluster_name

    def _buffer_commit(
        self,
        otx: OrderedTransaction,
        tx_id: TxId,
        certificate,
        reply_to_client: bool,
    ) -> None:
        key = tx_id.alpha.key()
        committed = self.seqbook.last_committed(key)
        if tx_id.alpha.seq <= committed:
            return  # duplicate
        buffer = self._commit_buffer.get(key)
        if buffer is None:
            buffer = self._commit_buffer[key] = {}
        buffer[tx_id.alpha.seq] = (otx, tx_id, certificate, reply_to_client)

    def _drain_commits(self, key: tuple[str, int]) -> None:
        buffer = self._commit_buffer.get(key)
        exec_entries: list[ExecEntry] = []
        while buffer:
            next_seq = self.seqbook.last_committed(key) + 1
            entry = buffer.pop(next_seq, None)
            if entry is None:
                break
            otx, tx_id, certificate, reply_to_client = entry
            self.seqbook.commit(tx_id)
            if self._obs_probes is not None:
                self._obs_probes.commit_seq(self.node_id, key, tx_id.alpha.seq)
            if self.checkpoints is not None and self.executor is None:
                # Pure ordering nodes checkpoint at commit; combined
                # nodes checkpoint at execution (state is then exact).
                self.checkpoints.on_commit(key[0], key[1], tx_id.alpha.seq)
            self._committed_requests.add(otx.tx.request_id)
            self._pending_requests.pop(otx.tx.request_id, None)
            self.committed_tx_count += 1
            if self.executor is not None:
                self.charge(self.cost_model.execution_time(1))
                if self.executor.backend is not None and self.executor.backend.durable:
                    # The WAL write rides the commit path; its cost is
                    # modeled, not performed, inside the simulation.
                    self.charge(self.cost_model.journal_time(1))
                    if self._obs_registry is not None:
                        self._obs_registry.counter(
                            "journal_writes", cluster=self.cluster_name
                        ).inc()
                if self._obs_tracer is not None:
                    self._obs_tracer.point(
                        "execute",
                        self.node_id,
                        self.sim.now,
                        self._obs_tracer.tx_sid(otx.tx.request_id),
                        seq=tx_id.alpha.seq,
                    )
                self.executor.commit(otx, tx_id, certificate, reply_to_client)
            elif self.firewall_row_below:
                exec_entries.append(
                    ExecEntry(otx, tx_id, certificate, reply_to_client)
                )
            for fn in self._deferred.pop((key, next_seq + 1), ()):
                fn()
        if not buffer:
            self._commit_buffer.pop(key, None)
        if exec_entries:
            self._dispatch_to_firewall(exec_entries)

    def _dispatch_to_firewall(self, entries: list[ExecEntry]) -> None:
        """Forward committed transactions through the privacy firewall.

        All ordering nodes hold the batch (for retransmission after a
        primary failure) but only the primary and one designated backup
        push it through the filters, keeping filter load proportional
        to throughput rather than to cluster size.
        """
        order = ExecOrder(tuple(entries))
        for entry in entries:
            self._exec_orders[entry.otx.tx.request_id] = order
        designated_backup = next(
            (m for m in self.members if m != self.consensus.primary_id),
            None,
        )
        if self.node_id in (self.consensus.primary_id, designated_backup):
            self.multicast(self.firewall_row_below, order)

    # ==================================================================
    # checkpointing callbacks (see repro.consensus.checkpoint)
    # ==================================================================
    def _chain_snapshot(self, label: str, shard: int, seq: int):
        return self.executor.chain_snapshot(label, shard, seq)

    def _persist_checkpoint(self, label: str, shard: int, seq: int) -> None:
        """A stable checkpoint became the durability frontier: snapshot
        and compact the storage journal behind it."""
        self.executor.persist_checkpoint(label, shard, seq)

    def _install_checkpoint(self, checkpoint: StableCheckpoint, snapshot) -> None:
        """State transfer completed: fast-forward this replica."""
        label, shard, seq = checkpoint.label, checkpoint.shard, checkpoint.seq
        key = (label, shard)
        self.seqbook.observe([LocalPart(label, shard, seq)])
        buffer = self._commit_buffer.get(key)
        if buffer:
            for stale in [s for s in buffer if s <= seq]:
                otx = buffer.pop(stale)[0]
                self._committed_requests.add(otx.tx.request_id)
                self._pending_requests.pop(otx.tx.request_id, None)
            if not buffer:
                self._commit_buffer.pop(key, None)
        if self.executor is not None and snapshot is not None:
            self.executor.install_checkpoint(label, shard, seq, snapshot)
        # Commits that arrived while the transfer was in flight can now
        # drain in order behind the installed checkpoint.
        self._drain_commits(key)

    def _gc_consensus_log(self, label: str, shard, seq: int) -> None:
        """Release decided consensus slots covered by a stable
        checkpoint (PBFT log truncation)."""

        def keep(slot, value) -> bool:
            if not (isinstance(slot, tuple) and len(slot) == 3):
                return True
            slot_label, slot_shard, first = slot
            if slot_label != label or slot_shard != shard:
                return True
            if not isinstance(first, int):
                return True
            count = len(value.otxs) if hasattr(value, "otxs") else 1
            return first + count - 1 > seq

        self.consensus.garbage_collect(keep)

    # ==================================================================
    # replies
    # ==================================================================
    def _on_executed(self, result: ExecutionResult) -> None:
        if self.checkpoints is not None:
            alpha = result.tx_id.alpha
            self.checkpoints.on_commit(alpha.label, alpha.shard, alpha.seq)
        if not result.reply_to_client:
            return
        tx = result.otx.tx
        reply = ClientReply(
            request_id=tx.request_id,
            client=tx.client,
            timestamp=tx.timestamp,
            result=result.result,
            signed=self.sign(
                _reply_payload_digest(tx.request_id, result.result)
            ),
        )
        self._request_reply[tx.request_id] = reply
        if self.config.failure_model == "crash":
            # §4.2: with crash-only nodes the primary replies.
            if self.consensus.is_primary():
                self.send(tx.client, reply)
        else:
            # BFT without firewall: every node replies; the client
            # waits for f+1 matching results.
            self.send(tx.client, reply)

    def _on_reply_certificate(self, msg: ReplyCertMsg, src: str) -> None:
        """A reply certificate arrived from the firewall (§4.2) or — in
        Fig 4(b) — directly from a crash-only execution node."""
        quorum = self.config.reply_cert_quorum
        if not msg.certificate.verify(self.key_registry, quorum):
            return
        self._reply_certs[msg.certificate.request_id] = msg
        if self.consensus.is_primary():
            self.send(msg.client, msg)
