"""Runtime reconfiguration: collection creation and member replacement.

Two reconfiguration paths the paper describes but does not spell out
operationally:

1. **Collection creation** (§3.2/§3.6).  "When a subset of enterprises
   creates a data collection ... the sharding schema is agreed upon by
   all involved enterprises when a data collection is created, i.e.,
   the sharding schema is part of the configuration metadata."
   Agreement on configuration metadata is itself a transaction: the
   :class:`ConfigContract` runs on an existing collection whose scope
   contains every enterprise of the new collection (the root always
   qualifies), so the creation is ordered, replicated, and auditable
   like any other transaction.  Because collections are logical
   partitions, creation costs nothing beyond that one transaction
   (§3.2: "creating a data collection causes no overhead").

2. **Member replacement**.  Permissioned deployments rotate machines;
   a crashed ordering node is replaced by a fresh one under the same
   membership slot.  The replacement starts empty and catches up
   through the checkpoint/state-transfer machinery
   (:mod:`repro.consensus.checkpoint`), so enable
   ``checkpoint_interval`` on deployments that rotate members.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable

from repro.core.contracts import Contract, StoreView
from repro.core.node import ClusterNode
from repro.datamodel.collections import CollectionRegistry, scope_label
from repro.datamodel.transaction import Operation
from repro.errors import ConfigurationError, DataModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.client import Client
    from repro.core.deployment import Deployment


class ConfigContract(Contract):
    """Collection-creation agreement as ordered transactions.

    Executed on a collection replicated by every enterprise of the new
    collection's scope, so all of them order, learn, and record the
    same configuration metadata.
    """

    name = "config"

    def __init__(self, registry: CollectionRegistry):
        self.registry = registry

    def execute(self, view: StoreView, op: Operation):
        if op.name != "create_collection":
            raise DataModelError(f"config contract has no operation {op.name!r}")
        scope, contract, num_shards = op.args
        scope = frozenset(scope)
        own = self.registry.get_by_label(view.label)
        if not scope <= own.scope:
            raise DataModelError(
                f"collection {scope_label(scope)} cannot be agreed on "
                f"{view.label}: not all members are present"
            )
        collection = self.registry.create(
            scope, contract=contract, num_shards=num_shards
        )
        record_key = f"config:collection:{collection.label}"
        if view.get(record_key) is None and view.is_local(record_key):
            view.put(
                record_key,
                {
                    "scope": sorted(scope),
                    "contract": contract,
                    "num_shards": num_shards,  # the agreed sharding schema
                },
                routing_key=record_key,
            )
        return collection.label


class Reconfigurator:
    """Operator-side driver for runtime reconfiguration."""

    def __init__(self, deployment: "Deployment"):
        self.deployment = deployment
        deployment.contracts.register(ConfigContract(deployment.collections))
        self._swap_epoch = 0

    # ------------------------------------------------------------------
    # collection creation
    # ------------------------------------------------------------------
    def agreement_scope(self, scope: Iterable[str]) -> frozenset[str]:
        """The narrowest existing collection all members of ``scope``
        replicate — where the creation transaction must run."""
        scope = frozenset(scope)
        candidates = [
            c
            for c in self.deployment.collections
            if scope <= c.scope
        ]
        if not candidates:
            raise ConfigurationError(
                f"no existing collection covers {scope_label(scope)}; "
                f"create a workflow for these enterprises first"
            )
        return min(candidates, key=lambda c: (len(c.scope), c.label)).scope

    def create_collection(
        self,
        client: "Client",
        scope: Iterable[str],
        contract: str = "kv",
        num_shards: int | None = None,
    ) -> int:
        """Submit the creation transaction; returns the request id.

        The new collection exists once the transaction commits (run the
        deployment afterwards); until then submissions against it fail.
        """
        scope = frozenset(scope)
        if num_shards is None:
            num_shards = self.deployment.config.shards_per_enterprise
        agreement = self.agreement_scope(scope)
        anchor = f"config:collection:{scope_label(scope)}"
        op = Operation(
            "config", "create_collection",
            (tuple(sorted(scope)), contract, num_shards),
        )
        tx = client.make_transaction(
            agreement, op, keys=(anchor,), confidential=False
        )
        return client.submit(tx)

    # ------------------------------------------------------------------
    # member replacement
    # ------------------------------------------------------------------
    def swap_member(self, cluster_name: str, old_id: str) -> str:
        """Replace ``old_id`` with a fresh node in the same slot.

        The old node is fail-stopped; the replacement inherits the
        membership position (so primary rotation is unaffected), joins
        at the cluster's current view, and catches up through state
        transfer.  Refuses to swap the current primary — view-change it
        away first, as an operator would.
        """
        deployment = self.deployment
        info = deployment.directory.get(cluster_name)
        if old_id not in info.members:
            raise ConfigurationError(f"{old_id} is not a member of {cluster_name}")
        survivors = [
            deployment.nodes[m] for m in info.members if m != old_id
        ]
        current_view = max(n.consensus.view for n in survivors)
        current_primary = info.members[current_view % len(info.members)]
        if old_id == current_primary:
            raise ConfigurationError(
                f"{old_id} is the current primary of {cluster_name}; "
                f"replace it only after a view change"
            )
        self._swap_epoch += 1
        new_id = f"{cluster_name}.r{self._swap_epoch}"
        members = tuple(
            new_id if member == old_id else member for member in info.members
        )
        new_info = dataclasses.replace(info, members=members)
        deployment.directory.add(new_info)

        deployment.crash_node(old_id)
        role = "ordering" if deployment.config.use_firewall else "combined"
        node = ClusterNode(
            new_id, deployment, new_info, role, deployment._cost_model
        )
        node.consensus.view = current_view
        deployment.nodes[new_id] = node
        for survivor in survivors:
            survivor.cluster = new_info
        if deployment.config.use_firewall:
            firewall = deployment.firewalls[cluster_name]
            node.firewall_row_below = firewall.bottom_row_ids
            member_set = frozenset(members)
            for filter_node in firewall.rows[0]:
                filter_node.peers_below = members
                deployment.network.restrict_links(
                    filter_node.node_id,
                    set(members) | set(filter_node.peers_above),
                )
            for row in firewall.rows:
                for filter_node in row:
                    filter_node.ordering_members = member_set
            for exec_node in firewall.execution_nodes:
                exec_node.ordering_members = member_set
        return new_id
