"""Cryptographic primitives (simulated, deterministic).

The paper assumes standard digital signatures + PKI, threshold
signatures, and a collision-resistant hash D(.) (§3.1).  This package
provides simulation-grade equivalents: signatures are keyed digests
registered in a process-local PKI, so they are unforgeable *within the
simulation* (a Byzantine node cannot mint another node's signature
without its secret) while costing microseconds.  Protocol code treats
them exactly like real signatures.
"""

from repro.crypto.envelope import Envelope, seal, unseal
from repro.crypto.hashing import digest
from repro.crypto.secret_sharing import combine_shares, split_secret
from repro.crypto.signatures import (
    KeyRegistry,
    SignedMessage,
    sign,
    verify,
    verify_many,
)
from repro.crypto.threshold import (
    SignatureShare,
    ThresholdSignature,
    combine,
    sign_share,
    verify_threshold,
)

__all__ = [
    "digest",
    "KeyRegistry",
    "SignedMessage",
    "sign",
    "verify",
    "verify_many",
    "SignatureShare",
    "ThresholdSignature",
    "sign_share",
    "combine",
    "verify_threshold",
    "split_secret",
    "combine_shares",
    "Envelope",
    "seal",
    "unseal",
]
