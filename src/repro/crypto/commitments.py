"""Privacy-preserving record verification (the §3.2 extension).

The paper: transactions on ``d_X`` may need to *verify* records of
``d_Y`` with ``Y ⊂ X`` "in a privacy-preserving manner (i.e., without
reading the exact records)" — e.g. enterprise B checking that A's
coins exist in ``d_A`` before accepting them on ``d_AB`` — and notes
Qanaat "can be extended" with MPC or zero-knowledge proofs.

We implement the commitment half of that extension: an enterprise
publishes salted hash commitments of selected local records to a
shared collection; a counterparty later verifies an opened record
against the commitment without the publisher revealing anything at
commitment time.  (A real deployment would swap these for zk-SNARKs;
the protocol surface is identical.)
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import digest
from repro.errors import CryptoError


@dataclass(frozen=True)
class Commitment:
    """A binding, hiding commitment to (key, value)."""

    commitment: str

    def canonical_bytes(self) -> bytes:
        return b"commit|" + self.commitment.encode()


@dataclass(frozen=True)
class Opening:
    """The data needed to verify a commitment."""

    key: str
    value: Any
    salt: str


def commit_record(key: str, value: Any, salt: str) -> Commitment:
    """Commit to a record without revealing it."""
    if not salt:
        raise CryptoError("a commitment needs a non-empty salt")
    material = f"{salt}|{key}|{digest(value)}".encode()
    return Commitment(hashlib.sha256(material).hexdigest()[:32])


def verify_opening(commitment: Commitment, opening: Opening) -> bool:
    """Check an opened record against a previously published commitment."""
    try:
        expected = commit_record(opening.key, opening.value, opening.salt)
    except CryptoError:
        return False
    return expected.commitment == commitment.commitment


def verify_privately(
    store_read: Any, commitment_key: str, opening: Opening, collection: str
) -> bool:
    """Verify a counterparty's local record against the commitment it
    published on a shared collection.

    ``store_read(key, collection)`` is a read function over the shared
    collection (e.g. a bound :meth:`StoreView.get`).  Returns False if
    no commitment was published or the opening does not match.
    """
    stored = store_read(commitment_key, collection)
    if not isinstance(stored, Commitment):
        return False
    return verify_opening(stored, opening)
