"""Request/reply body encryption (simulated envelopes).

§3.4: "request and reply bodies must also be encrypted, thus, ordering
nodes cannot read them (while clients and execution nodes can)."  An
:class:`Envelope` hides a payload behind an audience set; ``unseal``
succeeds only for identities in the audience.  The confidentiality
tests track who ever held plaintext, so a leak is a test failure, not a
matter of opinion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import digest
from repro.errors import CryptoError


@dataclass(frozen=True)
class Envelope:
    """An encrypted payload addressed to an audience of identities."""

    ciphertext_digest: str
    audience: frozenset[str]
    _plaintext: Any = field(repr=False, compare=False, default=None)

    def canonical_bytes(self) -> bytes:
        members = ",".join(sorted(self.audience))
        return f"env|{self.ciphertext_digest}|{members}".encode()

    def tx_count(self) -> int:
        inner = self._plaintext
        return inner.tx_count() if hasattr(inner, "tx_count") else 1


def seal(payload: Any, audience: set[str] | frozenset[str]) -> Envelope:
    """Encrypt ``payload`` so only ``audience`` identities can open it."""
    return Envelope(digest(payload), frozenset(audience), payload)


def unseal(envelope: Envelope, identity: str) -> Any:
    """Decrypt; raises :class:`CryptoError` for outsiders."""
    if identity not in envelope.audience:
        raise CryptoError(
            f"{identity!r} is not in the audience of this envelope"
        )
    return envelope._plaintext
