"""Collision-resistant digest D(.) over arbitrary python values.

Values are canonicalized (sorted dict keys, type-tagged containers) so
that logically-equal messages hash identically across nodes.

The encoder is iterative and appends into one shared ``bytearray``:
profiling the scenario matrix showed the old recursive encoder spending
most of its time allocating and joining intermediate ``bytes`` objects
(hundreds of thousands per smoke run).  The byte *layout* is unchanged
— ``tests/test_canonical_encoding.py`` pins it against golden vectors
produced by the recursive implementation.

Module-level counters (:func:`counters` / :func:`reset_counters`)
instrument the hot path: every ``BENCH_*.json`` point records its
``digest_calls`` and ``encode_bytes`` so hot-path regressions show up
in the artifacts (and are pinned by CI for a fixed seed).
"""

from __future__ import annotations

import hashlib
from typing import Any

#: Builtin types the canonical encoding covers directly.  An object
#: carrying ``canonical_bytes`` is only treated as opaque when it is
#: not also one of these (matching the old dispatch order, where the
#: builtin checks ran first).
_BUILTIN_TYPES = (bool, int, float, str, bytes, list, tuple, set, frozenset, dict)

#: Sentinels for literal emissions on the encoder's work stack.  They
#: can never collide with encodable values.
_COMMA = object()
_CLOSE = object()

# Instrumentation counters (process-local, monotonically increasing).
_digest_calls = 0
_encode_bytes = 0
_verify_calls = 0


def count_verify(n: int = 1) -> None:
    """Record ``n`` signature verifications.

    The counter lives here (not in :mod:`repro.crypto.signatures`) so
    :func:`counters` exposes every hot-path counter from one place and
    the perf plumbing — ``perf_block``, shard-parallel worker merging —
    needs no extra import edges.
    """
    global _verify_calls
    _verify_calls += n


def encode_into(value: Any, out: bytearray) -> None:
    """Append the canonical encoding of ``value`` to ``out``.

    Iterative: containers push their elements (and literal separators)
    on an explicit work stack instead of recursing, and everything is
    appended straight into ``out`` — no per-node intermediate objects.
    Sets and dicts are the one exception: their elements must be
    encoded to standalone byte strings so they can be sorted, exactly
    like the recursive encoder sorted them.
    """
    stack: list[Any] = [value]
    pop = stack.pop
    push = stack.append
    while stack:
        v = pop()
        if v is _COMMA:
            out += b","
            continue
        if v is _CLOSE:
            out += b")"
            continue
        cls = v.__class__
        if cls is str:
            out += b"S"
            out += v.encode("utf-8")
        elif cls is int:
            out += b"I%d" % v
        elif cls is bool:
            out += b"B1" if v else b"B0"
        elif v is None:
            out += b"N"
        elif cls is list or cls is tuple:
            out += b"L("
            push(_CLOSE)
            for elem in reversed(v):
                push(_COMMA)
                push(elem)
        elif cls is bytes:
            out += b"Y"
            out += v
        elif cls is float:
            out += b"F"
            out += repr(v).encode()
        elif cls is dict:
            _dict_into(v, out)
        elif cls is set or cls is frozenset:
            _set_into(v, out)
        else:
            cb = getattr(v, "canonical_bytes", None)
            if cb is not None and not isinstance(v, _BUILTIN_TYPES):
                out += b"O"
                out += cb()
            else:
                _subclass_into(v, out)


def _set_into(value: Any, out: bytearray) -> None:
    # E( sorted full encodings joined by "," )
    parts = []
    for elem in value:
        tmp = bytearray()
        encode_into(elem, tmp)
        parts.append(bytes(tmp))
    parts.sort()
    out += b"E("
    out += b",".join(parts)
    out += b")"


def _dict_into(value: dict, out: bytearray) -> None:
    # D( k:v, pairs sorted by (encoded key, encoded value) )
    items = []
    for k, v in value.items():
        kb = bytearray()
        encode_into(k, kb)
        vb = bytearray()
        encode_into(v, vb)
        items.append((bytes(kb), bytes(vb)))
    items.sort()
    out += b"D("
    for kb, vb in items:
        out += kb
        out += b":"
        out += vb
        out += b","
    out += b")"


def _subclass_into(value: Any, out: bytearray) -> None:
    """Subclasses of builtins (and the error case), in the exact
    dispatch order of the classic recursive encoder."""
    if isinstance(value, bool):
        out += b"B1" if value else b"B0"
    elif isinstance(value, int):
        out += b"I%d" % value
    elif isinstance(value, float):
        out += b"F"
        out += repr(value).encode()
    elif isinstance(value, str):
        out += b"S"
        out += value.encode("utf-8")
    elif isinstance(value, bytes):
        out += b"Y"
        out += value
    elif isinstance(value, (list, tuple)):
        out += b"L("
        for elem in value:
            encode_into(elem, out)
            out += b","
        out += b")"
    elif isinstance(value, (set, frozenset)):
        _set_into(value, out)
    elif isinstance(value, dict):
        _dict_into(value, out)
    elif hasattr(value, "canonical_bytes"):
        out += b"O"
        out += value.canonical_bytes()
    else:
        raise TypeError(f"cannot canonicalize {type(value).__name__}")


def _canonical(value: Any) -> bytes:
    """The full canonical encoding as ``bytes`` (compatibility surface
    for tests and tooling; hot callers use :func:`encode_into`)."""
    buf = bytearray()
    encode_into(value, buf)
    return bytes(buf)


# The shared encode buffer.  ``digest`` reuses it across calls instead
# of allocating per call; the busy flag keeps a reentrant digest (a
# ``canonical_bytes`` implementation that itself digests) off the
# shared buffer.
_shared_buf = bytearray()
_buf_busy = False


def digest(value: Any) -> str:
    """Hex digest of a canonicalized value (16 bytes of SHA-256).

    Hot callers memoize: frozen transaction/block types cache their
    ``canonical_bytes`` (see :class:`Canonical`), consensus caches
    value digests via :func:`value_digest`, and the cross-cluster
    engines intern their vote-payload digests — because every
    verification site re-hashes the same immutable payload otherwise.
    """
    global _digest_calls, _encode_bytes, _buf_busy
    _digest_calls += 1
    if _buf_busy:
        buf = bytearray()
        _encode_value(value, buf)
        _encode_bytes += len(buf)
        return hashlib.sha256(buf).hexdigest()[:32]
    _buf_busy = True
    buf = _shared_buf
    try:
        _encode_value(value, buf)
        _encode_bytes += len(buf)
        return hashlib.sha256(buf).hexdigest()[:32]
    finally:
        del buf[:]
        _buf_busy = False


def _encode_value(value: Any, buf: bytearray) -> None:
    """Encode one digest preimage, fast-pathing the dominant shape:
    a flat list/tuple of str/bytes/int (record digests, vote payloads,
    reply keys).  Falls back to the generic encoder on the first
    element that needs it."""
    cls = value.__class__
    if cls is list or cls is tuple:
        buf += b"L("
        for v in value:
            c = v.__class__
            if c is str:
                buf += b"S"
                buf += v.encode("utf-8")
            elif c is bytes:
                buf += b"Y"
                buf += v
            elif c is int:
                buf += b"I%d" % v
            else:
                del buf[:]
                encode_into(value, buf)
                return
            buf += b","
        buf += b")"
    else:
        encode_into(value, buf)


def value_digest(value: Any) -> str:
    """Digest of a consensus value, memoized on the value object.

    The digest is recomputed at proposal, at every backup's
    pre-prepare check, and at decide time — all over the same frozen
    value, so it is cached on the instance (``object.__setattr__``
    bypasses frozen-dataclass immutability, which only guards the
    declared fields).  Values without ``canonical_bytes`` (plain test
    payloads) are hashed directly and never cached.
    """
    if not hasattr(value, "canonical_bytes"):
        return digest(value)
    cached = getattr(value, "_value_digest_cache", None)
    if cached is None:
        cached = digest(value.canonical_bytes())
        try:
            object.__setattr__(value, "_value_digest_cache", cached)
        except (AttributeError, TypeError):
            pass  # __slots__ or C-level objects: just recompute
    return cached


class Canonical:
    """Mixin for frozen message/transaction dataclasses: memoized
    ``canonical_bytes`` (and, through :func:`value_digest`, a memoized
    digest).

    Subclasses implement :meth:`_canonical_bytes` — the uncached
    encoding — and every sign/verify/cost site that re-encodes the
    same immutable payload gets the cached bytes instead.  The cache
    is written with ``object.__setattr__`` (frozen dataclasses only
    guard their declared fields), which is safe precisely because all
    declared fields are frozen: the bytes can never go stale.
    """

    __slots__ = ()

    def _canonical_bytes(self) -> bytes:
        raise NotImplementedError(
            f"{type(self).__name__} must implement _canonical_bytes()"
        )

    def canonical_bytes(self) -> bytes:
        cached = getattr(self, "_canonical_cache", None)
        if cached is None:
            cached = self._canonical_bytes()
            try:
                object.__setattr__(self, "_canonical_cache", cached)
            except (AttributeError, TypeError):
                pass  # __slots__ subclasses: just recompute
        return cached


#: Interning tables registered by hot-path modules (vote payloads,
#: ledger body/content digests, reply digests).  Their keys hold live
#: object graphs, so the bench executor clears them between points —
#: entries never hit across points anyway (keys embed process-unique
#: request ids), and clearing keeps a long matrix run's memory flat.
_INTERN_CACHES: list[dict] = []


def register_intern_cache(cache: dict) -> dict:
    """Register an interning table for :func:`clear_intern_caches`."""
    _INTERN_CACHES.append(cache)
    return cache


def clear_intern_caches() -> None:
    """Drop every registered interning table (bench point teardown)."""
    for cache in _INTERN_CACHES:
        cache.clear()


def typed_key(value: Any):
    """A cache key that distinguishes values whose canonical encodings
    differ even though they compare equal (``True == 1 == 1.0`` but
    ``B1``/``I1``/``F1.0`` digest differently).  Returns None for
    shapes that cannot be keyed safely (unhashable, or containers
    whose members could alias) — callers skip interning then."""
    cls = value.__class__
    if cls is tuple:
        parts = []
        for item in value:
            key = typed_key(item)
            if key is None:
                return None
            parts.append(key)
        return ("t", tuple(parts))
    if cls in (str, bytes, bool, int, float) or value is None:
        return (cls, value)
    return None


def counters() -> dict[str, int]:
    """Snapshot of the hot-path instrumentation counters.

    ``digest_calls`` counts :func:`digest` invocations;
    ``encode_bytes`` totals the canonical bytes those calls encoded;
    ``verify_calls`` counts individual signature verifications (see
    :func:`repro.crypto.signatures.verify_many` for how certificates
    amortize them).  All are process-local and monotonic — benchmark
    points report the *delta* across their run (see ``perf`` blocks in
    ``BENCH_*.json``).
    """
    return {
        "digest_calls": _digest_calls,
        "encode_bytes": _encode_bytes,
        "verify_calls": _verify_calls,
    }


def reset_counters() -> None:
    """Zero the instrumentation counters (tests / standalone tools)."""
    global _digest_calls, _encode_bytes, _verify_calls
    _digest_calls = 0
    _encode_bytes = 0
    _verify_calls = 0
