"""Collision-resistant digest D(.) over arbitrary python values.

Values are canonicalized (sorted dict keys, type-tagged containers) so
that logically-equal messages hash identically across nodes.
"""

from __future__ import annotations

import hashlib
from typing import Any


def _canonical(value: Any) -> bytes:
    if value is None:
        return b"N"
    if isinstance(value, bool):
        return b"B1" if value else b"B0"
    if isinstance(value, int):
        return b"I" + str(value).encode()
    if isinstance(value, float):
        return b"F" + repr(value).encode()
    if isinstance(value, str):
        return b"S" + value.encode("utf-8")
    if isinstance(value, bytes):
        return b"Y" + value
    if isinstance(value, (list, tuple)):
        parts = b"".join(_canonical(v) + b"," for v in value)
        return b"L(" + parts + b")"
    if isinstance(value, (set, frozenset)):
        parts = sorted(_canonical(v) for v in value)
        return b"E(" + b",".join(parts) + b")"
    if isinstance(value, dict):
        items = sorted(
            (_canonical(k), _canonical(v)) for k, v in value.items()
        )
        parts = b"".join(k + b":" + v + b"," for k, v in items)
        return b"D(" + parts + b")"
    if hasattr(value, "canonical_bytes"):
        return b"O" + value.canonical_bytes()
    raise TypeError(f"cannot canonicalize {type(value).__name__}")


def digest(value: Any) -> str:
    """Hex digest of a canonicalized value (16 bytes of SHA-256).

    Hot callers memoize: frozen transaction/block types cache their
    ``canonical_bytes`` (and consensus caches value digests via
    :func:`value_digest`) on the instance, because every verification
    site — pre-prepare checks, vote matching, certificate verification
    — re-hashes the same immutable payload otherwise.
    """
    return hashlib.sha256(_canonical(value)).hexdigest()[:32]


def value_digest(value: Any) -> str:
    """Digest of a consensus value, memoized on the value object.

    The digest is recomputed at proposal, at every backup's
    pre-prepare check, and at decide time — all over the same frozen
    value, so it is cached on the instance (``object.__setattr__``
    bypasses frozen-dataclass immutability, which only guards the
    declared fields).  Values without ``canonical_bytes`` (plain test
    payloads) are hashed directly and never cached.
    """
    if not hasattr(value, "canonical_bytes"):
        return digest(value)
    cached = getattr(value, "_value_digest_cache", None)
    if cached is None:
        cached = digest(value.canonical_bytes())
        try:
            object.__setattr__(value, "_value_digest_cache", cached)
        except (AttributeError, TypeError):
            pass  # __slots__ or C-level objects: just recompute
    return cached
