"""Shamir (k, n) secret sharing over GF(p).

§3.4 discusses secret sharing as the alternative intrusion-tolerance
technique Qanaat chose *not* to use (it only supports store/retrieve,
not general transactions).  We implement it anyway: the ablation bench
and tests demonstrate exactly that limitation, and it completes the
design space the paper surveys (Belisarius, DepSpace, COBRA).
"""

from __future__ import annotations

import random

from repro.errors import CryptoError

# A 127-bit Mersenne prime: plenty for simulated payload chunks.
_PRIME = 2**127 - 1


def _eval_poly(coefficients: list[int], x: int) -> int:
    accum = 0
    for coefficient in reversed(coefficients):
        accum = (accum * x + coefficient) % _PRIME
    return accum


def split_secret(
    secret: int, threshold: int, n_shares: int, seed: int = 0
) -> list[tuple[int, int]]:
    """Split ``secret`` into ``n_shares`` points; any ``threshold`` rebuild it."""
    if not 0 <= secret < _PRIME:
        raise CryptoError("secret out of field range")
    if not 1 <= threshold <= n_shares:
        raise CryptoError(f"bad threshold {threshold} for {n_shares} shares")
    rng = random.Random(seed)
    coefficients = [secret] + [
        rng.randrange(1, _PRIME) for _ in range(threshold - 1)
    ]
    return [(x, _eval_poly(coefficients, x)) for x in range(1, n_shares + 1)]


def combine_shares(shares: list[tuple[int, int]]) -> int:
    """Lagrange interpolation at x=0 to recover the secret."""
    if not shares:
        raise CryptoError("no shares")
    xs = [x for x, _ in shares]
    if len(set(xs)) != len(xs):
        raise CryptoError("duplicate share indices")
    secret = 0
    for i, (x_i, y_i) in enumerate(shares):
        numerator, denominator = 1, 1
        for j, (x_j, _) in enumerate(shares):
            if i == j:
                continue
            numerator = (numerator * -x_j) % _PRIME
            denominator = (denominator * (x_i - x_j)) % _PRIME
        term = y_i * numerator * pow(denominator, -1, _PRIME)
        secret = (secret + term) % _PRIME
    return secret
