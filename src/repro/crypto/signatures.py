"""Simulated digital signatures with a process-local PKI.

A :class:`KeyRegistry` plays the role of the certificate authority: it
assigns each identity a secret.  ``sign`` requires the secret; ``verify``
recomputes the keyed digest through the registry, which stands in for
public-key verification.  A Byzantine node that does not hold another
identity's secret cannot produce a signature that verifies — the
property the protocols rely on (§3.1: "the adversary cannot subvert
standard cryptographic assumptions").
"""

from __future__ import annotations

import hashlib
import hmac
from dataclasses import dataclass
from typing import Any

from repro.crypto.hashing import Canonical, count_verify, digest
from repro.errors import CryptoError, InvalidSignature


#: Per-registry verification-cache bound; far above what one simulated
#: run produces, but keeps a pathological workload from growing the
#: cache without limit (on overflow the cache is simply dropped).
_VERIFY_CACHE_MAX = 1 << 20

#: When on (the default), certificate consumers verify their signature
#: sets through :func:`verify_many` — quorum early-exit plus interned
#: whole-certificate outcomes.  Off reproduces the per-signature
#: baseline, which is how CI measures the ``verify_calls`` reduction
#: the batched path buys (see docs/performance.md).
BATCH_VERIFY = True


def set_batch_verify(enabled: bool) -> bool:
    """Flip the batched-verification mode; returns the previous value."""
    global BATCH_VERIFY
    previous = BATCH_VERIFY
    BATCH_VERIFY = bool(enabled)
    return previous


class KeyRegistry:
    """Process-local PKI: identity -> signing secret."""

    def __init__(self, seed: str = "qanaat"):
        self._seed = seed
        self._secrets: dict[str, bytes] = {}
        # (signer, payload_digest, signature) -> bool.  Commit
        # certificates are re-verified by every consumer (execution
        # routine, privacy firewall, client), so the same HMAC check
        # repeats many times per transaction; secrets never change once
        # enrolled, which makes the outcome cacheable.
        self._verify_cache: dict[tuple[str, str, str], bool] = {}

    def enroll(self, identity: str) -> None:
        """Issue a key pair for ``identity`` (idempotent)."""
        if identity not in self._secrets:
            material = f"{self._seed}/{identity}".encode()
            self._secrets[identity] = hashlib.sha256(material).digest()

    def is_enrolled(self, identity: str) -> bool:
        return identity in self._secrets

    def secret(self, identity: str) -> bytes:
        try:
            return self._secrets[identity]
        except KeyError:
            raise CryptoError(f"identity {identity!r} not enrolled") from None


@dataclass(frozen=True)
class SignedMessage(Canonical):
    """A digest signed by one identity."""

    signer: str
    payload_digest: str
    signature: str

    def _canonical_bytes(self) -> bytes:
        return f"{self.signer}|{self.payload_digest}|{self.signature}".encode()


def sign(registry: KeyRegistry, identity: str, payload: Any) -> SignedMessage:
    """Sign a payload (any canonicalizable value) as ``identity``."""
    payload_digest = payload if isinstance(payload, str) else digest(payload)
    # hmac.digest is the one-shot C implementation of
    # hmac.new(...).hexdigest() — same MAC, no HMAC-object overhead.
    mac = hmac.digest(
        registry.secret(identity), payload_digest.encode(), "sha256"
    ).hex()[:32]
    return SignedMessage(identity, payload_digest, mac)


def verify(
    registry: KeyRegistry, signed: SignedMessage, payload: Any | None = None
) -> bool:
    """Check a signature; optionally also bind it to ``payload``.

    The HMAC recomputation is memoized per registry: the result for a
    given (signer, digest, signature) triple cannot change because
    enrollment never rotates secrets.  Unenrolled signers are not
    cached — a later :meth:`KeyRegistry.enroll` must be able to change
    the answer — so a cache hit implies the signer was enrolled when
    the entry was written (and enrollment is permanent), letting the
    hot path skip the membership check.
    """
    count_verify()
    cache = registry._verify_cache
    key = (signed.signer, signed.payload_digest, signed.signature)
    valid = cache.get(key)
    if valid is None:
        if not registry.is_enrolled(signed.signer):
            return False
        expected = hmac.digest(
            registry.secret(signed.signer),
            signed.payload_digest.encode(),
            "sha256",
        ).hex()[:32]
        valid = hmac.compare_digest(expected, signed.signature)
        if len(cache) >= _VERIFY_CACHE_MAX:
            cache.clear()
        cache[key] = valid
    if not valid:
        return False
    if payload is not None:
        wanted = payload if isinstance(payload, str) else digest(payload)
        if wanted != signed.payload_digest:
            return False
    return True


def verify_many(
    registry: KeyRegistry,
    signatures: Any,
    payload: Any | None = None,
    quorum: int | None = None,
    members: Any | None = None,
) -> set[str]:
    """Verify a certificate's signatures together; return the distinct
    valid signers found.

    Amortizes what :func:`verify` pays per call across the whole set:
    the wanted payload digest is computed once, the registry's
    memoization table is fetched once, and digest-mismatched or
    non-member signatures are skipped before any MAC work (they cannot
    contribute a valid signer, so skipping them is outcome-preserving).
    With ``quorum`` set, verification stops as soon as that many
    distinct valid signers are found — a certificate carrying more
    signatures than its quorum never pays for the surplus.

    Lazy verification: a (signer, digest, signature) triple whose
    outcome is already interned in the registry is skipped for free —
    a quorum some other replica's handler already checked costs this
    one nothing.  Only fresh MAC computations count toward
    ``verify_calls`` (:func:`repro.crypto.hashing.counters`); the
    per-signature :func:`verify` counts every demand, which is the
    baseline the CI pin compares against (``set_batch_verify(False)``).
    """
    wanted = None
    if payload is not None:
        wanted = payload if isinstance(payload, str) else digest(payload)
    valid: set[str] = set()
    if not BATCH_VERIFY:
        # Per-signature baseline: one verify() demand per signature,
        # no early exit.  The returned set can be larger than the
        # batched path's (which stops at quorum), but every caller
        # only compares its size against the quorum.
        for signed in signatures:
            if wanted is not None and signed.payload_digest != wanted:
                continue
            if members is not None and signed.signer not in members:
                continue
            if verify(registry, signed):
                valid.add(signed.signer)
        return valid
    cache = registry._verify_cache
    for signed in signatures:
        if wanted is not None and signed.payload_digest != wanted:
            continue
        signer = signed.signer
        if members is not None and signer not in members:
            continue
        if signer in valid:
            continue
        key = (signer, signed.payload_digest, signed.signature)
        ok = cache.get(key)
        if ok is None:
            count_verify()
            if not registry.is_enrolled(signer):
                continue
            expected = hmac.digest(
                registry._secrets[signer],
                signed.payload_digest.encode(),
                "sha256",
            ).hex()[:32]
            ok = hmac.compare_digest(expected, signed.signature)
            if len(cache) >= _VERIFY_CACHE_MAX:
                cache.clear()
            cache[key] = ok
        if ok:
            valid.add(signer)
            if quorum is not None and len(valid) >= quorum:
                break
    return valid


def require_valid(
    registry: KeyRegistry, signed: SignedMessage, payload: Any | None = None
) -> None:
    """Raise :class:`InvalidSignature` unless the signature verifies."""
    if not verify(registry, signed, payload):
        raise InvalidSignature(
            f"bad signature from {signed.signer!r} on {signed.payload_digest}"
        )
