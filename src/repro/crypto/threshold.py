"""(k, n) threshold signatures (simulated).

§3.1: each node holds a distinct private key producing signature
*shares*; any ``k = n - f`` shares from distinct nodes combine into a
valid threshold signature for the group.  The simulation keeps the
share structure (who contributed) explicit, which is also what the
privacy firewall inspects when assembling reply certificates.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import digest
from repro.crypto.signatures import KeyRegistry, SignedMessage, sign, verify
from repro.errors import CryptoError


@dataclass(frozen=True)
class SignatureShare:
    """One node's share over a payload digest."""

    group: str
    signed: SignedMessage

    @property
    def signer(self) -> str:
        return self.signed.signer

    @property
    def payload_digest(self) -> str:
        return self.signed.payload_digest

    def canonical_bytes(self) -> bytes:
        return b"share|" + self.group.encode() + self.signed.canonical_bytes()


@dataclass(frozen=True)
class ThresholdSignature:
    """k-of-n signature: the combined shares plus group metadata."""

    group: str
    payload_digest: str
    threshold: int
    signers: frozenset[str]
    proof: str

    def canonical_bytes(self) -> bytes:
        signers = ",".join(sorted(self.signers))
        return (
            f"tsig|{self.group}|{self.payload_digest}|"
            f"{self.threshold}|{signers}|{self.proof}"
        ).encode()


def sign_share(
    registry: KeyRegistry, group: str, identity: str, payload: object
) -> SignatureShare:
    """Produce ``identity``'s share for the group over ``payload``."""
    return SignatureShare(group, sign(registry, identity, payload))


def combine(
    registry: KeyRegistry,
    shares: list[SignatureShare],
    threshold: int,
) -> ThresholdSignature:
    """Combine >= threshold valid shares from distinct signers."""
    if not shares:
        raise CryptoError("no shares to combine")
    group = shares[0].group
    payload_digest = shares[0].payload_digest
    valid_signers: set[str] = set()
    for share in shares:
        if share.group != group or share.payload_digest != payload_digest:
            raise CryptoError("shares disagree on group or payload")
        if verify(registry, share.signed):
            valid_signers.add(share.signer)
    if len(valid_signers) < threshold:
        raise CryptoError(
            f"only {len(valid_signers)} valid shares, need {threshold}"
        )
    proof = digest([group, payload_digest, sorted(valid_signers)])
    return ThresholdSignature(
        group, payload_digest, threshold, frozenset(valid_signers), proof
    )


def verify_threshold(
    registry: KeyRegistry, tsig: ThresholdSignature, payload: object | None = None
) -> bool:
    """Verify a combined signature (and optionally bind to payload)."""
    if len(tsig.signers) < tsig.threshold:
        return False
    for signer in tsig.signers:
        if not registry.is_enrolled(signer):
            return False
    expected = digest([tsig.group, tsig.payload_digest, sorted(tsig.signers)])
    if expected != tsig.proof:
        return False
    if payload is not None:
        wanted = payload if isinstance(payload, str) else digest(payload)
        if wanted != tsig.payload_digest:
            return False
    return True
