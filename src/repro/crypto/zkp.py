"""Pedersen commitments and sigma-protocol proofs (§3.2 extension).

The paper leaves privacy-preserving verification as an extension:
"transactions that are executed on data collection d_X might also need
to verify the records of another data collection d_Y ... without
reading the exact records ... if Y ⊂ X — in particular, for
intangible assets, e.g., cryptocurrencies, if enterprise A initiates a
transaction in data collection d_AB that consumes some coins,
enterprise B needs to verify the existence of the coins" — and names
zero-knowledge proofs as the tool.  This module supplies the
primitives; :mod:`repro.datamodel.assets` builds the confidential
asset contract on top.

Construction (textbook, not constant-time — this is a reproduction,
not a wallet):

- Pedersen commitment ``C = g^v · h^r mod p`` in a Schnorr group of
  prime order ``q`` (RFC 2409 Oakley group 2 modulus); ``h`` is hashed
  to the group so its discrete log w.r.t. ``g`` is unknown.
- Proof of opening knowledge: Schnorr sigma protocol on ``(v, r)``,
  made non-interactive with Fiat–Shamir.
- Bit proof: CDS OR-composition proving a commitment opens to 0 or 1.
- Range proof: bit decomposition with blinding factors arranged so the
  weighted product of bit commitments *equals* the target commitment —
  verification is then ``∏ C_i^(2^i) == C`` plus one bit proof per bit.

All proofs bind an optional ``context`` string into the Fiat–Shamir
challenge so a proof produced for one transaction cannot be replayed
inside another.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass
from typing import Iterable

from repro.errors import CryptoError

# RFC 2409 (Oakley group 2) 1024-bit safe prime: p = 2q + 1.
_P_HEX = (
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD1"
    "29024E088A67CC74020BBEA63B139B22514A08798E3404DD"
    "EF9519B3CD3A431B302B0A6DF25F14374FE1356D6D51C245"
    "E485B576625E7EC6F44C42E9A637ED6B0BFF5CB6F406B7ED"
    "EE386BFB5A899FA5AE9F24117C4B1FE649286651ECE65381"
    "FFFFFFFFFFFFFFFF"
)


def _hash_to_int(*parts: object) -> int:
    hasher = hashlib.sha256()
    for part in parts:
        hasher.update(repr(part).encode())
        hasher.update(b"|")
    return int.from_bytes(hasher.digest(), "big")


@dataclass(frozen=True)
class PedersenParams:
    """Group parameters shared by all enterprises (PKI metadata)."""

    p: int
    q: int
    g: int
    h: int

    def commit(self, value: int, blinding: int) -> "Commitment":
        if not 0 <= value < self.q:
            raise CryptoError("committed value out of group range")
        c = (pow(self.g, value, self.p) * pow(self.h, blinding % self.q, self.p)) % self.p
        return Commitment(c)

    def random_blinding(self, rng: random.Random) -> int:
        return rng.randrange(1, self.q)


_DEFAULT: PedersenParams | None = None


def default_params() -> PedersenParams:
    """The process-wide parameter set (deterministic, so every node
    and every test agrees on it)."""
    global _DEFAULT
    if _DEFAULT is None:
        p = int(_P_HEX, 16)
        q = (p - 1) // 2
        g = 4  # 2^2: a quadratic residue, generates the order-q subgroup
        h = pow(_hash_to_int("qanaat-pedersen-h") % p, 2, p)
        _DEFAULT = PedersenParams(p, q, g, h)
    return _DEFAULT


@dataclass(frozen=True)
class Commitment:
    """``C = g^v h^r``: binding and hiding for the committed value."""

    c: int

    def combine(self, other: "Commitment", params: PedersenParams) -> "Commitment":
        """Homomorphic addition: commit(v1+v2, r1+r2)."""
        return Commitment((self.c * other.c) % params.p)

    def canonical_bytes(self) -> bytes:
        return f"pc|{self.c:x}".encode()


def _challenge(params: PedersenParams, *parts: object) -> int:
    return _hash_to_int(params.g, params.h, *parts) % params.q


# ----------------------------------------------------------------------
# proof of opening knowledge
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class OpeningProof:
    """Schnorr PoK of ``(v, r)`` with ``C = g^v h^r``."""

    t: int
    s_value: int
    s_blinding: int

    def canonical_bytes(self) -> bytes:
        return f"op|{self.t:x}|{self.s_value:x}|{self.s_blinding:x}".encode()


def prove_opening(
    params: PedersenParams,
    value: int,
    blinding: int,
    rng: random.Random,
    context: str = "",
) -> OpeningProof:
    a = rng.randrange(1, params.q)
    b = rng.randrange(1, params.q)
    t = (pow(params.g, a, params.p) * pow(params.h, b, params.p)) % params.p
    commitment = params.commit(value, blinding)
    e = _challenge(params, "open", commitment.c, t, context)
    return OpeningProof(
        t,
        (a + e * value) % params.q,
        (b + e * blinding) % params.q,
    )


def verify_opening(
    params: PedersenParams,
    commitment: Commitment,
    proof: OpeningProof,
    context: str = "",
) -> bool:
    e = _challenge(params, "open", commitment.c, proof.t, context)
    left = (
        pow(params.g, proof.s_value, params.p)
        * pow(params.h, proof.s_blinding, params.p)
    ) % params.p
    right = (proof.t * pow(commitment.c, e, params.p)) % params.p
    return left == right


# ----------------------------------------------------------------------
# equality proof
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EqualityProof:
    """Proof that two commitments open to the same value.

    ``C1 / C2 = h^(r1 - r2)`` when the values agree, so equality is a
    Schnorr proof of knowledge of the blinding difference in base
    ``h``.  Used when an asset committed on one collection must be
    shown to match its attestation on another (e.g. the ``d_AB``
    deposit of a coin minted on ``d_A``) without opening either.
    """

    t: int
    s: int


def prove_equality(
    params: PedersenParams,
    value: int,
    blinding_a: int,
    blinding_b: int,
    rng: random.Random,
    context: str = "",
) -> EqualityProof:
    c_a = params.commit(value, blinding_a)
    c_b = params.commit(value, blinding_b)
    w = rng.randrange(1, params.q)
    t = pow(params.h, w, params.p)
    e = _challenge(params, "eq", c_a.c, c_b.c, t, context)
    s = (w + e * (blinding_a - blinding_b)) % params.q
    return EqualityProof(t, s)


def verify_equality(
    params: PedersenParams,
    commitment_a: Commitment,
    commitment_b: Commitment,
    proof: EqualityProof,
    context: str = "",
) -> bool:
    p = params.p
    quotient = (commitment_a.c * pow(commitment_b.c, p - 2, p)) % p
    e = _challenge(params, "eq", commitment_a.c, commitment_b.c, proof.t, context)
    left = pow(params.h, proof.s, p)
    right = (proof.t * pow(quotient, e, p)) % p
    return left == right


# ----------------------------------------------------------------------
# bit proof (CDS OR-composition)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BitProof:
    """Proof that a commitment opens to 0 or 1, revealing neither."""

    t0: int
    t1: int
    e0: int
    e1: int
    s0: int
    s1: int


def prove_bit(
    params: PedersenParams,
    bit: int,
    blinding: int,
    rng: random.Random,
    context: str = "",
) -> BitProof:
    """Prove ``C ∈ {h^r, g·h^r}`` — i.e. the bit is 0 or 1."""
    if bit not in (0, 1):
        raise CryptoError("prove_bit needs a bit")
    p, q, g, h = params.p, params.q, params.g, params.h
    commitment = params.commit(bit, blinding)
    c = commitment.c
    c_over_g = (c * pow(g, p - 2, p)) % p  # C / g
    if bit == 0:
        # Real proof for S0 (C = h^r), simulated for S1 (C/g = h^r).
        e1 = rng.randrange(q)
        s1 = rng.randrange(q)
        t1 = (pow(h, s1, p) * pow(c_over_g, q - e1, p)) % p
        w = rng.randrange(1, q)
        t0 = pow(h, w, p)
        e = _challenge(params, "bit", c, t0, t1, context)
        e0 = (e - e1) % q
        s0 = (w + e0 * blinding) % q
    else:
        e0 = rng.randrange(q)
        s0 = rng.randrange(q)
        t0 = (pow(h, s0, p) * pow(c, q - e0, p)) % p
        w = rng.randrange(1, q)
        t1 = pow(h, w, p)
        e = _challenge(params, "bit", c, t0, t1, context)
        e1 = (e - e0) % q
        s1 = (w + e1 * blinding) % q
    return BitProof(t0, t1, e0, e1, s0, s1)


def verify_bit(
    params: PedersenParams,
    commitment: Commitment,
    proof: BitProof,
    context: str = "",
) -> bool:
    p, q, g, h = params.p, params.q, params.g, params.h
    c = commitment.c
    e = _challenge(params, "bit", c, proof.t0, proof.t1, context)
    if (proof.e0 + proof.e1) % q != e:
        return False
    if pow(h, proof.s0, p) != (proof.t0 * pow(c, proof.e0, p)) % p:
        return False
    c_over_g = (c * pow(g, p - 2, p)) % p
    return pow(h, proof.s1, p) == (proof.t1 * pow(c_over_g, proof.e1, p)) % p


# ----------------------------------------------------------------------
# range proof by bit decomposition
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RangeProof:
    """Proof that ``0 <= v < 2^bits`` for a committed value ``v``.

    The bit blinding factors are arranged so that
    ``∏ C_i^(2^i) == C`` exactly — the verifier needs no extra
    aggregation proof.
    """

    bit_commitments: tuple[Commitment, ...]
    bit_proofs: tuple[BitProof, ...]


def prove_range(
    params: PedersenParams,
    value: int,
    blinding: int,
    bits: int,
    rng: random.Random,
    context: str = "",
) -> RangeProof:
    if not 0 <= value < (1 << bits):
        raise CryptoError(f"value {value} outside [0, 2^{bits})")
    q = params.q
    bit_values = [(value >> i) & 1 for i in range(bits)]
    blindings = [rng.randrange(1, q) for _ in range(bits)]
    # Fix r_0 so that sum(2^i * r_i) == blinding (mod q).
    rest = sum((1 << i) * blindings[i] for i in range(1, bits)) % q
    blindings[0] = (blinding - rest) % q
    commitments = tuple(
        params.commit(bit_values[i], blindings[i]) for i in range(bits)
    )
    proofs = tuple(
        prove_bit(params, bit_values[i], blindings[i], rng, context)
        for i in range(bits)
    )
    return RangeProof(commitments, proofs)


def verify_range(
    params: PedersenParams,
    commitment: Commitment,
    proof: RangeProof,
    bits: int,
    context: str = "",
) -> bool:
    if len(proof.bit_commitments) != bits or len(proof.bit_proofs) != bits:
        return False
    product = 1
    for i, bit_commitment in enumerate(proof.bit_commitments):
        if not verify_bit(params, bit_commitment, proof.bit_proofs[i], context):
            return False
        product = (product * pow(bit_commitment.c, 1 << i, params.p)) % params.p
    return product == commitment.c


# ----------------------------------------------------------------------
# balance (sum) checks
# ----------------------------------------------------------------------
def balances(
    params: PedersenParams,
    inputs: Iterable[Commitment],
    outputs: Iterable[Commitment],
) -> bool:
    """Homomorphic conservation check: ``∏ inputs == ∏ outputs``.

    Holds iff the committed values balance *and* the blindings balance;
    provers arrange output blindings to sum to the input blindings.
    """
    left = 1
    for commitment in inputs:
        left = (left * commitment.c) % params.p
    right = 1
    for commitment in outputs:
        right = (right * commitment.c) % params.p
    return left == right
