"""Qanaat's hierarchical data model (§3.2–§3.3).

Data *collections* form a lattice per collaboration workflow: a root
collection shared by every enterprise, a local collection per
enterprise, and optional intermediate collections for confidential
subsets.  Collection ``d_X`` is *order-dependent* on ``d_Y`` iff
``X ⊆ Y``; transactions on ``d_X`` may read ``d_Y``.  Transaction IDs
``⟨α, γ⟩`` capture per-collection order (α) and the observed state of
order-dependent collections (γ).
"""

from repro.datamodel.collections import (
    CollectionRegistry,
    DataCollection,
    scope_label,
)
from repro.datamodel.sharding import ShardingSchema
from repro.datamodel.store import MultiVersionStore
from repro.datamodel.transaction import Operation, Transaction
from repro.datamodel.txid import LocalPart, SequenceBook, TxId
from repro.datamodel.workflow import CollaborationWorkflow

__all__ = [
    "scope_label",
    "DataCollection",
    "CollectionRegistry",
    "LocalPart",
    "TxId",
    "SequenceBook",
    "Operation",
    "Transaction",
    "MultiVersionStore",
    "ShardingSchema",
    "CollaborationWorkflow",
]
