"""Data collections and the order-dependency lattice (§3.2).

A collection is identified by its *scope*: the set of enterprises that
share it.  The :class:`CollectionRegistry` is deployment-global — an
enterprise involved in several collaboration workflows gets exactly one
collection per scope, which is how Qanaat provides consistency across
workflows (requirement R2): the Pfizer and Moderna workflows both write
the supplier's orders to the same ``d_S``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import AccessViolation, DataModelError


#: Labels for frozenset scopes are interned — the same few scopes are
#: labeled once per routed transaction otherwise.
_scope_label_cache: dict[frozenset, str] = {}


def scope_label(scope: Iterable[str]) -> str:
    """Human-readable label: 'ABD' for {'A','B','D'}, 'L1+M2' otherwise."""
    if isinstance(scope, frozenset):
        cached = _scope_label_cache.get(scope)
        if cached is not None:
            return cached
    members = sorted(scope)
    if not members:
        raise DataModelError("empty scope")
    if all(len(m) == 1 for m in members):
        label = "".join(members)
    else:
        label = "+".join(members)
    if isinstance(scope, frozenset):
        _scope_label_cache[scope] = label
    return label


@dataclass(frozen=True)
class DataCollection:
    """A logical datastore shared by the enterprises in ``scope``.

    Collections are logical partitions, not physical datastores
    (§3.2) — creating one costs nothing.  ``contract`` names the
    business logic executed against it; every collection may have its
    own (§3.2: "each data collection further has its own logic").
    """

    scope: frozenset[str]
    contract: str = "kv"
    num_shards: int = 1

    def __post_init__(self) -> None:
        if not self.scope:
            raise DataModelError("a collection needs at least one enterprise")
        if self.num_shards < 1:
            raise DataModelError("num_shards must be >= 1")

    @property
    def label(self) -> str:
        return scope_label(self.scope)

    @property
    def is_local(self) -> bool:
        """Private collection of a single enterprise."""
        return len(self.scope) == 1

    def involves(self, enterprise: str) -> bool:
        return enterprise in self.scope

    def order_dependent_on(self, other: "DataCollection") -> bool:
        """d_self is order-dependent on d_other iff scope ⊆ other (§3.2)."""
        return self.scope != other.scope and self.scope <= other.scope

    def can_read(self, other: "DataCollection") -> bool:
        """Transactions on self may read other iff self ⊆ other (rule 2, §3.5)."""
        return self.scope <= other.scope

    def canonical_bytes(self) -> bytes:
        return f"collection|{self.label}|{self.contract}|{self.num_shards}".encode()


@dataclass
class CollectionRegistry:
    """Deployment-wide registry: one collection per scope.

    The registry answers the lattice queries the ordering scheme needs:
    which existing collections is ``d_X`` order-dependent on, and which
    enterprises must replicate a given collection.
    """

    _by_scope: dict[frozenset[str], DataCollection] = field(default_factory=dict)

    def create(
        self,
        scope: Iterable[str],
        contract: str = "kv",
        num_shards: int = 1,
    ) -> DataCollection:
        """Create (or return the existing) collection for ``scope``.

        Re-creating an existing scope returns the same object — that is
        the cross-workflow sharing rule of §3.2 — but with a conflicting
        configuration it is an error, since the sharding schema is part
        of the configuration metadata all enterprises agreed on (§3.6).
        """
        key = frozenset(scope)
        existing = self._by_scope.get(key)
        if existing is not None:
            if existing.contract != contract or existing.num_shards != num_shards:
                raise DataModelError(
                    f"collection {existing.label} already exists with a "
                    f"different configuration"
                )
            return existing
        collection = DataCollection(key, contract, num_shards)
        self._by_scope[key] = collection
        return collection

    def get(self, scope: Iterable[str]) -> DataCollection:
        key = frozenset(scope)
        try:
            return self._by_scope[key]
        except KeyError:
            raise DataModelError(
                f"no collection for scope {scope_label(key)}"
            ) from None

    def exists(self, scope: Iterable[str]) -> bool:
        return frozenset(scope) in self._by_scope

    def get_by_label(self, label: str) -> DataCollection:
        for collection in self._by_scope.values():
            if collection.label == label:
                return collection
        raise DataModelError(f"no collection labelled {label!r}")

    def __iter__(self) -> Iterator[DataCollection]:
        return iter(self._by_scope.values())

    def __len__(self) -> int:
        return len(self._by_scope)

    def collections_of(self, enterprise: str) -> list[DataCollection]:
        """Every collection the enterprise maintains (§3.2: root, local,
        and any intermediates it is involved in)."""
        return [c for c in self._by_scope.values() if c.involves(enterprise)]

    def order_dependencies(self, collection: DataCollection) -> list[DataCollection]:
        """All existing collections ``collection`` is order-dependent on,
        sorted widest-first (root first) for deterministic γ assembly."""
        supersets = [
            c
            for c in self._by_scope.values()
            if collection.order_dependent_on(c)
        ]
        return sorted(supersets, key=lambda c: (-len(c.scope), c.label))

    def readable_from(self, collection: DataCollection) -> list[DataCollection]:
        """Collections whose records transactions on ``collection`` may read."""
        return [c for c in self._by_scope.values() if collection.can_read(c)]

    def check_access(self, enterprise: str, collection: DataCollection) -> None:
        """Raise unless the enterprise is involved in the collection."""
        if not collection.involves(enterprise):
            raise AccessViolation(
                f"enterprise {enterprise!r} is not involved in "
                f"collection {collection.label}"
            )
