"""Sharding schema (§3.6).

Enterprises agree on one schema per shared collection when it is
created; using the same schema lets one cluster order an intra-shard
cross-enterprise transaction while the peers only validate.  The
schema is deliberately simple — a stable hash over keys — because what
matters to the protocols is the *mapping*, not the hash function.
"""

from __future__ import annotations

import hashlib

from repro.errors import DataModelError


#: Process-wide key -> shard memo, keyed by shard count so schemas of
#: different widths never mix.  The mapping is a pure function of
#: (num_shards, key), so sharing across deployments is sound — and the
#: bench matrix reuses the same synthetic account names in every
#: scenario, so later scenarios skip the md5 entirely.
_SHARD_CACHE: dict[tuple[int, str], int] = {}
_SHARD_CACHE_MAX = 1 << 20


class ShardingSchema:
    """Stable key -> shard mapping shared by all involved enterprises."""

    #: Per-schema memo bound for the key-set table.
    _CACHE_MAX = 1 << 20

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise DataModelError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._shards_cache: dict[tuple[str, ...], tuple[int, ...]] = {}

    def shard_of(self, key: str) -> int:
        """Deterministic, platform-independent shard for a key."""
        if self.num_shards == 1:
            return 0
        cache_key = (self.num_shards, key)
        shard = _SHARD_CACHE.get(cache_key)
        if shard is None:
            h = hashlib.md5(key.encode("utf-8")).digest()
            shard = int.from_bytes(h[:4], "big") % self.num_shards
            if len(_SHARD_CACHE) >= _SHARD_CACHE_MAX:
                _SHARD_CACHE.clear()
            _SHARD_CACHE[cache_key] = shard
        return shard

    def shards_of(self, keys: tuple[str, ...]) -> tuple[int, ...]:
        """Sorted distinct shards a key set touches."""
        if not keys:
            return (0,)
        cache = self._shards_cache
        try:
            shards = cache.get(keys)
        except TypeError:  # list-typed key sets: compute directly
            return tuple(sorted({self.shard_of(k) for k in keys}))
        if shards is None:
            shards = tuple(sorted({self.shard_of(k) for k in keys}))
            if len(cache) >= self._CACHE_MAX:
                cache.clear()
            cache[keys] = shards
        return shards

    def partition_keys(
        self, keys: tuple[str, ...]
    ) -> dict[int, tuple[str, ...]]:
        """Group keys by shard, preserving input order within a shard."""
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        return {shard: tuple(ks) for shard, ks in by_shard.items()}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardingSchema)
            and other.num_shards == self.num_shards
        )

    def __hash__(self) -> int:
        return hash(("ShardingSchema", self.num_shards))

    def __repr__(self) -> str:
        return f"ShardingSchema(num_shards={self.num_shards})"
