"""Sharding schema (§3.6).

Enterprises agree on one schema per shared collection when it is
created; using the same schema lets one cluster order an intra-shard
cross-enterprise transaction while the peers only validate.  The
schema is deliberately simple — a stable hash over keys — because what
matters to the protocols is the *mapping*, not the hash function.
"""

from __future__ import annotations

import hashlib

from repro.errors import DataModelError


class ShardingSchema:
    """Stable key -> shard mapping shared by all involved enterprises."""

    def __init__(self, num_shards: int):
        if num_shards < 1:
            raise DataModelError("num_shards must be >= 1")
        self.num_shards = num_shards

    def shard_of(self, key: str) -> int:
        """Deterministic, platform-independent shard for a key."""
        if self.num_shards == 1:
            return 0
        h = hashlib.md5(key.encode("utf-8")).digest()
        return int.from_bytes(h[:4], "big") % self.num_shards

    def shards_of(self, keys: tuple[str, ...]) -> tuple[int, ...]:
        """Sorted distinct shards a key set touches."""
        if not keys:
            return (0,)
        return tuple(sorted({self.shard_of(k) for k in keys}))

    def partition_keys(
        self, keys: tuple[str, ...]
    ) -> dict[int, tuple[str, ...]]:
        """Group keys by shard, preserving input order within a shard."""
        by_shard: dict[int, list[str]] = {}
        for key in keys:
            by_shard.setdefault(self.shard_of(key), []).append(key)
        return {shard: tuple(ks) for shard, ks in by_shard.items()}

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ShardingSchema)
            and other.num_shards == self.num_shards
        )

    def __hash__(self) -> int:
        return hash(("ShardingSchema", self.num_shards))

    def __repr__(self) -> str:
        return f"ShardingSchema(num_shards={self.num_shards})"
