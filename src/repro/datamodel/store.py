"""Multi-versioned datastore (§4.2).

"Data collections store data in multi-versioned datastores to enable
nodes to read the version they need to."  Versions are the
per-collection-shard sequence numbers from α, so executing a
transaction with γ = [Y:m] reads d_Y exactly as of its m-th commit.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Any, Iterator

from repro.errors import DataModelError
from repro.storage.base import KIND_MARK, KIND_WRITE, LogRecord

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.base import StorageBackend


class MultiVersionStore:
    """Versioned key-value state for the collections one node maintains.

    Keys live in namespaces ``(collection_label, shard)``.  Writes must
    be applied in increasing version order per namespace (the execution
    routine guarantees it: transactions execute in α order).

    With a :class:`~repro.storage.base.StorageBackend` attached, every
    write and version marker is journaled as it is applied, and
    :meth:`recover` rebuilds an equivalent store from snapshot + log
    replay after a crash.
    """

    def __init__(self, backend: "StorageBackend | None" = None) -> None:
        self._data: dict[tuple[str, int], dict[str, tuple[list[int], list[Any]]]] = {}
        self._applied: dict[tuple[str, int], int] = {}
        self._backend = backend

    def namespaces(self) -> list[tuple[str, int]]:
        return list(self._data)

    def applied_version(self, label: str, shard: int = 0) -> int:
        """Highest version applied to a namespace (0 if untouched)."""
        return self._applied.get((label, shard), 0)

    def write(
        self, label: str, shard: int, version: int, key: str, value: Any
    ) -> None:
        """Write one key at ``version``; versions are monotone per namespace.

        A multi-key transaction writes several keys at the *same*
        version, so ``version == applied`` is legal; anything older is
        rejected with a diagnosis: a *late same-version re-write* (the
        version exists in the namespace but a newer one has already
        been applied — an out-of-α-order execution bug) is
        distinguished from a *genuine regression* (a version the
        namespace never reached).
        """
        namespace = (label, shard)
        applied = self._applied.get(namespace, 0)
        if version < applied:
            if self._version_exists(namespace, version):
                raise DataModelError(
                    f"late same-version re-write of {key!r} at closed "
                    f"version {version} on {namespace}: namespace already "
                    f"advanced to {applied}"
                )
            raise DataModelError(
                f"version regression on {namespace}: write at version "
                f"{version} after {applied} (no write recorded at {version})"
            )
        self._applied[namespace] = version
        by_key = self._data.get(namespace)
        if by_key is None:
            by_key = self._data[namespace] = {}
        entry = by_key.get(key)
        if entry is None:
            entry = by_key[key] = ([], [])
        versions, values = entry
        if versions and versions[-1] == version:
            values[-1] = value
        else:
            versions.append(version)
            values.append(value)
        if self._backend is not None:
            self._backend.append(
                namespace, LogRecord(version, KIND_WRITE, key, value)
            )

    def _version_exists(self, namespace: tuple[str, int], version: int) -> bool:
        for versions, _ in self._data.get(namespace, {}).values():
            index = bisect.bisect_left(versions, version)
            if index < len(versions) and versions[index] == version:
                return True
        return False

    def mark_version(self, label: str, shard: int, version: int) -> None:
        """Advance the applied version without writing (no-op commits)."""
        namespace = (label, shard)
        if version > self._applied.get(namespace, 0):
            self._applied[namespace] = version
            if self._backend is not None:
                self._backend.append(
                    namespace, LogRecord(version, KIND_MARK)
                )

    def read(
        self,
        label: str,
        key: str,
        shard: int = 0,
        at_version: int | None = None,
        default: Any = None,
    ) -> Any:
        """Read ``key`` as of ``at_version`` (latest if None)."""
        namespace = (label, shard)
        entry = self._data.get(namespace, {}).get(key)
        if entry is None:
            return default
        versions, values = entry
        if at_version is None:
            return values[-1]
        index = bisect.bisect_right(versions, at_version) - 1
        if index < 0:
            return default
        return values[index]

    def keys(self, label: str, shard: int = 0) -> Iterator[str]:
        yield from self._data.get((label, shard), {})

    def latest_snapshot(self, label: str, shard: int = 0) -> dict[str, Any]:
        """Latest value of every key in a namespace (for audits/tests)."""
        return {
            key: values[-1]
            for key, (_, values) in self._data.get((label, shard), {}).items()
        }

    def version_count(self, label: str, key: str, shard: int = 0) -> int:
        entry = self._data.get((label, shard), {}).get(key)
        return len(entry[0]) if entry else 0

    # ------------------------------------------------------------------
    # durability
    # ------------------------------------------------------------------
    def attach_backend(self, backend: "StorageBackend | None") -> None:
        """Start (or stop) journaling; past state is not re-journaled —
        recovery attaches the backend after replay for exactly that
        reason."""
        self._backend = backend

    def restore_namespace(self, label: str, shard: int, recovered) -> int:
        """Replay one namespace from a backend ``load`` result.

        Applies the snapshot (latest-at-frontier values become the
        namespace's base version) and then the log suffix, exactly as
        the original writes happened.  Returns how many writes were
        applied (snapshot entries + log records — the replay work).
        ``head`` records are ignored here — they belong to the ledger
        (:meth:`repro.core.executor.ExecutionUnit.recover`).
        """
        replayed = 0
        snapshot = recovered.snapshot
        if snapshot is not None:
            for key, value in sorted(snapshot.payload.get("state", {}).items()):
                self.write(label, shard, snapshot.version, key, value)
                replayed += 1
            self.mark_version(label, shard, snapshot.version)
        for record in recovered.replay_records():
            if record.kind == KIND_WRITE:
                self.write(label, shard, record.version, record.key, record.value)
                replayed += 1
            elif record.kind == KIND_MARK:
                self.mark_version(label, shard, record.version)
                replayed += 1
        return replayed

    @classmethod
    def recover(cls, backend: "StorageBackend") -> "MultiVersionStore":
        """Rebuild a store from a backend: snapshot + log replay for
        every namespace, then attach the backend for new writes."""
        store = cls()
        for namespace in backend.namespaces():
            label, shard = namespace
            store.restore_namespace(label, shard, backend.load(namespace))
        store.attach_backend(backend)
        return store
