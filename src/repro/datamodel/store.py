"""Multi-versioned datastore (§4.2).

"Data collections store data in multi-versioned datastores to enable
nodes to read the version they need to."  Versions are the
per-collection-shard sequence numbers from α, so executing a
transaction with γ = [Y:m] reads d_Y exactly as of its m-th commit.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator

from repro.errors import DataModelError


class MultiVersionStore:
    """Versioned key-value state for the collections one node maintains.

    Keys live in namespaces ``(collection_label, shard)``.  Writes must
    be applied in increasing version order per namespace (the execution
    routine guarantees it: transactions execute in α order).
    """

    def __init__(self) -> None:
        self._data: dict[tuple[str, int], dict[str, tuple[list[int], list[Any]]]] = {}
        self._applied: dict[tuple[str, int], int] = {}

    def namespaces(self) -> list[tuple[str, int]]:
        return list(self._data)

    def applied_version(self, label: str, shard: int = 0) -> int:
        """Highest version applied to a namespace (0 if untouched)."""
        return self._applied.get((label, shard), 0)

    def write(
        self, label: str, shard: int, version: int, key: str, value: Any
    ) -> None:
        """Write one key at ``version``; versions are monotone per namespace."""
        namespace = (label, shard)
        applied = self._applied.get(namespace, 0)
        if version < applied:
            raise DataModelError(
                f"write at version {version} after {applied} on {namespace}"
            )
        self._applied[namespace] = version
        by_key = self._data.setdefault(namespace, {})
        versions, values = by_key.setdefault(key, ([], []))
        if versions and versions[-1] == version:
            values[-1] = value
        else:
            versions.append(version)
            values.append(value)

    def mark_version(self, label: str, shard: int, version: int) -> None:
        """Advance the applied version without writing (no-op commits)."""
        namespace = (label, shard)
        if version > self._applied.get(namespace, 0):
            self._applied[namespace] = version

    def read(
        self,
        label: str,
        key: str,
        shard: int = 0,
        at_version: int | None = None,
        default: Any = None,
    ) -> Any:
        """Read ``key`` as of ``at_version`` (latest if None)."""
        namespace = (label, shard)
        entry = self._data.get(namespace, {}).get(key)
        if entry is None:
            return default
        versions, values = entry
        if at_version is None:
            return values[-1]
        index = bisect.bisect_right(versions, at_version) - 1
        if index < 0:
            return default
        return values[index]

    def keys(self, label: str, shard: int = 0) -> Iterator[str]:
        yield from self._data.get((label, shard), {})

    def latest_snapshot(self, label: str, shard: int = 0) -> dict[str, Any]:
        """Latest value of every key in a namespace (for audits/tests)."""
        return {
            key: values[-1]
            for key, (_, values) in self._data.get((label, shard), {}).items()
        }

    def version_count(self, label: str, key: str, shard: int = 0) -> int:
        entry = self._data.get((label, shard), {}).get(key)
        return len(entry[0]) if entry else 0
