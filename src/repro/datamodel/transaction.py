"""Transactions and client requests.

A transaction targets exactly one data collection (§4: "a transaction
can not be executed or write data records on multiple data collections")
but may span one or several *shards* of it, and its execution may read
order-dependent collections at the versions captured in γ.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.crypto.hashing import Canonical
from repro.datamodel.txid import TxId

_request_counter = itertools.count(1)


@dataclass(frozen=True)
class Operation(Canonical):
    """One invocation of a collection's contract logic."""

    contract: str
    name: str
    args: tuple[Any, ...] = ()

    def _canonical_bytes(self) -> bytes:
        parts = ",".join(repr(a) for a in self.args)
        return f"op|{self.contract}|{self.name}|{parts}".encode()


@dataclass(frozen=True)
class Transaction(Canonical):
    """A client request: ``⟨REQUEST, op, t_c, c⟩`` (§4.1).

    ``scope`` names the target collection; ``keys`` drive shard
    mapping; ``read_only`` transactions skip ledger appends.  The
    request id is process-unique and used for reply matching and
    duplicate suppression (execution nodes keep the last reply per
    client, §4.2).
    """

    client: str
    timestamp: int
    operation: Operation
    scope: frozenset[str]
    keys: tuple[str, ...] = ()
    read_only: bool = False
    request_id: int = field(default_factory=lambda: next(_request_counter))
    confidential: bool = True
    #: When the request body is encrypted (§3.4: ordering nodes cannot
    #: read it), the real operation travels here and ``operation`` is a
    #: redacted header naming only the contract.
    sealed_operation: Any = None

    def _canonical_bytes(self) -> bytes:
        # Memoized by Canonical: every verification site (block digests,
        # signature checks, certificates) re-canonicalizes the same
        # immutable request otherwise.  All declared fields are frozen,
        # so the bytes can never go stale.
        sealed = (
            self.sealed_operation.canonical_bytes()
            if self.sealed_operation is not None
            else b"-"
        )
        return (
            f"tx|{self.client}|{self.timestamp}|{self.request_id}|"
            f"{sorted(self.scope)}|{self.keys}|".encode()
            + self.operation.canonical_bytes()
            + b"|"
            + sealed
        )

    def tx_count(self) -> int:
        return 1


@dataclass(frozen=True)
class OrderedTransaction(Canonical):
    """A transaction bound to the ID (or IDs) consensus assigned it.

    Intra-shard transactions carry one :class:`TxId`; cross-shard
    transactions carry one per participating shard, keyed by shard
    index — the commit message's "concatenation of the received IDs"
    (§4.3.2).
    """

    tx: Transaction
    ids: tuple[TxId, ...]

    def __post_init__(self) -> None:
        if not self.ids:
            raise ValueError("an ordered transaction needs at least one ID")

    @property
    def primary_id(self) -> TxId:
        return self.ids[0]

    def id_for_shard(self, shard: int) -> TxId | None:
        for tx_id in self.ids:
            if tx_id.alpha.shard == shard:
                return tx_id
        return None

    def _canonical_bytes(self) -> bytes:
        ids = b";".join(i.canonical_bytes() for i in self.ids)
        return b"otx|" + self.tx.canonical_bytes() + b"|" + ids

    def tx_count(self) -> int:
        return 1
