"""Transaction IDs ``⟨α, γ⟩`` and the consistency rules of §3.3.

``α = [X#s : n]`` is the local part: collection label ``X``, shard
index ``s``, and per-collection-shard sequence number ``n``.  ``γ``
snapshots, for every collection ``d_X`` is order-dependent on, the
local part of the last transaction committed there — the state the
transaction may read during execution.

The ledger guarantees (§3.3):

- *local consistency*: a total order per collection (per shard);
- *global consistency*: for t → t' on the same collection,
  ``n < n'`` and ``m_q <= m'_q`` for every collection in ``γ ∩ γ'``.

:class:`SequenceBook` is the bookkeeping each cluster's primary uses to
assign IDs and each validator uses to check them, including the
transitive γ reduction from the paper's Figure 3 example (``ABCD:1``
is omitted from ``d_BC``'s γ when a fresher intermediate already
captured it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.crypto.hashing import Canonical
from repro.errors import ConsistencyViolation, DataModelError

if TYPE_CHECKING:  # pragma: no cover
    from repro.datamodel.collections import CollectionRegistry, DataCollection


@dataclass(frozen=True, order=True)
class LocalPart:
    """``[X#s : n]`` — one collection-shard's sequence entry."""

    label: str
    shard: int
    seq: int

    def key(self) -> tuple[str, int]:
        return (self.label, self.shard)

    def canonical_bytes(self) -> bytes:
        return f"{self.label}#{self.shard}:{self.seq}".encode()

    def __str__(self) -> str:
        if self.shard == 0:
            return f"[{self.label}:{self.seq}]"
        return f"[{self.label}#{self.shard}:{self.seq}]"


@dataclass(frozen=True)
class TxId(Canonical):
    """``⟨α, γ⟩`` for one transaction on one collection-shard."""

    alpha: LocalPart
    gamma: tuple[LocalPart, ...] = ()

    def __post_init__(self) -> None:
        keys = [g.key() for g in self.gamma]
        if len(set(keys)) != len(keys):
            raise DataModelError("duplicate collection in gamma")
        if self.alpha.key() in keys:
            raise DataModelError("gamma must not include the target collection")

    def gamma_map(self) -> dict[tuple[str, int], int]:
        # Memoized: the same TxId object is validated, committed, and
        # appended on every replica, each rebuilding this dict
        # otherwise.  The returned dict is shared — callers treat it as
        # read-only (they copy if they need to mutate).
        cached = getattr(self, "_gamma_map_cache", None)
        if cached is None:
            cached = {g.key(): g.seq for g in self.gamma}
            object.__setattr__(self, "_gamma_map_cache", cached)
        return cached

    def _canonical_bytes(self) -> bytes:
        parts = b";".join(g.canonical_bytes() for g in self.gamma)
        return b"id|" + self.alpha.canonical_bytes() + b"|" + parts

    def __str__(self) -> str:
        gamma = ", ".join(str(g) for g in self.gamma)
        return f"<{self.alpha}, [{gamma}]>" if gamma else f"<{self.alpha}, []>"


def happens_before(t: TxId, t_prime: TxId) -> bool:
    """Is ``t → t'`` a legal order per §3.3?

    Requires both transactions to target the same collection-shard;
    then checks ``n < n'`` (local) and monotone γ on shared entries
    (global).
    """
    if t.alpha.key() != t_prime.alpha.key():
        raise DataModelError(
            "happens_before compares transactions of one collection-shard"
        )
    if t.alpha.seq >= t_prime.alpha.seq:
        return False
    earlier = t.gamma_map()
    later = t_prime.gamma_map()
    return all(
        earlier[key] <= later[key] for key in earlier.keys() & later.keys()
    )


class SequenceBook:
    """Per-cluster bookkeeping to assign and validate transaction IDs.

    Tracks, for every collection-shard this cluster maintains, the last
    committed sequence number and the γ recorded with it (needed for
    the transitive reduction).
    """

    def __init__(
        self,
        registry: "CollectionRegistry",
        shard: int = 0,
        reduce_gamma: bool = True,
    ):
        self.registry = registry
        self.shard = shard
        self.reduce_gamma = reduce_gamma
        self._committed: dict[tuple[str, int], int] = {}
        self._assigned: dict[tuple[str, int], int] = {}
        self._last_gamma: dict[tuple[str, int], dict[tuple[str, int], int]] = {}

    # ------------------------------------------------------------------
    # assignment (primary side)
    # ------------------------------------------------------------------
    def committed_seq(self, collection: "DataCollection", shard: int | None = None) -> int:
        return self._committed.get((collection.label, self._shard_of(collection, shard)), 0)

    def _shard_of(self, collection: "DataCollection", shard: int | None) -> int:
        if shard is not None:
            return shard
        return self.shard if collection.num_shards > 1 else 0

    def assign(
        self, collection: "DataCollection", shard: int | None = None
    ) -> TxId:
        """Assign the next ID for a transaction on ``collection``.

        α gets the next sequence after the last *assigned* (not merely
        committed) one, so a primary can pipeline.  γ captures the last
        committed state of every order-dependent collection (§4.1: the
        read-set is unknown before execution, so the whole dependency
        closure is captured), with the transitive reduction applied
        when enabled.
        """
        target_shard = self._shard_of(collection, shard)
        key = (collection.label, target_shard)
        seq = max(self._assigned.get(key, 0), self._committed.get(key, 0)) + 1
        self._assigned[key] = seq
        gamma = self._build_gamma(collection, target_shard)
        return TxId(LocalPart(collection.label, target_shard, seq), gamma)

    def assign_block(
        self, collection: "DataCollection", count: int, shard: int | None = None
    ) -> tuple[TxId, ...]:
        """Assign a consecutive run of IDs for a batch of transactions.

        All transactions in the run share one γ snapshot (no commits
        can interleave between the assignments).
        """
        if count < 1:
            raise DataModelError("a block needs at least one transaction")
        return tuple(self.assign(collection, shard) for _ in range(count))

    def _build_gamma(
        self, collection: "DataCollection", shard: int
    ) -> tuple[LocalPart, ...]:
        dependencies = self.registry.order_dependencies(collection)
        entries: list[LocalPart] = []
        captured: dict[tuple[str, int], int] = {}
        if self.reduce_gamma:
            # Nearest-first (narrowest scope first): an intermediate can
            # transitively capture what the root would have said.
            ordered = sorted(dependencies, key=lambda c: (len(c.scope), c.label))
        else:
            ordered = sorted(dependencies, key=lambda c: (-len(c.scope), c.label))
        for dependency in ordered:
            dep_shard = self._shard_of(dependency, None)
            dep_key = (dependency.label, dep_shard)
            last_seq = self._committed.get(dep_key, 0)
            if last_seq == 0:
                continue
            if self.reduce_gamma and captured.get(dep_key) == last_seq:
                continue
            entries.append(LocalPart(dependency.label, dep_shard, last_seq))
            if self.reduce_gamma:
                recorded = self._last_gamma.get(dep_key, {})
                for inner_key, inner_seq in recorded.items():
                    captured.setdefault(inner_key, inner_seq)
        entries.sort(key=lambda p: (p.label, p.shard))
        return tuple(entries)

    # ------------------------------------------------------------------
    # validation (validator side)
    # ------------------------------------------------------------------
    def validate(self, tx_id: TxId) -> None:
        """Check an ID proposed by another cluster's primary.

        Local rule: the sequence must be exactly the next one for the
        collection-shard.  Global rule: γ must be monotone with respect
        to the γ of the previous transaction committed on the same
        collection-shard (t → t' requires m_q <= m'_q on shared
        entries, §3.3).  γ entries *ahead* of this cluster's knowledge
        are legal — the proposer has seen commits we have not; the
        multi-versioned store lets execution read exactly the captured
        versions once they arrive.
        """
        key = tx_id.alpha.key()
        expected = self._committed.get(key, 0) + 1
        if tx_id.alpha.seq != expected:
            raise ConsistencyViolation(
                f"local consistency: expected seq {expected} for "
                f"{key[0]}#{key[1]}, got {tx_id.alpha.seq}"
            )
        previous_gamma = self._last_gamma.get(key)
        if not previous_gamma:
            return
        new_gamma = tx_id.gamma_map()
        probe, other = (
            (previous_gamma, new_gamma)
            if len(previous_gamma) <= len(new_gamma)
            else (new_gamma, previous_gamma)
        )
        for shared_key in probe:
            if (
                shared_key in other
                and new_gamma[shared_key] < previous_gamma[shared_key]
            ):
                raise ConsistencyViolation(
                    f"global consistency: gamma for {shared_key} went "
                    f"backwards ({previous_gamma[shared_key]} -> "
                    f"{new_gamma[shared_key]})"
                )

    def validate_chain(self, ids: Iterable[TxId]) -> None:
        """Validate a consecutive run of IDs on one collection-shard."""
        previous: TxId | None = None
        for tx_id in ids:
            if previous is None:
                self.validate(tx_id)
            else:
                if tx_id.alpha.key() != previous.alpha.key():
                    raise ConsistencyViolation(
                        "block IDs span multiple collection-shards"
                    )
                if tx_id.alpha.seq != previous.alpha.seq + 1:
                    raise ConsistencyViolation(
                        f"block IDs not consecutive: {previous.alpha} then "
                        f"{tx_id.alpha}"
                    )
                prev_gamma = previous.gamma_map()
                gamma = tx_id.gamma_map()
                if prev_gamma and gamma:
                    probe, other = (
                        (prev_gamma, gamma)
                        if len(prev_gamma) <= len(gamma)
                        else (gamma, prev_gamma)
                    )
                    for key in probe:
                        if key in other and gamma[key] < prev_gamma[key]:
                            raise ConsistencyViolation(
                                f"gamma regressed within block on {key}"
                            )
            previous = tx_id

    def is_next(self, tx_id: TxId) -> bool:
        key = tx_id.alpha.key()
        return tx_id.alpha.seq == self._committed.get(key, 0) + 1

    # ------------------------------------------------------------------
    # commitment
    # ------------------------------------------------------------------
    def commit(self, tx_id: TxId) -> None:
        """Record a committed transaction; sequences move monotonically."""
        key = tx_id.alpha.key()
        current = self._committed.get(key, 0)
        if tx_id.alpha.seq <= current:
            raise ConsistencyViolation(
                f"commit replay: {tx_id.alpha} but already at {current}"
            )
        self._committed[key] = tx_id.alpha.seq
        if self._assigned.get(key, 0) < tx_id.alpha.seq:
            self._assigned[key] = tx_id.alpha.seq
        self._last_gamma[key] = tx_id.gamma_map()

    def committed_state(self) -> dict[tuple[str, int], int]:
        """Snapshot of last committed sequence per collection-shard."""
        return dict(self._committed)

    def last_committed(self, key: tuple[str, int]) -> int:
        """Last committed sequence for one collection-shard — the
        copy-free form of ``committed_state().get(key, 0)`` (the commit
        pipeline probes this once per buffered transaction)."""
        return self._committed.get(key, 0)

    def observe(self, entries: Iterable[LocalPart]) -> None:
        """Fast-forward knowledge of other collections' commits.

        Used when a validator learns (through a γ it accepted after
        consensus) that a collection it maintains has advanced.
        """
        for entry in entries:
            key = entry.key()
            if entry.seq > self._committed.get(key, 0):
                self._committed[key] = entry.seq
