"""Collaboration workflows (§3.2, Figure 2).

A workflow is a named collaboration among a set of enterprises.  Its
data model always contains the root collection (all members) and one
local collection per member; intermediate collections are created on
demand when a subset starts a confidential collaboration.  Collections
live in the deployment-wide :class:`CollectionRegistry`, so two
workflows sharing enterprises share those enterprises' collections —
the paper's cross-workflow consistency rule (Figure 2c: d_L, d_M and
d_LM are shared between the K/L/M and L/M/N workflows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.datamodel.collections import (
    CollectionRegistry,
    DataCollection,
    scope_label,
)
from repro.errors import DataModelError


@dataclass
class CollaborationWorkflow:
    """One collaboration workflow and its view of the collection lattice."""

    name: str
    enterprises: frozenset[str]
    registry: CollectionRegistry
    contract: str = "kv"
    num_shards: int = 1
    _scopes: set[frozenset[str]] = field(default_factory=set)

    @classmethod
    def create(
        cls,
        name: str,
        enterprises: Iterable[str],
        registry: CollectionRegistry,
        contract: str = "kv",
        num_shards: int = 1,
    ) -> "CollaborationWorkflow":
        """Set up the mandatory collections: root + one local per member."""
        members = frozenset(enterprises)
        if len(members) < 1:
            raise DataModelError("a workflow needs at least one enterprise")
        workflow = cls(name, members, registry, contract, num_shards)
        workflow._add_scope(members)
        for enterprise in members:
            workflow._add_scope(frozenset((enterprise,)))
        return workflow

    def _add_scope(self, scope: frozenset[str]) -> DataCollection:
        collection = self.registry.create(
            scope, contract=self.contract, num_shards=self.num_shards
        )
        self._scopes.add(scope)
        return collection

    @property
    def root(self) -> DataCollection:
        """The public collection maintained by every member."""
        return self.registry.get(self.enterprises)

    def local(self, enterprise: str) -> DataCollection:
        if enterprise not in self.enterprises:
            raise DataModelError(
                f"{enterprise!r} is not part of workflow {self.name!r}"
            )
        return self.registry.get(frozenset((enterprise,)))

    def create_private_collaboration(
        self, scope: Iterable[str]
    ) -> DataCollection:
        """Create an intermediate collection for a confidential subset (R1)."""
        members = frozenset(scope)
        if not members < self.enterprises:
            raise DataModelError(
                f"scope {scope_label(members)} must be a proper subset of "
                f"workflow members {scope_label(self.enterprises)}"
            )
        if len(members) < 2:
            raise DataModelError(
                "a private collaboration needs at least two enterprises; "
                "single-enterprise data goes to the local collection"
            )
        return self._add_scope(members)

    def collections(self) -> list[DataCollection]:
        """All collections this workflow's transactions may target."""
        return sorted(
            (self.registry.get(s) for s in self._scopes),
            key=lambda c: (-len(c.scope), c.label),
        )

    def involves(self, enterprise: str) -> bool:
        return enterprise in self.enterprises
