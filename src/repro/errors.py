"""Exception hierarchy for the Qanaat reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ConfigurationError(ReproError):
    """A topology or protocol configuration is invalid."""


class CryptoError(ReproError):
    """Signature, threshold-signature, or secret-sharing failure."""


class InvalidSignature(CryptoError):
    """A signature failed verification."""


class DataModelError(ReproError):
    """Violation of data-collection or ordering rules."""


class AccessViolation(DataModelError):
    """An enterprise touched a collection it is not involved in."""


class ConsistencyViolation(DataModelError):
    """Local or global consistency of transaction IDs was violated."""


class LedgerError(ReproError):
    """The blockchain ledger rejected or failed to verify a record."""


class ConsensusError(ReproError):
    """A consensus protocol reached an illegal state."""


class WorkloadError(ReproError):
    """A workload generator was misconfigured."""


class SimulationLimitError(ReproError):
    """A simulator run hit its event budget — almost always a protocol
    bug scheduling a timer loop.  The message carries the virtual time
    and the head of the event queue so the loop is identifiable."""


class PartitionError(ReproError):
    """A shard-parallel partitioning rule was violated: scheduling
    outside any partition context, or touching (cancelling into) a
    kernel owned by another worker."""


class StorageError(ReproError):
    """A durable storage backend rejected or failed an operation."""


class InvariantViolation(ReproError):
    """An observability probe caught a broken protocol invariant
    (sequence regression, conflicting quorum decision, divergent
    shared chains).  Raised only while tracing is enabled; the message
    carries the offending trace spans."""


class AssetError(ReproError):
    """A confidential-asset operation was invalid (bad proof, double
    spend, unbalanced transfer)."""
