"""Privacy firewall (§3.4): separating agreement from execution.

Byzantine clusters split into 3f+1 *ordering* nodes (who talk to
clients but never see plaintext) and 2g+1 *execution* nodes (who see
plaintext but are physically wired only to the filter rows).  ``h+1``
rows of ``h+1`` filter nodes sit between them; at least one row is
entirely non-faulty, so any message a malicious execution node tries
to smuggle out is dropped before it reaches a node that can reach a
client.
"""

from repro.firewall.execution import ExecutionNode
from repro.firewall.filters import ByzantineFilterNode, FilterNode
from repro.firewall.topology import FirewallTopology, build_firewall

__all__ = [
    "FilterNode",
    "ByzantineFilterNode",
    "ExecutionNode",
    "FirewallTopology",
    "build_firewall",
]
