"""Execution nodes behind the privacy firewall (§3.4, §4.2).

2g+1 execution nodes maintain the data collections and the ledger and
deterministically execute transactions in the order the ordering nodes
certified.  They are physically wired only to the top filter row: they
can never message a client or an ordering node directly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.consensus.messages import ExecOrder, ExecReply, ReplyCertMsg
from repro.core.executor import ExecutionResult, ExecutionUnit
from repro.crypto.envelope import seal
from repro.crypto.signatures import sign as crypto_sign
from repro.ledger.certificate import ReplyCertificate
from repro.sim.node import SimNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Deployment


class ExecutionNode(SimNode):
    """One execution replica of a Byzantine cluster."""

    def __init__(
        self,
        node_id: str,
        deployment: "Deployment",
        cluster_name: str,
        shard: int,
        cost_model=None,
    ):
        super().__init__(node_id, deployment.sim, deployment.network, cost_model)
        self.deployment = deployment
        self.key_registry = deployment.key_registry
        deployment.key_registry.enroll(node_id)
        self.cluster_name = cluster_name
        self.order_quorum = deployment.config.local_majority
        self.ordering_members: frozenset[str] = frozenset()
        self.filter_row: tuple[str, ...] = ()  # top row, our only peers
        #: Fig 4(b): crash-only executors reply to clients directly and
        #: inform the ordering nodes (§3.4) — no filters in the path.
        self.direct_reply = False
        self.executor = ExecutionUnit(
            identity=node_id,
            collections=deployment.collections,
            contracts=deployment.contracts,
            schema=deployment.schema,
            shard=shard,
            on_executed=self._on_executed,
            backend=deployment.make_backend(node_id),
        )

    def on_message(self, msg: Any, src: str) -> None:
        if isinstance(msg, ExecOrder):
            self._on_exec_order(msg, src)
        # Everything else is out of protocol for an execution node.

    def _on_exec_order(self, msg: ExecOrder, src: str) -> None:
        for entry in msg.entries:
            info = self.deployment.directory.clusters.get(
                entry.certificate.cluster
            )
            if info is not None:
                valid = entry.certificate.verify(
                    self.key_registry,
                    info.local_majority,
                    frozenset(info.members),
                )
            else:
                valid = entry.certificate.verify(
                    self.key_registry, self.order_quorum
                )
            if not valid:
                continue
            self.charge(self.cost_model.execution_time(1))
            if self.executor.backend is not None and self.executor.backend.durable:
                self.charge(self.cost_model.journal_time(1))
            self.executor.commit(
                entry.otx, entry.tx_id, entry.certificate, entry.reply_to_client
            )

    def _on_executed(self, result: ExecutionResult) -> None:
        if not result.reply_to_client:
            return
        tx = result.otx.tx
        sealed = seal(result.result, {tx.client})
        signed = crypto_sign(
            self.key_registry, self.node_id, sealed.ciphertext_digest
        )
        if self.direct_reply:
            # Fig 4(b): a crash-only executor's word is good — one
            # self-signed certificate, straight to the client, plus a
            # copy to the ordering nodes for retransmission caching.
            certificate = ReplyCertificate(
                cluster=self.cluster_name,
                request_id=tx.request_id,
                result_digest=sealed.ciphertext_digest,
                signatures=(signed,),
            )
            msg = ReplyCertMsg(certificate, tx.client, tx.timestamp, sealed)
            self.send(tx.client, msg)
            # Sorted: multicasting in frozenset order would draw link-
            # latency jitter in hash-randomized order, making runs
            # irreproducible across processes.
            self.multicast(sorted(self.ordering_members), msg)
            return
        reply = ExecReply(
            request_id=tx.request_id,
            client=tx.client,
            timestamp=tx.timestamp,
            result_digest=sealed.ciphertext_digest,
            signed=signed,
            result=sealed,
        )
        self.multicast(self.filter_row, reply)


class LeakyExecutionNode(ExecutionNode):
    """A compromised execution node that tries to exfiltrate plaintext.

    After executing, it attempts to send the decrypted operation and
    result to an accomplice (a client or ordering node).  The network's
    physical wiring and the filter rows must stop it — the
    confidentiality tests assert the accomplice never receives it.
    """

    def __init__(self, *args, accomplice: str = "", **kwargs):
        super().__init__(*args, **kwargs)
        self.accomplice = accomplice
        self.leak_attempts = 0

    def _on_executed(self, result: ExecutionResult) -> None:
        if self.accomplice:
            self.leak_attempts += 1
            leak = {
                "LEAK": True,
                "request_id": result.otx.tx.request_id,
                "plaintext_result": result.result,
            }
            # Attempt 1: direct to the accomplice (no physical route).
            self.send(self.accomplice, leak)
            # Attempt 2: smuggle through the filters.
            self.multicast(self.filter_row, leak)
        super()._on_executed(result)
