"""Filter nodes: the rows of the privacy firewall.

Filters verify and forward exactly two message shapes:

- upward  (ordering -> execution): :class:`ExecOrder` carrying a valid
  commit certificate from 2f+1 ordering nodes;
- downward (execution -> ordering): for the top row, ``g+1`` matching
  signed :class:`ExecReply` messages are condensed into a
  :class:`ReplyCertificate`; lower rows verify and forward the
  certificate.

Anything else — in particular a malicious execution node's attempt to
exfiltrate plaintext — is dropped.  That is the leakage-prevention
property (§3.4): a row of honest filters lets only certified protocol
messages through.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.consensus.messages import ExecOrder, ExecReply, ReplyCertMsg
from repro.crypto.signatures import verify as crypto_verify
from repro.ledger.certificate import ReplyCertificate
from repro.sim.node import SimNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Deployment


class FilterNode(SimNode):
    """One filter in one row of a cluster's privacy firewall.

    ``CPU_DISCOUNT`` reflects that filters only verify certificates and
    hashes — they never deserialize or execute application payloads.
    """

    CPU_DISCOUNT = 0.5

    def __init__(
        self,
        node_id: str,
        deployment: "Deployment",
        cluster_name: str,
        row: int,
        is_top_row: bool,
        cost_model=None,
    ):
        super().__init__(node_id, deployment.sim, deployment.network, cost_model)
        self.deployment = deployment
        self.key_registry = deployment.key_registry
        self.cluster_name = cluster_name
        self.row = row
        self.is_top_row = is_top_row
        self.order_quorum = deployment.config.local_majority
        self.reply_quorum = deployment.config.g + 1
        self.ordering_members: frozenset[str] = frozenset()
        self.execution_members: frozenset[str] = frozenset()
        self.peers_above: tuple[str, ...] = ()
        self.peers_below: tuple[str, ...] = ()
        self._forwarded_up: set[tuple] = set()
        self._forwarded_down: set[int] = set()
        self._reply_shares: dict[int, dict[str, ExecReply]] = {}
        self.dropped_messages = 0

    def on_message(self, msg: Any, src: str) -> None:
        if isinstance(msg, ExecOrder):
            self._on_exec_order(msg, src)
        elif isinstance(msg, ExecReply) and self.is_top_row:
            self._on_exec_reply(msg, src)
        elif isinstance(msg, ReplyCertMsg):
            self._on_reply_cert(msg, src)
        else:
            # Unknown or out-of-protocol traffic: filtered (§3.4).
            self.dropped_messages += 1

    # ------------------------------------------------------------------
    # upward path
    # ------------------------------------------------------------------
    def _order_cert_valid(self, certificate) -> bool:
        """Verify a commit certificate against its signing cluster.

        A cross-enterprise transaction carries the coordinator
        cluster's certificate, so membership and quorum come from the
        certificate's cluster, not from this firewall's own cluster.
        """
        info = self.deployment.directory.clusters.get(certificate.cluster)
        if info is not None:
            return certificate.verify(
                self.key_registry, info.local_majority, frozenset(info.members)
            )
        return certificate.verify(self.key_registry, self.order_quorum)

    def _on_exec_order(self, msg: ExecOrder, src: str) -> None:
        passed = []
        for entry in msg.entries:
            alpha = entry.tx_id.alpha
            key = (alpha.label, alpha.shard, alpha.seq)
            if key in self._forwarded_up:
                continue
            if not self._order_cert_valid(entry.certificate):
                self.dropped_messages += 1
                continue
            self._forwarded_up.add(key)
            passed.append(entry)
        if passed:
            self.multicast(self.peers_above, ExecOrder(tuple(passed)))

    # ------------------------------------------------------------------
    # downward path
    # ------------------------------------------------------------------
    def _on_exec_reply(self, msg: ExecReply, src: str) -> None:
        if src not in self.execution_members:
            self.dropped_messages += 1
            return
        if msg.request_id in self._forwarded_down:
            return
        if not crypto_verify(self.key_registry, msg.signed, msg.result_digest):
            self.dropped_messages += 1
            return
        shares = self._reply_shares.setdefault(msg.request_id, {})
        shares[src] = msg
        matching = [
            m for m in shares.values() if m.result_digest == msg.result_digest
        ]
        if len(matching) < self.reply_quorum:
            return
        certificate = ReplyCertificate(
            cluster=self.cluster_name,
            request_id=msg.request_id,
            result_digest=msg.result_digest,
            signatures=tuple(m.signed for m in matching),
        )
        self._forwarded_down.add(msg.request_id)
        del self._reply_shares[msg.request_id]
        self.multicast(
            self.peers_below,
            ReplyCertMsg(certificate, msg.client, msg.timestamp, msg.result),
        )

    def _on_reply_cert(self, msg: ReplyCertMsg, src: str) -> None:
        if src not in self.peers_above:
            self.dropped_messages += 1
            return
        if msg.certificate.request_id in self._forwarded_down:
            return
        if not msg.certificate.verify(
            self.key_registry, self.reply_quorum, self.execution_members or None
        ):
            self.dropped_messages += 1
            return
        self._forwarded_down.add(msg.certificate.request_id)
        self.multicast(self.peers_below, msg)


class ByzantineFilterNode(FilterNode):
    """A compromised filter: forwards whatever it is told, including
    leaked plaintext.  Used by the confidentiality tests to show the
    honest rows still contain the leak."""

    def on_message(self, msg: Any, src: str) -> None:
        if isinstance(msg, (ExecOrder, ExecReply, ReplyCertMsg)):
            super().on_message(msg, src)
        else:
            # Collude: pass the smuggled payload along toward clients.
            self.multicast(self.peers_below, msg)
