"""Secret-sharing-based confidential storage (§3.4, alternative 1).

The intrusion-tolerance technique Qanaat considered and rejected:
clients split values with an (f+1, n) threshold scheme and store one
share per node, so up to f compromised nodes learn nothing.  The
catch, which the paper uses to justify the privacy firewall, is that
nodes cannot *compute* on shares: only store/retrieve (and, as in
Belisarius, addition) are possible — no general transactions.

This module exists to demonstrate exactly that trade-off (see the
tests), completing the design space of §3.4.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.secret_sharing import combine_shares, split_secret
from repro.errors import CryptoError


@dataclass
class ShareServer:
    """One storage node holding a single share per key."""

    name: str
    shares: dict[str, tuple[int, int]] = field(default_factory=dict)
    compromised: bool = False

    def store(self, key: str, share: tuple[int, int]) -> None:
        self.shares[key] = share

    def retrieve(self, key: str) -> tuple[int, int] | None:
        return self.shares.get(key)

    def add_constant(self, key: str, delta: int) -> None:
        """Homomorphic addition on shares (the Belisarius extension).

        Shamir shares are points on a polynomial with the secret at
        x=0; adding ``delta`` to every share's y adds it to the secret.
        """
        share = self.shares.get(key)
        if share is not None:
            x, y = share
            self.shares[key] = (x, y + delta)


class SecretShareStore:
    """A (f+1, n) confidential store over ``2f+1`` servers."""

    def __init__(self, f: int = 1, seed: int = 0):
        self.f = f
        self.n = 2 * f + 1
        self.threshold = f + 1
        self._seed = seed
        self._counter = 0
        self.servers = [ShareServer(f"s{i}") for i in range(self.n)]

    def put(self, key: str, value: int) -> None:
        """Split and distribute; no single server learns the value."""
        self._counter += 1
        shares = split_secret(
            value, self.threshold, self.n, seed=self._seed + self._counter
        )
        for server, share in zip(self.servers, shares):
            server.store(key, share)

    def get(self, key: str) -> int:
        """Reconstruct from any f+1 live servers."""
        collected = []
        for server in self.servers:
            share = server.retrieve(key)
            if share is not None:
                collected.append(share)
            if len(collected) == self.threshold:
                return combine_shares(collected)
        raise CryptoError(f"not enough shares to reconstruct {key!r}")

    def add(self, key: str, delta: int) -> None:
        """The only supported computation: add a public constant."""
        for server in self.servers:
            server.add_constant(key, delta)

    def leaked_to(self, compromised: list[int]) -> dict[str, int] | None:
        """What an attacker holding ``compromised`` servers learns.

        Returns the reconstructed plaintext map if the attacker has a
        quorum, else None — fewer than f+1 shares reveal nothing.
        """
        if len(compromised) < self.threshold:
            return None
        plaintext: dict[str, int] = {}
        first = self.servers[compromised[0]]
        for key in first.shares:
            shares = [self.servers[i].retrieve(key) for i in compromised]
            plaintext[key] = combine_shares(shares[: self.threshold])
        return plaintext
