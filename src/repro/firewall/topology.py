"""Firewall assembly and physical wiring (§3.4, Figure 4d).

For one cluster: ordering nodes at the bottom, ``h+1`` rows of ``h+1``
filters, execution nodes at the top.  Each filter is physically
connected only to the rows directly above and below; execution nodes
only to the top row.  The wiring is enforced by the network's link
restrictions, so "cannot talk to a client" is a property of the
simulated hardware, not of node software behaving nicely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.firewall.execution import ExecutionNode
from repro.firewall.filters import FilterNode

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Deployment


@dataclass
class FirewallTopology:
    """Handles to one cluster's firewall components."""

    cluster_name: str
    rows: list[list[FilterNode]]          # rows[0] = bottom (ordering side)
    execution_nodes: list[ExecutionNode]

    @property
    def bottom_row_ids(self) -> tuple[str, ...]:
        """Where ordering nodes push committed batches: the bottom
        filter row, or the execution nodes themselves in Fig 4(b)."""
        if not self.rows:
            return tuple(e.node_id for e in self.execution_nodes)
        return tuple(f.node_id for f in self.rows[0])

    @property
    def top_row_ids(self) -> tuple[str, ...]:
        return tuple(f.node_id for f in self.rows[-1])

    def all_filter_ids(self) -> list[str]:
        return [f.node_id for row in self.rows for f in row]


def build_firewall(
    deployment: "Deployment",
    cluster_name: str,
    shard: int,
    ordering_members: tuple[str, ...],
    cost_model=None,
) -> FirewallTopology:
    """Create execution nodes (and filters, if any) for one cluster.

    Covers the separated configurations of Figure 4:

    - Fig 4(b): ``filter_rows == 0`` — g+1 crash-only execution nodes
      wired straight to the ordering nodes, replying to clients
      directly (no leakage by the crash assumption, so no filters);
    - Fig 4(c): one row of h+1 crash-only filters;
    - Fig 4(d): h+1 rows of h+1 Byzantine filters.
    """
    config = deployment.config
    n_rows = config.filter_rows
    per_row = config.h + 1
    if n_rows == 0:
        return _build_direct_execution(
            deployment, cluster_name, shard, ordering_members, cost_model
        )
    rows: list[list[FilterNode]] = []
    for row in range(n_rows):
        filters = [
            FilterNode(
                f"{cluster_name}.f{row}.{col}",
                deployment,
                cluster_name,
                row,
                is_top_row=(row == n_rows - 1),
                cost_model=cost_model,
            )
            for col in range(per_row)
        ]
        rows.append(filters)

    execution_nodes = [
        ExecutionNode(
            f"{cluster_name}.e{i}",
            deployment,
            cluster_name,
            shard,
            cost_model=cost_model,
        )
        for i in range(config.execution_nodes_per_cluster)
    ]

    exec_ids = tuple(e.node_id for e in execution_nodes)
    ordering_set = frozenset(ordering_members)
    exec_set = frozenset(exec_ids)

    for row_index, row in enumerate(rows):
        below = (
            ordering_members
            if row_index == 0
            else tuple(f.node_id for f in rows[row_index - 1])
        )
        above = (
            exec_ids
            if row_index == n_rows - 1
            else tuple(f.node_id for f in rows[row_index + 1])
        )
        for filter_node in row:
            filter_node.peers_below = below
            filter_node.peers_above = above
            filter_node.ordering_members = ordering_set
            filter_node.execution_members = exec_set
            deployment.network.restrict_links(
                filter_node.node_id, set(below) | set(above)
            )

    top_ids = tuple(f.node_id for f in rows[-1])
    for exec_node in execution_nodes:
        exec_node.filter_row = top_ids
        exec_node.ordering_members = ordering_set
        deployment.network.restrict_links(exec_node.node_id, set(top_ids))

    return FirewallTopology(cluster_name, rows, execution_nodes)


def _build_direct_execution(
    deployment: "Deployment",
    cluster_name: str,
    shard: int,
    ordering_members: tuple[str, ...],
    cost_model=None,
) -> FirewallTopology:
    """Fig 4(b): crash-only execution nodes, no filters.

    "If execution nodes are crash-only ... there is no need to add a
    privacy firewall and execution nodes can directly send the reply to
    the client and inform ordering nodes about execution" (§3.4).
    Their links are deliberately *unrestricted*: the crash assumption,
    not wiring, is what rules out leakage here.
    """
    config = deployment.config
    execution_nodes = [
        ExecutionNode(
            f"{cluster_name}.e{i}",
            deployment,
            cluster_name,
            shard,
            cost_model=cost_model,
        )
        for i in range(config.execution_nodes_per_cluster)
    ]
    ordering_set = frozenset(ordering_members)
    for exec_node in execution_nodes:
        exec_node.filter_row = ()
        exec_node.ordering_members = ordering_set
        exec_node.direct_reply = True
    return FirewallTopology(cluster_name, [], execution_nodes)
