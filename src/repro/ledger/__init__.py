"""Blockchain ledger (§3.3): a DAG of per-collection chains.

Each cluster maintains one :class:`DagLedger` holding the transaction
records of every collection(-shard) it maintains.  Records of one
collection form a hash chain (local consistency); γ entries link the
chains into a DAG (global consistency).  Shared collections are
replicated on every involved enterprise in the same order — the audit
helpers verify exactly that.
"""

from repro.ledger.archive import (
    ArchivedLedgerView,
    ArchiveSegment,
    LedgerArchiver,
    SegmentManifest,
    load_segment_manifests,
)
from repro.ledger.block import TransactionRecord
from repro.ledger.certificate import CommitCertificate, ReplyCertificate
from repro.ledger.dag import DagLedger
from repro.ledger.queries import (
    MembershipProof,
    RangeProof,
    attested_head,
    prove_membership,
    prove_range,
    verify_membership,
    verify_range,
)
from repro.ledger.validation import (
    audit_ledger,
    shared_chains_consistent,
    verify_global_consistency,
)

__all__ = [
    "ArchiveSegment",
    "ArchivedLedgerView",
    "LedgerArchiver",
    "SegmentManifest",
    "load_segment_manifests",
    "MembershipProof",
    "RangeProof",
    "TransactionRecord",
    "attested_head",
    "prove_membership",
    "prove_range",
    "verify_membership",
    "verify_range",
    "CommitCertificate",
    "ReplyCertificate",
    "DagLedger",
    "audit_ledger",
    "verify_global_consistency",
    "shared_chains_consistent",
]
