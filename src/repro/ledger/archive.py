"""Cold storage for ledger history: verifiable archives + pruning.

The blockchain ledger is append-only and immutable (§3.3), but nodes
need not keep every record hot forever: once a chain prefix is covered
by a stable checkpoint, it can move to an *archive segment* — the
records plus the digest anchors that let anyone re-verify the segment
and its splice point against the live chain.  Provenance queries
(:mod:`repro.ledger.provenance`) keep working across the boundary
through :class:`ArchivedLedgerView`.

Verification invariants:

- within a segment, each record's ``prev_content`` equals its
  predecessor's content digest (and sequences are consecutive);
- the first record of a segment chains to the segment's
  ``anchor_digest`` (the content head before the segment, genesis for
  the first one);
- the live chain's first retained record chains to the newest
  segment's ``head_digest``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from repro.crypto.hashing import digest
from repro.errors import LedgerError
from repro.ledger.block import TransactionRecord
from repro.ledger.dag import GENESIS_DIGEST, DagLedger

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.base import StorageBackend

#: Storage namespaces holding archived-segment manifests are kept
#: apart from collection-shard journal namespaces by this label prefix
#: (collection labels are enterprise-name strings and never contain a
#: colon).
ARCHIVE_NAMESPACE_PREFIX = "archive:"


@dataclass(frozen=True)
class ArchiveSegment:
    """An immutable run of archived records of one collection-shard."""

    label: str
    shard: int
    from_seq: int                    # first archived sequence (inclusive)
    to_seq: int                      # last archived sequence (inclusive)
    anchor_digest: str               # content head before from_seq
    head_digest: str                 # content digest of the last record
    records: tuple[TransactionRecord, ...]

    def __len__(self) -> int:
        return len(self.records)

    def record(self, seq: int) -> TransactionRecord:
        if not self.from_seq <= seq <= self.to_seq:
            raise LedgerError(
                f"segment {self.label}#{self.shard}"
                f"[{self.from_seq}..{self.to_seq}] has no seq {seq}"
            )
        return self.records[seq - self.from_seq]

    def verify(self) -> bool:
        """Re-verify the content chain from the anchor to the head."""
        previous = self.anchor_digest
        expected_seq = self.from_seq
        for record in self.records:
            if record.seq != expected_seq:
                return False
            if record.prev_content != previous:
                return False
            previous = record.content_digest()
            expected_seq += 1
        return previous == self.head_digest


@dataclass(frozen=True)
class SegmentManifest:
    """Durable projection of one :class:`ArchiveSegment`.

    Full records carry live objects (transactions, certificates) that
    do not belong on disk; the manifest keeps the digest skeleton —
    anchor, per-record body digests, head — which is exactly enough to
    re-verify the segment's content chain after a restart
    (``content = H(body, prev)``, so the chain walks from body digests
    alone, the same trick :mod:`repro.ledger.queries` uses).
    """

    label: str
    shard: int
    from_seq: int
    to_seq: int
    anchor_digest: str
    head_digest: str
    body_digests: tuple[str, ...]

    @classmethod
    def of(cls, segment: ArchiveSegment) -> "SegmentManifest":
        return cls(
            label=segment.label,
            shard=segment.shard,
            from_seq=segment.from_seq,
            to_seq=segment.to_seq,
            anchor_digest=segment.anchor_digest,
            head_digest=segment.head_digest,
            body_digests=tuple(r.body_digest() for r in segment.records),
        )

    def verify(self) -> bool:
        """Re-walk the content chain from the anchor to the head."""
        if len(self.body_digests) != self.to_seq - self.from_seq + 1:
            return False
        previous = self.anchor_digest
        for body in self.body_digests:
            previous = digest([body, previous])
        return previous == self.head_digest

    def to_payload(self) -> dict:
        return {
            "label": self.label,
            "shard": self.shard,
            "from_seq": self.from_seq,
            "to_seq": self.to_seq,
            "anchor": self.anchor_digest,
            "head": self.head_digest,
            "bodies": list(self.body_digests),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SegmentManifest":
        return cls(
            label=payload["label"],
            shard=payload["shard"],
            from_seq=payload["from_seq"],
            to_seq=payload["to_seq"],
            anchor_digest=payload["anchor"],
            head_digest=payload["head"],
            body_digests=tuple(payload["bodies"]),
        )


def archive_namespace(label: str, shard: int) -> tuple[str, int]:
    """The storage namespace holding one chain's segment manifests."""
    return (ARCHIVE_NAMESPACE_PREFIX + label, shard)


def load_segment_manifests(
    backend: "StorageBackend", label: str, shard: int = 0
) -> list[SegmentManifest]:
    """Read back (and verify) every persisted manifest for one chain."""
    from repro.storage.base import KIND_SEGMENT

    manifests = []
    for record in backend.load(archive_namespace(label, shard)).records:
        if record.kind != KIND_SEGMENT:
            continue
        manifest = SegmentManifest.from_payload(record.value)
        if not manifest.verify():
            raise LedgerError(
                f"persisted segment {label}#{shard}"
                f"[{manifest.from_seq}..{manifest.to_seq}] fails verification"
            )
        manifests.append(manifest)
    return manifests


class LedgerArchiver:
    """Moves verified chain prefixes of one ledger into segments.

    The archiver owns the segments it produced; the ledger keeps only
    the live suffix.  ``archive_chain`` refuses to archive records that
    would break continuity (it always archives from the current base).
    With a storage backend attached, every produced segment's manifest
    is journaled so cold history stays verifiable across restarts.
    """

    def __init__(self, ledger: DagLedger, backend: "StorageBackend | None" = None):
        self.ledger = ledger
        self.backend = backend
        self._segments: dict[tuple[str, int], list[ArchiveSegment]] = {}
        self._manifests: dict[tuple[str, int], list[SegmentManifest]] = {}

    def segments(self, label: str, shard: int = 0) -> list[ArchiveSegment]:
        return list(self._segments.get((label, shard), ()))

    def manifests(self, label: str, shard: int = 0) -> list[SegmentManifest]:
        """Digest skeletons of every segment ever archived — these
        survive :meth:`evict_records`, so continuity stays checkable
        after the full records are dropped from memory."""
        return list(self._manifests.get((label, shard), ()))

    def archived_upto(self, label: str, shard: int = 0) -> int:
        manifests = self._manifests.get((label, shard))
        return manifests[-1].to_seq if manifests else 0

    def archive_chain(
        self, label: str, shard: int, upto_seq: int
    ) -> ArchiveSegment | None:
        """Archive the chain prefix up to ``upto_seq`` and prune it from
        the live ledger.  Returns the new segment (None if nothing to
        do).  Raises if the prefix fails verification — a corrupt
        ledger must never silently turn into a trusted archive."""
        key = (label, shard)
        base = self.ledger.base(label, shard)
        if upto_seq <= base:
            return None
        segments = self._segments.setdefault(key, [])
        manifests = self._manifests.setdefault(key, [])
        anchor = manifests[-1].head_digest if manifests else GENESIS_DIGEST
        first = self.ledger.record(label, shard, base + 1)
        if first.prev_content != anchor:
            raise LedgerError(
                f"archive discontinuity on {label}#{shard}: live chain "
                f"does not extend the newest segment"
            )
        records = tuple(
            self.ledger.record(label, shard, seq)
            for seq in range(base + 1, upto_seq + 1)
        )
        segment = ArchiveSegment(
            label=label,
            shard=shard,
            from_seq=base + 1,
            to_seq=upto_seq,
            anchor_digest=anchor,
            head_digest=records[-1].content_digest(),
            records=records,
        )
        if not segment.verify():
            raise LedgerError(
                f"refusing to archive unverifiable prefix of {label}#{shard}"
            )
        self.ledger.prune(label, shard, upto_seq)
        segments.append(segment)
        manifest = SegmentManifest.of(segment)
        manifests.append(manifest)
        if self.backend is not None:
            from repro.storage.base import KIND_SEGMENT, LogRecord

            self.backend.append(
                archive_namespace(label, shard),
                LogRecord(
                    segment.to_seq, KIND_SEGMENT, None, manifest.to_payload()
                ),
            )
        return segment

    def evict_records(self, label: str, shard: int = 0) -> int:
        """Drop the full in-memory records of every archived segment of
        one chain, keeping only the digest-skeleton manifests.

        This is the archiver's memory release valve for very long
        chains (the 1M-record analytics fill): once a segment has been
        ingested downstream (persisted manifest, analytics tables), the
        live objects serve no further purpose.  Returns how many
        records were dropped.  Continuity stays verifiable through the
        manifests; positional reads of evicted sequences raise."""
        segments = self._segments.pop((label, shard), [])
        return sum(len(segment) for segment in segments)

    def verify_continuity(self, label: str, shard: int = 0) -> bool:
        """Segments chain to each other and to the live chain.

        Walks the manifests (which outlive :meth:`evict_records`), so
        the digest-fold check keeps working after the full records are
        gone."""
        previous = GENESIS_DIGEST
        expected_from = 1
        for manifest in self._manifests.get((label, shard), ()):
            if manifest.from_seq != expected_from:
                return False
            if manifest.anchor_digest != previous or not manifest.verify():
                return False
            previous = manifest.head_digest
            expected_from = manifest.to_seq + 1
        live = self.ledger.chain(label, shard)
        if live:
            return live[0].prev_content == previous
        return True


class ArchivedLedgerView:
    """Read-through view over archives + the live ledger.

    Presents the same record-lookup interface provenance queries use,
    resolving archived sequences from segments transparently.
    """

    def __init__(self, ledger: DagLedger, archiver: LedgerArchiver):
        self.ledger = ledger
        self.archiver = archiver

    def height(self, label: str, shard: int = 0) -> int:
        return self.ledger.height(label, shard)

    def record(self, label: str, shard: int, seq: int) -> TransactionRecord:
        if seq > self.ledger.base(label, shard):
            return self.ledger.record(label, shard, seq)
        for segment in self.archiver.segments(label, shard):
            if segment.from_seq <= seq <= segment.to_seq:
                return segment.record(seq)
        raise LedgerError(f"no record {label}#{shard}:{seq} (gap in archive)")

    def chain(self, label: str, shard: int = 0) -> list[TransactionRecord]:
        """The full linear history: archived prefix + live suffix."""
        records: list[TransactionRecord] = []
        for segment in self.archiver.segments(label, shard):
            records.extend(segment.records)
        records.extend(self.ledger.chain(label, shard))
        return records

    def iter_records(self, label: str, shard: int = 0) -> Iterator[TransactionRecord]:
        yield from self.chain(label, shard)
