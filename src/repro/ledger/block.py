"""Transaction records — the entries of the DAG ledger."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import digest
from repro.datamodel.transaction import OrderedTransaction
from repro.datamodel.txid import TxId
from repro.ledger.certificate import CommitCertificate


@dataclass(frozen=True)
class TransactionRecord:
    """One committed transaction on one collection-shard.

    ``prev_digest`` chains the record to its predecessor on the same
    collection-shard (the per-collection linear ledger); γ inside the
    ID provides the cross-chain DAG edges.  The commit certificate is
    stored alongside (§4.2: "the commit certificates are appended to
    the ledger to guarantee immutability").
    """

    otx: OrderedTransaction
    tx_id: TxId
    prev_digest: str
    certificate: CommitCertificate | None
    #: Chains the *content* (transaction + ID) independently of the
    #: commit certificate.  Certificates differ across replicas (each
    #: collects its own 2f+1 signature set), so cross-replica state
    #: comparison — checkpoints, audits — uses the content chain.
    prev_content: str = "0" * 32

    @property
    def label(self) -> str:
        return self.tx_id.alpha.label

    @property
    def shard(self) -> int:
        return self.tx_id.alpha.shard

    @property
    def seq(self) -> int:
        return self.tx_id.alpha.seq

    def record_digest(self) -> str:
        cert = (
            self.certificate.canonical_bytes() if self.certificate else b"-"
        )
        return digest(
            [
                self.otx.canonical_bytes(),
                self.tx_id.canonical_bytes(),
                self.prev_digest,
                cert,
            ]
        )

    def body_digest(self) -> str:
        """Digest of this record's own content (transaction + ID),
        independent of its chain position."""
        return digest([self.otx.canonical_bytes(), self.tx_id.canonical_bytes()])

    def content_digest(self) -> str:
        """Certificate-independent chained digest — identical on every
        replica that committed the same transaction at the same
        position.  Split as ``H(body, prev)`` so verifiable queries can
        walk the chain from body digests alone without shipping full
        records (:mod:`repro.ledger.queries`)."""
        return digest([self.body_digest(), self.prev_content])

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Record({self.tx_id})"
