"""Transaction records — the entries of the DAG ledger."""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import digest
from repro.datamodel.transaction import OrderedTransaction
from repro.datamodel.txid import TxId
from repro.ledger.certificate import CommitCertificate

# Content-chain digests are identical on every replica that committed
# the same transaction at the same position — by design (§3.3) — so
# each replica after the first gets them from these interning tables
# instead of re-hashing.  Keys are frozen values (equality on
# OrderedTransaction cannot alias: request ids are process-unique);
# tables are dropped on overflow, and the bench executor clears them
# between points so keys do not retain transaction graphs across runs
# (repro.crypto.hashing.clear_intern_caches).
from repro.crypto.hashing import register_intern_cache as _register_cache

_body_cache: dict[tuple[OrderedTransaction, TxId], str] = _register_cache({})
_content_cache: dict[tuple[str, str], str] = _register_cache({})
_CACHE_MAX = 1 << 18


@dataclass(frozen=True)
class TransactionRecord:
    """One committed transaction on one collection-shard.

    ``prev_digest`` chains the record to its predecessor on the same
    collection-shard (the per-collection linear ledger); γ inside the
    ID provides the cross-chain DAG edges.  The commit certificate is
    stored alongside (§4.2: "the commit certificates are appended to
    the ledger to guarantee immutability").
    """

    otx: OrderedTransaction
    tx_id: TxId
    prev_digest: str
    certificate: CommitCertificate | None
    #: Chains the *content* (transaction + ID) independently of the
    #: commit certificate.  Certificates differ across replicas (each
    #: collects its own 2f+1 signature set), so cross-replica state
    #: comparison — checkpoints, audits — uses the content chain.
    prev_content: str = "0" * 32

    @property
    def label(self) -> str:
        return self.tx_id.alpha.label

    @property
    def shard(self) -> int:
        return self.tx_id.alpha.shard

    @property
    def seq(self) -> int:
        return self.tx_id.alpha.seq

    def record_digest(self) -> str:
        # Cached per record: the certificate signature set differs
        # across replicas, so this one cannot be interned — but chain
        # validation and archive manifests re-walk the same records.
        cached = getattr(self, "_record_digest_cache", None)
        if cached is not None:
            return cached
        cert = (
            self.certificate.canonical_bytes() if self.certificate else b"-"
        )
        result = digest(
            [
                self.otx.canonical_bytes(),
                self.tx_id.canonical_bytes(),
                self.prev_digest,
                cert,
            ]
        )
        object.__setattr__(self, "_record_digest_cache", result)
        return result

    def body_digest(self) -> str:
        """Digest of this record's own content (transaction + ID),
        independent of its chain position."""
        key = (self.otx, self.tx_id)
        try:
            cached = _body_cache.get(key)
        except TypeError:
            # Transactions can nest unhashable payloads (operation
            # args, sealed envelopes): skip interning for those.
            return digest(
                [self.otx.canonical_bytes(), self.tx_id.canonical_bytes()]
            )
        if cached is None:
            cached = digest(
                [self.otx.canonical_bytes(), self.tx_id.canonical_bytes()]
            )
            if len(_body_cache) >= _CACHE_MAX:
                _body_cache.clear()
            _body_cache[key] = cached
        return cached

    def content_digest(self) -> str:
        """Certificate-independent chained digest — identical on every
        replica that committed the same transaction at the same
        position.  Split as ``H(body, prev)`` so verifiable queries can
        walk the chain from body digests alone without shipping full
        records (:mod:`repro.ledger.queries`)."""
        key = (self.body_digest(), self.prev_content)
        cached = _content_cache.get(key)
        if cached is None:
            cached = digest([key[0], key[1]])
            if len(_content_cache) >= _CACHE_MAX:
                _content_cache.clear()
            _content_cache[key] = cached
        return cached

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"Record({self.tx_id})"
