"""Commit and reply certificates (§4.2).

A *commit certificate* proves a local-majority of a cluster's ordering
nodes agreed on a transaction's order: it is appended to the ledger so
"any attempt to alter the block data can easily be detected".  A
*reply certificate* proves ``g + 1`` execution nodes produced matching
results; the privacy firewall's top filter row assembles it and only it
flows down toward the client.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs
from repro.crypto import signatures as _sigmod
from repro.crypto.hashing import Canonical, digest, register_intern_cache
from repro.crypto.signatures import KeyRegistry, SignedMessage, verify_many

#: Interned whole-certificate outcomes.  Receivers rebuild equal
#: certificates from message fields, so the per-object memo below
#: misses even though the signature set was already checked; keying by
#: the signature tuple (frozen dataclasses, hashable) lets the rebuilt
#: copy skip every MAC.  Positive outcomes only — enrollment never
#: rotates secrets, so a quorum that verified once verifies forever.
_cert_verified: dict = register_intern_cache({})
_CERT_CACHE_MAX = 1 << 16


def _batched_verify(
    payload_digest: str,
    signatures: tuple[SignedMessage, ...],
    registry: KeyRegistry,
    quorum: int,
    members,
) -> bool:
    """The :func:`verify_many`-backed certificate check with interned
    whole-certificate outcomes; with batched verification off (the CI
    baseline) verify_many itself degrades to the per-signature loop and
    the certificate-level interning is bypassed too."""
    if not _sigmod.BATCH_VERIFY:
        return (
            len(
                verify_many(
                    registry, signatures, payload=payload_digest, members=members
                )
            )
            >= quorum
        )
    key = (registry, quorum, members, payload_digest, signatures)
    if key in _cert_verified:
        return True
    ok = (
        len(
            verify_many(
                registry,
                signatures,
                payload=payload_digest,
                quorum=quorum,
                members=members,
            )
        )
        >= quorum
    )
    if ok:
        if len(_cert_verified) >= _CERT_CACHE_MAX:
            _cert_verified.clear()
        _cert_verified[key] = True
    return ok


@dataclass(frozen=True)
class CommitCertificate(Canonical):
    """local-majority signatures binding a transaction digest to its ID."""

    cluster: str
    payload_digest: str
    signatures: tuple[SignedMessage, ...]

    def signers(self) -> frozenset[str]:
        return frozenset(s.signer for s in self.signatures)

    def verify(
        self,
        registry: KeyRegistry,
        quorum: int,
        members: frozenset[str] | None = None,
    ) -> bool:
        """At least ``quorum`` valid signatures from distinct members.

        Positive outcomes are memoized on the certificate: the same
        certificate object is re-verified by the execution routine, the
        privacy firewall, and the client, and a quorum that verified
        once can never stop verifying (enrollment never rotates
        secrets).  Failures are not cached — a not-yet-enrolled signer
        may verify later — and the key includes the registry object
        (identity-hashed), so a check against a different PKI never
        reuses an outcome.  The signature set itself goes through
        :func:`repro.crypto.signatures.verify_many`: quorum early-exit
        plus interned whole-certificate outcomes for rebuilt copies.
        """
        if obs.REGISTRY is not None:
            # Counts every verify, including memoized hits — the metric
            # measures protocol demand, not cache effectiveness.
            obs.REGISTRY.counter("certificate_verifies", kind="commit").inc()
        key = (registry, quorum, members)
        cache = getattr(self, "_verified_cache", None)
        if cache is not None and key in cache:
            return True
        ok = _batched_verify(
            self.payload_digest, self.signatures, registry, quorum, members
        )
        if ok:
            if cache is None:
                cache = set()
                object.__setattr__(self, "_verified_cache", cache)
            cache.add(key)
        return ok

    def _canonical_bytes(self) -> bytes:
        sigs = b";".join(s.canonical_bytes() for s in self.signatures)
        return f"ccert|{self.cluster}|{self.payload_digest}|".encode() + sigs


@dataclass(frozen=True)
class ReplyCertificate(Canonical):
    """``g + 1`` matching execution results, assembled by the firewall."""

    cluster: str
    request_id: int
    result_digest: str
    signatures: tuple[SignedMessage, ...]

    def signers(self) -> frozenset[str]:
        return frozenset(s.signer for s in self.signatures)

    def verify(
        self,
        registry: KeyRegistry,
        quorum: int,
        members: frozenset[str] | None = None,
    ) -> bool:
        """Same memoization as :meth:`CommitCertificate.verify`."""
        if obs.REGISTRY is not None:
            obs.REGISTRY.counter("certificate_verifies", kind="reply").inc()
        key = (registry, quorum, members)
        cache = getattr(self, "_verified_cache", None)
        if cache is not None and key in cache:
            return True
        ok = _batched_verify(
            self.result_digest, self.signatures, registry, quorum, members
        )
        if ok:
            if cache is None:
                cache = set()
                object.__setattr__(self, "_verified_cache", cache)
            cache.add(key)
        return ok

    def _canonical_bytes(self) -> bytes:
        sigs = b";".join(s.canonical_bytes() for s in self.signatures)
        return (
            f"rcert|{self.cluster}|{self.request_id}|{self.result_digest}|".encode()
            + sigs
        )


def certificate_payload(otx_canonical: bytes) -> str:
    """The digest ordering nodes sign: binds request *and* assigned ID."""
    return digest(otx_canonical)
