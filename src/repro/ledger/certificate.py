"""Commit and reply certificates (§4.2).

A *commit certificate* proves a local-majority of a cluster's ordering
nodes agreed on a transaction's order: it is appended to the ledger so
"any attempt to alter the block data can easily be detected".  A
*reply certificate* proves ``g + 1`` execution nodes produced matching
results; the privacy firewall's top filter row assembles it and only it
flows down toward the client.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import digest
from repro.crypto.signatures import KeyRegistry, SignedMessage, verify


@dataclass(frozen=True)
class CommitCertificate:
    """local-majority signatures binding a transaction digest to its ID."""

    cluster: str
    payload_digest: str
    signatures: tuple[SignedMessage, ...]

    def signers(self) -> frozenset[str]:
        return frozenset(s.signer for s in self.signatures)

    def verify(
        self,
        registry: KeyRegistry,
        quorum: int,
        members: frozenset[str] | None = None,
    ) -> bool:
        """At least ``quorum`` valid signatures from distinct members."""
        valid: set[str] = set()
        for signed in self.signatures:
            if signed.payload_digest != self.payload_digest:
                continue
            if members is not None and signed.signer not in members:
                continue
            if verify(registry, signed):
                valid.add(signed.signer)
        return len(valid) >= quorum

    def canonical_bytes(self) -> bytes:
        sigs = b";".join(s.canonical_bytes() for s in self.signatures)
        return f"ccert|{self.cluster}|{self.payload_digest}|".encode() + sigs


@dataclass(frozen=True)
class ReplyCertificate:
    """``g + 1`` matching execution results, assembled by the firewall."""

    cluster: str
    request_id: int
    result_digest: str
    signatures: tuple[SignedMessage, ...]

    def signers(self) -> frozenset[str]:
        return frozenset(s.signer for s in self.signatures)

    def verify(
        self,
        registry: KeyRegistry,
        quorum: int,
        members: frozenset[str] | None = None,
    ) -> bool:
        valid: set[str] = set()
        for signed in self.signatures:
            if signed.payload_digest != self.result_digest:
                continue
            if members is not None and signed.signer not in members:
                continue
            if verify(registry, signed):
                valid.add(signed.signer)
        return len(valid) >= quorum

    def canonical_bytes(self) -> bytes:
        sigs = b";".join(s.canonical_bytes() for s in self.signatures)
        return (
            f"rcert|{self.cluster}|{self.request_id}|{self.result_digest}|".encode()
            + sigs
        )


def certificate_payload(otx_canonical: bytes) -> str:
    """The digest ordering nodes sign: binds request *and* assigned ID."""
    return digest(otx_canonical)
