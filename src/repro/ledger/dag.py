"""The DAG-structured ledger of one cluster (§3.3).

Appends enforce the two consistency rules at the storage layer as a
final defense (consensus should never violate them, and tests that
inject Byzantine primaries rely on the ledger refusing bad appends):

- local consistency: per collection-shard, sequences are exactly
  1, 2, 3, ... and each record chains to its predecessor's digest;
- global consistency: γ is monotone along each chain.
"""

from __future__ import annotations

from typing import Iterator

from repro.datamodel.transaction import OrderedTransaction
from repro.datamodel.txid import TxId
from repro.errors import ConsistencyViolation, LedgerError
from repro.ledger.block import TransactionRecord
from repro.ledger.certificate import CommitCertificate

GENESIS_DIGEST = "0" * 32


class DagLedger:
    """Append-only DAG ledger for the collections one cluster maintains."""

    def __init__(self, owner: str):
        self.owner = owner
        self._chains: dict[tuple[str, int], list[TransactionRecord]] = {}
        self._order: list[TransactionRecord] = []
        self._head_digest: dict[tuple[str, int], str] = {}
        self._content_head: dict[tuple[str, int], str] = {}
        self._last_gamma: dict[tuple[str, int], dict[tuple[str, int], int]] = {}
        # Sequence number of the last record *below* the retained chain:
        # 0 for a full chain; > 0 after pruning or a checkpoint install.
        self._base: dict[tuple[str, int], int] = {}

    # ------------------------------------------------------------------
    # append
    # ------------------------------------------------------------------
    def append(
        self,
        otx: OrderedTransaction,
        tx_id: TxId,
        certificate: CommitCertificate | None = None,
    ) -> TransactionRecord:
        """Append one committed transaction under ``tx_id``."""
        key = tx_id.alpha.key()
        chain = self._chains.setdefault(key, [])
        expected = self._base.get(key, 0) + len(chain) + 1
        if tx_id.alpha.seq != expected:
            raise ConsistencyViolation(
                f"{self.owner}: local consistency violated on {key}: "
                f"expected seq {expected}, got {tx_id.alpha.seq}"
            )
        previous_gamma = self._last_gamma.get(key)
        new_gamma = tx_id.gamma_map()
        if previous_gamma:
            # Iterate the smaller map instead of materializing the key
            # intersection — this check runs once per append.
            probe, other = (
                (previous_gamma, new_gamma)
                if len(previous_gamma) <= len(new_gamma)
                else (new_gamma, previous_gamma)
            )
            for shared in probe:
                if shared in other and new_gamma[shared] < previous_gamma[shared]:
                    raise ConsistencyViolation(
                        f"{self.owner}: global consistency violated on {key}: "
                        f"gamma {shared} went backwards"
                    )
        record = TransactionRecord(
            otx=otx,
            tx_id=tx_id,
            prev_digest=self._head_digest.get(key, GENESIS_DIGEST),
            certificate=certificate,
            prev_content=self._content_head.get(key, GENESIS_DIGEST),
        )
        chain.append(record)
        self._order.append(record)
        self._head_digest[key] = record.record_digest()
        self._content_head[key] = record.content_digest()
        self._last_gamma[key] = new_gamma
        return record

    # ------------------------------------------------------------------
    # pruning / checkpoint anchors
    # ------------------------------------------------------------------
    def base(self, label: str, shard: int = 0) -> int:
        """Sequence of the last pruned record (0 if nothing pruned)."""
        return self._base.get((label, shard), 0)

    def prune(self, label: str, shard: int, upto_seq: int) -> list[TransactionRecord]:
        """Drop records of a chain up to ``upto_seq`` (inclusive).

        The head digest of the pruned prefix stays behind as the anchor
        the next retained record chains to, so digest continuity across
        the pruning boundary remains verifiable.  Returns the removed
        records (the archive keeps them).
        """
        key = (label, shard)
        base = self._base.get(key, 0)
        if upto_seq <= base:
            return []
        chain = self._chains.get(key, [])
        if upto_seq > base + len(chain):
            raise LedgerError(
                f"{self.owner}: cannot prune {label}#{shard} to {upto_seq}: "
                f"height is {base + len(chain)}"
            )
        cut = upto_seq - base
        removed = chain[:cut]
        self._chains[key] = chain[cut:]
        self._base[key] = upto_seq
        dropped = set(map(id, removed))
        self._order = [r for r in self._order if id(r) not in dropped]
        return removed

    def install_anchor(
        self, label: str, shard: int, seq: int, head_digest: str
    ) -> None:
        """Adopt a verified checkpoint for a chain this ledger is behind on.

        Used by state transfer (§4.3.4 retransmission is for small gaps;
        a replica that missed a whole checkpoint interval installs the
        stable checkpoint instead): the chain restarts after ``seq`` with
        ``head_digest`` as the anchor.  Refuses to move backwards.
        """
        key = (label, shard)
        height = self._base.get(key, 0) + len(self._chains.get(key, []))
        if seq <= height:
            raise LedgerError(
                f"{self.owner}: anchor {label}#{shard}:{seq} is not ahead "
                f"of height {height}"
            )
        self._chains[key] = []
        self._base[key] = seq
        self._head_digest[key] = head_digest
        self._content_head[key] = head_digest

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._order)

    def __iter__(self) -> Iterator[TransactionRecord]:
        """Records in append order (the enterprise-wide DAG order)."""
        return iter(self._order)

    def chain(self, label: str, shard: int = 0) -> list[TransactionRecord]:
        """The linear per-collection ledger (copy)."""
        return list(self._chains.get((label, shard), ()))

    def chain_keys(self) -> list[tuple[str, int]]:
        return list(self._chains)

    def height(self, label: str, shard: int = 0) -> int:
        key = (label, shard)
        return self._base.get(key, 0) + len(self._chains.get(key, ()))

    def head(self, label: str, shard: int = 0) -> TransactionRecord | None:
        chain = self._chains.get((label, shard))
        return chain[-1] if chain else None

    def head_digest(self, label: str, shard: int = 0) -> str:
        """Digest of the chain head (the anchor digest after pruning)."""
        return self._head_digest.get((label, shard), GENESIS_DIGEST)

    def content_head(self, label: str, shard: int = 0) -> str:
        """Certificate-independent head digest (see
        :meth:`~repro.ledger.block.TransactionRecord.content_digest`)."""
        return self._content_head.get((label, shard), GENESIS_DIGEST)

    def record(self, label: str, shard: int, seq: int) -> TransactionRecord:
        key = (label, shard)
        base = self._base.get(key, 0)
        chain = self._chains.get(key, [])
        if not base < seq <= base + len(chain):
            raise LedgerError(
                f"{self.owner}: no record {label}#{shard}:{seq}"
                + (f" (pruned up to {base})" if seq <= base else "")
            )
        return chain[seq - base - 1]

    def contains_request(self, request_id: int) -> bool:
        return any(r.otx.tx.request_id == request_id for r in self._order)

    def tx_ids(self) -> list[TxId]:
        return [r.tx_id for r in self._order]
