"""Provenance queries over the DAG ledger.

The paper motivates Qanaat with provenance: "a detailed picture of how
the data was collected, where it was stored, and how it was used ...
transparent and immutable ... verifiable by all participants" (§1).
These helpers answer those questions from a ledger:

- :func:`record_lineage` — the causal past of one record: its own
  chain predecessor plus, through γ, the latest record of every
  order-dependent collection it could have read;
- :func:`key_history` — every committed transaction that wrote a key,
  with the writing enterprise and sequence;
- :func:`trace_request` — where a request landed across a set of
  ledgers (which enterprises replicate it, at which positions).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import LedgerError
from repro.ledger.block import TransactionRecord
from repro.ledger.dag import DagLedger


@dataclass(frozen=True)
class LineageEdge:
    """A causal edge: ``record`` depends on ``dependency``."""

    record: TransactionRecord
    dependency: TransactionRecord
    kind: str  # "chain" (same collection) | "gamma" (order-dependency)


def record_lineage(
    ledger: DagLedger, label: str, shard: int, seq: int, depth: int = 10
) -> list[LineageEdge]:
    """The causal past of one record, breadth-first up to ``depth`` edges.

    Follows the per-collection hash chain and the γ snapshot links; the
    result is exactly the sub-DAG a verifier would re-check to audit
    this record's inputs.
    """
    edges: list[LineageEdge] = []
    frontier = [ledger.record(label, shard, seq)]
    seen: set[tuple[str, int, int]] = set()
    while frontier and len(edges) < depth:
        record = frontier.pop(0)
        key = (record.label, record.shard, record.seq)
        if key in seen:
            continue
        seen.add(key)
        if record.seq > 1:
            parent = ledger.record(record.label, record.shard, record.seq - 1)
            edges.append(LineageEdge(record, parent, "chain"))
            frontier.append(parent)
        for entry in record.tx_id.gamma:
            if ledger.height(entry.label, entry.shard) >= entry.seq:
                dependency = ledger.record(entry.label, entry.shard, entry.seq)
                edges.append(LineageEdge(record, dependency, "gamma"))
                frontier.append(dependency)
    return edges


def lineage_closure(
    source, label: str, shard: int, seq: int, max_hops: int = 8
) -> list[tuple[str, int, int, int]]:
    """The hop-bounded causal closure of one record, as plain tuples.

    Unlike :func:`record_lineage` (edge-budgeted BFS returning live
    edge objects), this computes the *set of reachable records* with
    their minimum hop distance — the exact relation a recursive SQL
    CTE over a provenance-edge table produces, which is what the
    analytics engine (:mod:`repro.analytics`) cross-checks against.

    ``source`` is anything with ``record``/``height`` (a
    :class:`DagLedger` or an
    :class:`~repro.ledger.archive.ArchivedLedgerView`).  Edges are the
    chain predecessor (``seq - 1`` of the same collection-shard) and
    every γ dependency whose record is reachable; dependencies whose
    records are pruned or unretained are skipped, not errors.  Returns
    ``(label, shard, seq, hop)`` rows sorted by ``(hop, label, shard,
    seq)``, the start record at hop 0.
    """
    start = (label, shard, seq)
    source.record(label, shard, seq)  # unknown start records do raise
    hops: dict[tuple[str, int, int], int] = {start: 0}
    frontier: deque[tuple[str, int, int]] = deque([start])
    while frontier:
        node = frontier.popleft()
        hop = hops[node]
        if hop >= max_hops:
            continue
        node_label, node_shard, node_seq = node
        record = source.record(node_label, node_shard, node_seq)
        dependencies: list[tuple[str, int, int]] = []
        if node_seq > 1:
            dependencies.append((node_label, node_shard, node_seq - 1))
        for entry in record.tx_id.gamma:
            if source.height(entry.label, entry.shard) >= entry.seq:
                dependencies.append((entry.label, entry.shard, entry.seq))
        for dep in dependencies:
            if dep in hops:
                continue
            try:
                source.record(*dep)
            except LedgerError:
                continue  # pruned below the retained range
            hops[dep] = hop + 1
            frontier.append(dep)
    return sorted(
        ((l, s, q, hop) for (l, s, q), hop in hops.items()),
        key=lambda row: (row[3], row[0], row[1], row[2]),
    )


def key_history(
    ledger: DagLedger, label: str, key: str, shard: int = 0
) -> list[TransactionRecord]:
    """Every record on the collection whose transaction touched ``key``."""
    return [
        record
        for record in ledger.chain(label, shard)
        if key in record.otx.tx.keys
    ]


@dataclass
class RequestTrace:
    """Where one request landed across a set of ledgers."""

    request_id: int
    locations: list[tuple[str, str, int, int]] = field(default_factory=list)
    # (ledger owner, collection label, shard, seq)

    def owners(self) -> set[str]:
        return {owner for owner, _, _, _ in self.locations}


def trace_request(ledgers: list[DagLedger], request_id: int) -> RequestTrace:
    """Find every replica position of a request — the paper's
    end-to-end tracking of goods, as a ledger query."""
    trace = RequestTrace(request_id)
    for ledger in ledgers:
        for record in ledger:
            if record.otx.tx.request_id == request_id:
                trace.locations.append(
                    (ledger.owner, record.label, record.shard, record.seq)
                )
    return trace
