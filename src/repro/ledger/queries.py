"""Verifiable ledger queries.

The related work the paper positions against (§6) includes verifiable
query processing over blockchain databases (vChain, FalconDB): a light
client that does *not* replicate a ledger should still be able to
check that an answer is authentic and correctly positioned.  Qanaat's
content chain (``H(body, prev)`` per record, certificate-independent)
supports exactly that:

- a verifier obtains one *trusted head* for a chain — from a stable
  checkpoint certificate (:mod:`repro.consensus.checkpoint`), or by
  collecting matching head attestations from a quorum of replicas
  (:func:`attested_head`);
- a prover (any single replica — possibly malicious) answers a query
  with records plus a :class:`MembershipProof` / :class:`RangeProof`;
- verification folds the proof's body digests back up to the trusted
  head.  A forged, reordered, or omitted record changes some body
  digest and the fold misses the head.

Proof size is one digest per record *above* the queried position —
linear, not logarithmic; the ledger is a hash chain, not a Merkle
tree, and the reproduction keeps the paper's structure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Protocol

from repro.crypto.hashing import digest
from repro.errors import LedgerError
from repro.ledger.block import TransactionRecord
from repro.ledger.dag import GENESIS_DIGEST


class ChainSource(Protocol):  # pragma: no cover - structural type
    """Anything that can enumerate a chain: a :class:`DagLedger` or an
    :class:`~repro.ledger.archive.ArchivedLedgerView`."""

    def chain(self, label: str, shard: int = 0) -> list[TransactionRecord]: ...


@dataclass(frozen=True)
class MembershipProof:
    """Evidence that one record sits at ``seq`` of a chain with a
    given head."""

    label: str
    shard: int
    seq: int
    head_seq: int
    prev_content: str                     # content head just below seq
    suffix_bodies: tuple[str, ...]        # body digests of seq+1..head_seq


@dataclass(frozen=True)
class RangeProof:
    """Evidence for a contiguous run of records ``from_seq..to_seq``."""

    label: str
    shard: int
    from_seq: int
    to_seq: int
    head_seq: int
    prev_content: str
    suffix_bodies: tuple[str, ...]


def _chain_of(source: ChainSource, label: str, shard: int) -> list[TransactionRecord]:
    records = source.chain(label, shard)
    if not records:
        raise LedgerError(f"empty chain {label}#{shard}")
    return records


def _record_at(records: list[TransactionRecord], seq: int) -> TransactionRecord:
    first, last = records[0].seq, records[-1].seq
    if not first <= seq <= last:
        raise LedgerError(
            f"seq {seq} outside retained range {first}..{last}"
        )
    # Positional lookup is only sound on a dense chain; a compacted or
    # partially evicted chain view would silently hand back the wrong
    # record (and a proof for the wrong position).
    if len(records) != last - first + 1:
        raise LedgerError(
            f"chain {records[0].label}#{records[0].shard} is gapped: "
            f"{len(records)} records span seqs {first}..{last} "
            f"(expected {last - first + 1}); compacted chains cannot "
            "serve positional queries"
        )
    return records[seq - first]


# ----------------------------------------------------------------------
# proving (replica side)
# ----------------------------------------------------------------------
def prove_membership(
    source: ChainSource, label: str, seq: int, shard: int = 0
) -> tuple[TransactionRecord, MembershipProof]:
    """Produce the record at ``seq`` plus its proof up to the head."""
    records = _chain_of(source, label, shard)
    record = _record_at(records, seq)
    later = records[seq - records[0].seq + 1:]
    proof = MembershipProof(
        label=label,
        shard=shard,
        seq=seq,
        head_seq=records[-1].seq,
        prev_content=record.prev_content,
        suffix_bodies=tuple(r.body_digest() for r in later),
    )
    return record, proof


def prove_range(
    source: ChainSource,
    label: str,
    from_seq: int,
    to_seq: int,
    shard: int = 0,
) -> tuple[list[TransactionRecord], RangeProof]:
    """Produce records ``from_seq..to_seq`` plus one proof for the run."""
    if from_seq > to_seq:
        raise LedgerError("empty range")
    records = _chain_of(source, label, shard)
    first = _record_at(records, from_seq)
    _record_at(records, to_seq)
    base_index = from_seq - records[0].seq
    selected = records[base_index:base_index + (to_seq - from_seq + 1)]
    later = records[base_index + len(selected):]
    proof = RangeProof(
        label=label,
        shard=shard,
        from_seq=from_seq,
        to_seq=to_seq,
        head_seq=records[-1].seq,
        prev_content=first.prev_content,
        suffix_bodies=tuple(r.body_digest() for r in later),
    )
    return list(selected), proof


# ----------------------------------------------------------------------
# verifying (client side)
# ----------------------------------------------------------------------
def _fold(start: str, bodies: Iterable[str]) -> str:
    running = start
    for body in bodies:
        running = digest([body, running])
    return running


def verify_membership(
    record: TransactionRecord,
    proof: MembershipProof,
    trusted_head: str,
) -> bool:
    """Check a record against a trusted content-head digest."""
    if record.seq != proof.seq or record.label != proof.label:
        return False
    if record.shard != proof.shard:
        return False
    if proof.head_seq - proof.seq != len(proof.suffix_bodies):
        return False
    if proof.seq == 1 and proof.prev_content != GENESIS_DIGEST:
        # A chain whose first record claims a non-genesis anchor must
        # come with the anchor's provenance (archive segment); a bare
        # membership proof for seq 1 anchors at genesis.
        return False
    start = _fold(proof.prev_content, [record.body_digest()])
    return _fold(start, proof.suffix_bodies) == trusted_head


def verify_range(
    records: list[TransactionRecord],
    proof: RangeProof,
    trusted_head: str,
) -> bool:
    """Check a contiguous run of records against a trusted head.

    Also guarantees *completeness within the range*: a prover cannot
    omit or reorder a record of ``from_seq..to_seq`` without breaking
    the fold.
    """
    expected_count = proof.to_seq - proof.from_seq + 1
    if len(records) != expected_count:
        return False
    for offset, record in enumerate(records):
        if record.seq != proof.from_seq + offset:
            return False
        if record.label != proof.label or record.shard != proof.shard:
            return False
    if proof.head_seq - proof.to_seq != len(proof.suffix_bodies):
        return False
    if proof.from_seq == 1 and proof.prev_content != GENESIS_DIGEST:
        return False
    running = _fold(proof.prev_content, (r.body_digest() for r in records))
    return _fold(running, proof.suffix_bodies) == trusted_head


# ----------------------------------------------------------------------
# obtaining a trusted head
# ----------------------------------------------------------------------
def attested_head(
    heads: Iterable[str],
    quorum: int,
) -> str | None:
    """The head digest attested by at least ``quorum`` replicas.

    With Byzantine replicas, collect content heads from ``f+1``
    distinct replicas of one cluster: at least one is honest, so a
    digest reported by ``f+1`` of them is the true head."""
    counts: dict[str, int] = {}
    for head in heads:
        counts[head] = counts.get(head, 0) + 1
        if counts[head] >= quorum:
            return head
    return None
