"""Ledger audits: the verifiability blockchains promise (§3.3).

``audit_ledger`` re-verifies everything a ledger claims: hash chains,
commit certificates, local and global consistency.
``shared_chains_consistent`` checks the replication rule — a shared
collection's chain is identical (same transactions, same order) on
every involved enterprise.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.signatures import KeyRegistry
from repro.ledger.dag import GENESIS_DIGEST, DagLedger


@dataclass
class AuditReport:
    """Outcome of a ledger audit; falsy when problems were found."""

    problems: list[str] = field(default_factory=list)

    def ok(self) -> bool:
        return not self.problems

    def __bool__(self) -> bool:
        return self.ok()


def audit_ledger(
    ledger: DagLedger,
    registry: KeyRegistry | None = None,
    quorum_of: dict[str, int] | None = None,
) -> AuditReport:
    """Full re-verification of one cluster's ledger.

    ``quorum_of`` maps cluster name -> required certificate quorum;
    when provided together with ``registry``, commit certificates are
    checked cryptographically.
    """
    report = AuditReport()
    for key in ledger.chain_keys():
        label, shard = key
        chain = ledger.chain(label, shard)
        prev_digest = GENESIS_DIGEST
        prev_gamma: dict[tuple[str, int], int] = {}
        for index, record in enumerate(chain, start=1):
            if record.seq != index:
                report.problems.append(
                    f"{label}#{shard}: seq {record.seq} at position {index}"
                )
            if record.prev_digest != prev_digest:
                report.problems.append(
                    f"{label}#{shard}:{record.seq}: broken hash chain"
                )
            gamma = record.tx_id.gamma_map()
            for shared in prev_gamma.keys() & gamma.keys():
                if gamma[shared] < prev_gamma[shared]:
                    report.problems.append(
                        f"{label}#{shard}:{record.seq}: gamma regressed "
                        f"on {shared}"
                    )
            if registry is not None and quorum_of is not None:
                cert = record.certificate
                if cert is None:
                    report.problems.append(
                        f"{label}#{shard}:{record.seq}: missing certificate"
                    )
                elif not cert.verify(registry, quorum_of.get(cert.cluster, 1)):
                    report.problems.append(
                        f"{label}#{shard}:{record.seq}: bad certificate"
                    )
            prev_digest = record.record_digest()
            prev_gamma = gamma
    return report


def verify_global_consistency(ledgers: list[DagLedger]) -> AuditReport:
    """Cross-ledger check of §3.3's global consistency property.

    For every collection-shard chain present on several ledgers, the
    sequence of (request id, γ) pairs must agree prefix-wise — shared
    collections are replicated "in the same order".
    """
    report = AuditReport()
    by_key: dict[tuple[str, int], list[tuple[str, DagLedger]]] = {}
    for ledger in ledgers:
        for key in ledger.chain_keys():
            by_key.setdefault(key, []).append((ledger.owner, ledger))
    for key, owners in by_key.items():
        if len(owners) < 2:
            continue
        label, shard = key
        reference_owner, reference = owners[0]
        ref_chain = [
            (r.otx.tx.request_id, r.tx_id) for r in reference.chain(label, shard)
        ]
        for owner, ledger in owners[1:]:
            chain = [
                (r.otx.tx.request_id, r.tx_id)
                for r in ledger.chain(label, shard)
            ]
            prefix = min(len(chain), len(ref_chain))
            if chain[:prefix] != ref_chain[:prefix]:
                report.problems.append(
                    f"{label}#{shard}: divergent replicas on "
                    f"{reference_owner} vs {owner}"
                )
    return report


def shared_chains_consistent(ledgers: list[DagLedger]) -> bool:
    """Convenience wrapper over :func:`verify_global_consistency`."""
    return verify_global_consistency(ledgers).ok()
