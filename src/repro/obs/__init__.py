"""``repro.obs`` — causal tracing, metrics, and invariant probes.

The whole layer hangs off three module globals:

- :data:`TRACER` — the active :class:`~repro.obs.trace.Tracer`;
- :data:`REGISTRY` — the active :class:`~repro.obs.metrics.MetricRegistry`;
- :data:`PROBES` — the active :class:`~repro.obs.probes.Probes`.

All three are ``None`` while observability is off, and every
instrumented call site in the simulator guards on that — typically via
a flag captured at construction time, so the per-event hot loops pay a
single attribute load, not a module-global lookup.  Nothing on the off
path allocates, draws randomness, or perturbs virtual time; nothing on
the on path does either (spans are appended to a list, timestamps come
from ``sim.now``), which is what makes traced runs replay untraced
runs' event sequences exactly.

Because hot objects capture the flag at construction, call
:func:`enable` **before** building a deployment and :func:`disable`
after tearing it down.  ``scenarios.runner`` and the bench CLI do this
for you (``ScenarioSpec(trace=True)`` / ``--trace``).

See ``docs/observability.md`` for the span taxonomy and metric names.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.obs.metrics import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.probes import Probes

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.trace import Span, Tracer  # noqa: F401

#: Lazily re-exported from :mod:`repro.obs.trace` (PEP 562) so
#: ``python -m repro.obs.trace`` does not find the module already
#: imported by this package and warn about double execution.
_TRACE_EXPORTS = ("Span", "Tracer", "TRACE_SCHEMA_VERSION")


def __getattr__(name: str) -> Any:
    if name in _TRACE_EXPORTS:
        from repro.obs import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "Probes",
    "Span",
    "Tracer",
    "TRACER",
    "REGISTRY",
    "PROBES",
    "enabled",
    "enable",
    "disable",
    "sample",
]

TRACER: "Tracer | None" = None
REGISTRY: MetricRegistry | None = None
PROBES: Probes | None = None


def enabled() -> bool:
    """Whether observability is currently on."""
    return TRACER is not None


def enable() -> "Tracer":
    """Turn observability on: fresh tracer, registry, and probes.

    Must run before the deployment under observation is built —
    simulator, network, and node constructors capture the on/off flag.
    Idempotent: re-enabling while on keeps the current instances.
    """
    global TRACER, REGISTRY, PROBES
    if TRACER is None:
        from repro.obs.trace import Tracer

        TRACER = Tracer()
        REGISTRY = MetricRegistry()
        PROBES = Probes(TRACER)
    return TRACER


def disable() -> None:
    """Turn observability off and drop the collected state."""
    global TRACER, REGISTRY, PROBES
    TRACER = None
    REGISTRY = None
    PROBES = None


def sample(target: Any, edge: str) -> None:
    """Sample level-style gauges at a measurement-window edge.

    ``target`` is a deployment or a bench driver (anything with a
    ``.system`` attribute unwraps to its deployment).  ``edge`` labels
    the sample point (``warmup_end`` / ``measure_end`` / ``drain_end``).
    Called between segmented ``sim.run`` slices — never from inside the
    event loop — so it cannot perturb event ordering.
    """
    registry = REGISTRY
    if registry is None:
        return
    deployment = getattr(target, "system", target)
    sim = getattr(deployment, "sim", None)
    if sim is not None:
        registry.gauge("sim_pending_events", edge=edge).set(sim.pending())
        peak = getattr(sim, "queue_peak", None)
        if peak is not None:
            registry.gauge("sim_queue_peak", edge=edge).set(peak)
    nodes = getattr(deployment, "nodes", None)
    if not nodes:
        return
    inflight: dict[str, int] = {}
    cross: dict[str, int] = {}
    for name in sorted(nodes):
        node = nodes[name]
        cluster = getattr(node, "cluster_name", None)
        if cluster is None:
            continue
        consensus = getattr(node, "consensus", None)
        if consensus is not None:
            count = len(consensus.undecided_slots())
            if count > inflight.get(cluster, -1):
                inflight[cluster] = count
        engine = getattr(node, "engine", None)
        if engine is not None:
            open_states = sum(
                1 for s in engine.states.values() if not s.committed
            )
            if open_states > cross.get(cluster, -1):
                cross[cluster] = open_states
        registry.histogram("node_queue_delay_s", edge=edge).observe(
            node.queue_delay()
        )
    for cluster, count in inflight.items():
        registry.gauge(
            "inflight_instances", cluster=cluster, edge=edge
        ).set(count)
    for cluster, count in cross.items():
        registry.gauge(
            "inflight_cross_blocks", cluster=cluster, edge=edge
        ).set(count)
