"""Labeled metric registry for the observability layer.

Counters, gauges, and histograms keyed by ``(name, labels)`` — labels
are free-form keyword pairs, typically ``cluster`` / ``protocol`` /
``phase``.  Everything here is driven exclusively by deterministic
simulation state (virtual time, event counts), never by wall clock or
randomness, so :meth:`MetricRegistry.snapshot` is byte-identical
across same-seed runs and safe to embed in ``BENCH_*.json`` artifacts
(it is stripped for determinism comparisons together with ``perf``,
see :func:`repro.bench.report.strip_perf`).
"""

from __future__ import annotations

from typing import Any


def _series_key(name: str, labels: dict[str, Any]) -> str:
    """Render one series name: ``name{k=v,k2=v2}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time level, sampled (not accumulated)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


class Histogram:
    """Summary statistics of observed values (count/sum/min/max).

    Full-distribution buckets are overkill for the simulator — window
    percentiles come from :meth:`repro.core.deployment.Metrics`
    directly — but queue-wait and span-duration summaries want cheap
    min/mean/max.
    """

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value


class MetricRegistry:
    """Get-or-create registry of labeled metric series."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: Any) -> Counter:
        key = _series_key(name, labels)
        metric = self._counters.get(key)
        if metric is None:
            metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = _series_key(name, labels)
        metric = self._gauges.get(key)
        if metric is None:
            metric = self._gauges[key] = Gauge()
        return metric

    def histogram(self, name: str, **labels: Any) -> Histogram:
        key = _series_key(name, labels)
        metric = self._histograms.get(key)
        if metric is None:
            metric = self._histograms[key] = Histogram()
        return metric

    # ------------------------------------------------------------------
    @staticmethod
    def merge_snapshots(snapshots: "list[dict[str, Any]]") -> dict[str, Any]:
        """Combine per-worker :meth:`snapshot` outputs (shard-parallel
        runs capture one registry per worker process) into one snapshot
        of the same shape.  Counters and histogram counts/sums add;
        histogram bounds take the extremes; gauges — point-in-time
        levels that cannot meaningfully add across processes — take the
        per-key maximum, which is order-independent and therefore
        deterministic at any worker count.
        """
        counters: dict[str, int] = {}
        gauges: dict[str, float] = {}
        histograms: dict[str, dict[str, Any]] = {}
        for snap in snapshots:
            for key, value in snap.get("counters", {}).items():
                counters[key] = counters.get(key, 0) + value
            for key, value in snap.get("gauges", {}).items():
                if key not in gauges or value > gauges[key]:
                    gauges[key] = value
            for key, h in snap.get("histograms", {}).items():
                merged = histograms.get(key)
                if merged is None:
                    histograms[key] = dict(h)
                    continue
                merged["count"] += h["count"]
                merged["sum"] = round(merged["sum"] + h["sum"], 9)
                for bound, better in (("min", min), ("max", max)):
                    if h[bound] is not None:
                        merged[bound] = (
                            h[bound]
                            if merged[bound] is None
                            else better(merged[bound], h[bound])
                        )
        return {
            "counters": {k: counters[k] for k in sorted(counters)},
            "gauges": {k: gauges[k] for k in sorted(gauges)},
            "histograms": {k: histograms[k] for k in sorted(histograms)},
        }

    def snapshot(self) -> dict[str, Any]:
        """All series as plain JSON data, deterministically ordered."""
        return {
            "counters": {
                key: self._counters[key].value
                for key in sorted(self._counters)
            },
            "gauges": {
                key: round(self._gauges[key].value, 9)
                for key in sorted(self._gauges)
            },
            "histograms": {
                key: {
                    "count": h.count,
                    "sum": round(h.total, 9),
                    "min": round(h.min, 9) if h.min is not None else None,
                    "max": round(h.max, 9) if h.max is not None else None,
                }
                for key, h in sorted(self._histograms.items())
            },
        }
