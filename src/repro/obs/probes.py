"""Invariant probes — safety assertions that run only while tracing.

Three properties the protocols must never violate, checked live from
the same call sites that emit trace spans:

- **sequence monotonicity** — each replica commits strictly increasing
  sequence numbers per collection-shard chain;
- **quorum uniqueness** — an internal-consensus slot decides at most
  one value digest across the whole cluster (two digests for one slot
  means two conflicting quorums certified);
- **ledger agreement** — shared collection chains replicate prefix-wise
  identically across enterprises (checked once per run end via
  :func:`repro.ledger.validation.verify_global_consistency`).

Violations raise :class:`repro.errors.InvariantViolation` loudly, with
the offending trace spans attached so the failure is debuggable from
the exception alone.  None of this runs when observability is off.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.errors import InvariantViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.trace import Tracer


class Probes:
    """Stateful invariant checks, one instance per enabled obs run."""

    def __init__(self, tracer: "Tracer | None" = None) -> None:
        self.tracer = tracer
        self._last_seq: dict[tuple[str, Any], int] = {}
        self._decisions: dict[tuple[str, Any], str] = {}

    def reset(self) -> None:
        """Forget per-deployment state before observing a new run.

        Node ids, chains, and consensus slots restart with every
        deployment; probes shared across runs (``bench --trace`` over
        a scenario matrix) would otherwise read one deployment's
        decisions as another's conflicts.
        """
        self._last_seq.clear()
        self._decisions.clear()

    # ------------------------------------------------------------------
    def _offending_spans(self, cluster: str, slot: Any) -> str:
        if self.tracer is None:
            return ""
        sid = self.tracer.instance_sid(cluster, slot)
        if sid is None:
            return ""
        spans = self.tracer.spans()
        related = [spans[sid]] + [s for s in spans if s.parent == sid]
        return "\n  offending trace spans:\n    " + "\n    ".join(
            repr(s) for s in related
        )

    # ------------------------------------------------------------------
    def commit_seq(self, node: str, key: Any, seq: int) -> None:
        """A replica committed ``seq`` on chain ``key`` — it must be
        strictly greater than the last sequence it committed there."""
        probe_key = (node, key)
        last = self._last_seq.get(probe_key)
        if last is not None and seq <= last:
            raise InvariantViolation(
                f"sequence monotonicity broken on {node} {key}: "
                f"committed seq {seq} after {last}"
            )
        self._last_seq[probe_key] = seq

    def decision(self, cluster: str, slot: Any, digest: str, node: str) -> None:
        """A node decided ``digest`` for ``(cluster, slot)`` — every
        other decision for the same slot must carry the same digest."""
        key = (cluster, slot)
        seen = self._decisions.get(key)
        if seen is None:
            self._decisions[key] = digest
        elif seen != digest:
            raise InvariantViolation(
                f"quorum uniqueness broken in {cluster} slot {slot!r}: "
                f"{node} decided {digest!r} but {seen!r} was already "
                f"decided{self._offending_spans(cluster, slot)}"
            )

    def ledger_agreement(self, deployment: Any) -> None:
        """End-of-run check that shared chains replicated identically
        (prefix-wise, so lagging or recovering replicas are fine)."""
        executors_of = getattr(deployment, "executors_of", None)
        directory = getattr(deployment, "directory", None)
        if executors_of is None or directory is None:
            return
        from repro.ledger.validation import verify_global_consistency

        ledgers = [
            executor.ledger
            for cluster in sorted(directory.clusters)
            for executor in executors_of(cluster)
        ]
        report = verify_global_consistency(ledgers)
        if not report.ok():
            raise InvariantViolation(
                "ledger agreement broken: " + "; ".join(report.problems)
            )
