"""Causal transaction tracing, plus the waterfall CLI.

When tracing is enabled (:func:`repro.obs.enable`), every transaction
carries a trace from ``Session.submit`` through every consensus phase
to the client reply.  Spans form a tree:

    tx                          client-observed request lifetime
    └─ block.{local,isce,csie,csce}   the batch the tx was ordered in
       ├─ pbft.instance / paxos.instance   one internal-consensus run
       │  ├─ pbft.pre-prepare / paxos.accept   message flight spans
       │  ├─ pbft.prepare, pbft.commit         per-node quorum waits
       │  └─ paxos.learn
       ├─ cross.lock            cross-shard guard wait
       ├─ cross.propose / cross.prepare       cross-cluster flights
       ├─ cross.vote            collecting accepts / prepared votes
       ├─ cross.decide          commit round until the block commits
       └─ execute               committed execution on a replica

All timestamps are **virtual** simulation seconds; span ids are a
process-local monotonic counter.  Nothing here draws randomness,
hashes, or schedules simulator events, so a traced run replays the
untraced run's event sequence exactly and the exported JSONL is
byte-identical across same-seed runs.

Render a trace with ``python -m repro.obs.trace TRACE.jsonl``
(``--tx RID`` / ``--cross`` for one waterfall, ``--aggregate`` for
per-phase critical-path totals).
"""

from __future__ import annotations

import json
from typing import Any

#: Version of the JSONL span schema (recorded in the artifact header
#: and in ``BENCH_scenarios.json``); bump on incompatible changes.
TRACE_SCHEMA_VERSION = 1


class Span:
    """One named interval of virtual time on one node."""

    __slots__ = ("sid", "parent", "name", "node", "start", "end", "attrs")

    def __init__(
        self,
        sid: int,
        parent: int | None,
        name: str,
        node: str | None,
        start: float,
        end: float | None = None,
        attrs: dict[str, Any] | None = None,
    ):
        self.sid = sid
        self.parent = parent
        self.name = name
        self.node = node
        self.start = start
        self.end = end
        self.attrs = attrs or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        end = f"{self.end:.6f}" if self.end is not None else "open"
        return (
            f"<Span {self.sid} {self.name} node={self.node} "
            f"[{self.start:.6f}..{end}] {self.attrs}>"
        )


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


class Tracer:
    """Collects spans; all timestamps are passed in explicitly by the
    instrumented call sites (``sim.now``), never read from a clock."""

    def __init__(self) -> None:
        self._spans: list[Span] = []
        self._tx: dict[int, int] = {}            # rid -> root sid
        self._blocks: dict[Any, int] = {}        # block key -> sid
        self._instances: dict[Any, int] = {}     # (cluster, slot) -> sid
        self._open: dict[Any, int] = {}          # phase key -> sid
        self._owned: dict[Any, list[Any]] = {}   # owner -> open phase keys

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def _new(
        self,
        name: str,
        node: str | None,
        start: float,
        parent: int | None,
        end: float | None = None,
        **attrs: Any,
    ) -> int:
        sid = len(self._spans)
        self._spans.append(Span(sid, parent, name, node, start, end, attrs))
        return sid

    def _end(self, sid: int, t: float, extend: bool = False) -> None:
        span = self._spans[sid]
        if span.end is None or (extend and t > span.end):
            span.end = t

    def new_run(self) -> None:
        """Start tracing a fresh deployment without dropping spans.

        Block/instance/phase keys are deployment-scoped (``(cluster,
        slot)`` tuples restart per deployment), so a process-wide
        tracer spanning several runs (``bench --trace`` over a matrix)
        must forget the previous deployment's key -> span indexes or
        later runs alias earlier spans.  Transaction roots stay:
        request ids come from a process-global counter and never
        collide.
        """
        self._blocks.clear()
        self._instances.clear()
        self._open.clear()
        self._owned.clear()

    @property
    def span_count(self) -> int:
        return len(self._spans)

    def spans(self) -> list[Span]:
        return self._spans

    def completed(
        self,
        name: str,
        node: str | None,
        start: float,
        end: float,
        parent: int | None,
        **attrs: Any,
    ) -> int:
        """Record an already-finished interval (message flights)."""
        return self._new(name, node, start, parent, end=end, **attrs)

    def point(
        self, name: str, node: str | None, t: float, parent: int | None,
        **attrs: Any,
    ) -> int:
        """A zero-duration marker."""
        return self._new(name, node, t, parent, end=t, **attrs)

    # ------------------------------------------------------------------
    # transaction roots
    # ------------------------------------------------------------------
    def tx_begin(self, rid: int, node: str | None, t: float, **attrs: Any) -> int:
        sid = self._tx.get(rid)
        if sid is None:
            sid = self._tx[rid] = self._new("tx", node, t, None, rid=rid, **attrs)
        return sid

    def tx_sid(self, rid: int) -> int | None:
        return self._tx.get(rid)

    def tx_annotate(self, rid: int, **attrs: Any) -> None:
        sid = self._tx.get(rid)
        if sid is not None:
            self._spans[sid].attrs.update(attrs)

    def tx_end(self, rid: int, t: float, ok: bool = True) -> None:
        sid = self._tx.get(rid)
        if sid is not None:
            self._end(sid, t)
            self._spans[sid].attrs["ok"] = ok

    # ------------------------------------------------------------------
    # blocks (one span per ordered batch, parented on its first tx)
    # ------------------------------------------------------------------
    def block_begin(
        self,
        key: Any,
        name: str,
        first_rid: int,
        node: str | None,
        t: float,
        **attrs: Any,
    ) -> int:
        sid = self._blocks.get(key)
        if sid is None:
            parent = self._tx.get(first_rid)
            sid = self._blocks[key] = self._new(
                name, node, t, parent, **attrs
            )
        return sid

    def block_sid(self, key: Any) -> int | None:
        return self._blocks.get(key)

    def block_end(self, key: Any, t: float) -> None:
        sid = self._blocks.get(key)
        if sid is not None:
            self._end(sid, t, extend=True)

    # ------------------------------------------------------------------
    # internal-consensus instances
    # ------------------------------------------------------------------
    def instance_begin(
        self,
        proto: str,
        cluster: str,
        slot: Any,
        node: str | None,
        t: float,
        parent: int | None,
    ) -> int:
        key = (cluster, slot)
        sid = self._instances.get(key)
        if sid is None:
            sid = self._instances[key] = self._new(
                f"{proto}.instance", node, t, parent,
                cluster=cluster, slot=repr(slot),
            )
        return sid

    def instance_sid(self, cluster: str, slot: Any) -> int | None:
        return self._instances.get((cluster, slot))

    def instance_start(self, cluster: str, slot: Any) -> float | None:
        sid = self._instances.get((cluster, slot))
        return self._spans[sid].start if sid is not None else None

    def decided(self, cluster: str, slot: Any, node: str, t: float) -> None:
        """One node decided the slot: close its open phases and extend
        the instance span to cover the decision."""
        self.close_owner((cluster, slot, node), t)
        sid = self._instances.get((cluster, slot))
        if sid is not None:
            self._end(sid, t, extend=True)

    # ------------------------------------------------------------------
    # open phases (keyed; grouped under an owner for bulk closing)
    # ------------------------------------------------------------------
    def phase_begin(
        self,
        key: Any,
        name: str,
        node: str | None,
        t: float,
        parent: int | None,
        owner: Any = None,
        **attrs: Any,
    ) -> int:
        sid = self._open.get(key)
        if sid is None:
            sid = self._open[key] = self._new(name, node, t, parent, **attrs)
            if owner is not None:
                self._owned.setdefault(owner, []).append(key)
        return sid

    def phase_end(self, key: Any, t: float) -> None:
        sid = self._open.pop(key, None)
        if sid is not None:
            self._end(sid, t)

    def close_owner(self, owner: Any, t: float) -> None:
        for key in self._owned.pop(owner, ()):
            self.phase_end(key, t)

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """The trace artifact: a schema header line, then one JSON
        object per span in creation (sid) order.  Deterministic: same
        seed, same bytes."""
        lines = [
            json.dumps(
                {"kind": "repro.obs.trace", "schema": TRACE_SCHEMA_VERSION},
                sort_keys=True,
                separators=(",", ":"),
            )
        ]
        for span in self._spans:
            record = {
                "sid": span.sid,
                "parent": span.parent,
                "name": span.name,
                "node": span.node,
                "start": round(span.start, 9),
                "end": round(span.end, 9) if span.end is not None else None,
                "attrs": {
                    str(k): _json_safe(v) for k, v in sorted(span.attrs.items())
                },
            }
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
        return "\n".join(lines) + "\n"


def merge_jsonl(shards: list[str]) -> str:
    """Merge per-worker trace JSONL shards (shard-parallel runs keep
    one tracer per worker process) into one artifact: a single header,
    then every shard's spans in worker order with sids — and the
    parent references pointing at them — offset past the previous
    shards', so ids stay unique and links stay intact.  Cross-worker
    parent links (a consensus span whose tx root lives in the root
    partition's worker) cannot be resolved and stay within-shard.
    """
    header = json.dumps(
        {"kind": "repro.obs.trace", "schema": TRACE_SCHEMA_VERSION},
        sort_keys=True,
        separators=(",", ":"),
    )
    lines = [header]
    offset = 0
    for shard in shards:
        count = 0
        for line in shard.splitlines():
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "repro.obs.trace":
                continue
            record["sid"] += offset
            if record["parent"] is not None:
                record["parent"] += offset
            count += 1
            lines.append(
                json.dumps(record, sort_keys=True, separators=(",", ":"))
            )
        offset += count
    return "\n".join(lines) + "\n"


# ======================================================================
# CLI: waterfalls and per-phase aggregates
# ======================================================================
def load_trace(path: str) -> list[dict[str, Any]]:
    """Parse a trace JSONL file into span records (header skipped)."""
    spans = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "repro.obs.trace":
                continue  # header
            spans.append(record)
    return spans


def _children_index(spans: list[dict[str, Any]]) -> dict[int | None, list[dict]]:
    children: dict[int | None, list[dict]] = {}
    for span in spans:
        children.setdefault(span["parent"], []).append(span)
    return children


def _subtree(root: dict, children: dict) -> list[tuple[int, dict]]:
    """Depth-first (depth, span) walk, stable by (start, sid)."""
    out: list[tuple[int, dict]] = []

    def walk(span: dict, depth: int) -> None:
        out.append((depth, span))
        for child in sorted(
            children.get(span["sid"], ()), key=lambda s: (s["start"], s["sid"])
        ):
            walk(child, depth + 1)

    walk(root, 0)
    return out


def _has_cross_descendant(root: dict, children: dict) -> bool:
    for _, span in _subtree(root, children):
        if span["name"] in ("block.isce", "block.csie", "block.csce"):
            return True
    return False


def render_waterfall(spans: list[dict], rid: int, width: int = 56) -> str:
    """Text waterfall of one transaction's span tree."""
    children = _children_index(spans)
    root = next(
        (
            s
            for s in spans
            if s["name"] == "tx" and s["attrs"].get("rid") == rid
        ),
        None,
    )
    if root is None:
        return f"no tx span for rid {rid}"
    tree = _subtree(root, children)
    t0 = root["start"]
    t1 = max(
        (s["end"] if s["end"] is not None else s["start"] for _, s in tree),
        default=t0,
    )
    total = max(t1 - t0, 1e-9)
    label_width = max(
        len("  " * depth + s["name"]) for depth, s in tree
    ) + 2
    lines = [
        f"tx {rid}: {1000.0 * (t1 - t0):.3f} ms "
        f"({len(tree)} spans, t0={t0:.6f}s)",
        "",
    ]
    for depth, span in tree:
        start = span["start"]
        end = span["end"] if span["end"] is not None else t1
        left = int(round((start - t0) / total * width))
        length = max(1, int(round((end - start) / total * width)))
        length = min(length, width - min(left, width - 1))
        bar = " " * min(left, width - 1) + "#" * length
        label = "  " * depth + span["name"]
        node = span["node"] or "-"
        open_mark = "" if span["end"] is not None else " (open)"
        lines.append(
            f"{label:<{label_width}}|{bar:<{width}}| "
            f"{1000.0 * (start - t0):8.3f} -> {1000.0 * (end - t0):8.3f} ms"
            f"  {node}{open_mark}"
        )
    return "\n".join(lines)


def aggregate_phases(spans: list[dict]) -> list[dict[str, Any]]:
    """Per-phase totals across the whole trace: the critical-path view
    ('where did the virtual time go, by protocol phase')."""
    stats: dict[str, list[float]] = {}
    for span in spans:
        if span["end"] is None:
            continue
        stats.setdefault(span["name"], []).append(span["end"] - span["start"])
    rows = []
    for name in sorted(stats):
        durations = stats[name]
        total = sum(durations)
        rows.append(
            {
                "phase": name,
                "count": len(durations),
                "total_ms": 1000.0 * total,
                "mean_ms": 1000.0 * total / len(durations),
                "max_ms": 1000.0 * max(durations),
            }
        )
    rows.sort(key=lambda r: -r["total_ms"])
    return rows


def list_transactions(spans: list[dict]) -> str:
    children = _children_index(spans)
    lines = ["rid        spans   duration_ms  cross  ok"]
    for span in spans:
        if span["name"] != "tx":
            continue
        rid = span["attrs"].get("rid")
        end = span["end"]
        duration = (
            f"{1000.0 * (end - span['start']):11.3f}" if end is not None
            else "       open"
        )
        cross = "yes" if _has_cross_descendant(span, children) else "no"
        count = len(_subtree(span, children))
        lines.append(
            f"{rid!s:<10} {count:<7} {duration}  {cross:<5} "
            f"{span['attrs'].get('ok', '-')}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description="Render trace JSONL: per-tx waterfalls and "
        "per-phase critical-path aggregates.",
    )
    parser.add_argument("trace", help="trace JSONL file (see docs/observability.md)")
    parser.add_argument(
        "--tx", type=int, default=None, metavar="RID",
        help="render the waterfall of one transaction",
    )
    parser.add_argument(
        "--cross", action="store_true",
        help="render the waterfall of the first cross-cluster transaction",
    )
    parser.add_argument(
        "--aggregate", action="store_true",
        help="print per-phase duration aggregates over the whole trace",
    )
    args = parser.parse_args(argv)
    spans = load_trace(args.trace)
    if args.cross and args.tx is None:
        children = _children_index(spans)
        for span in spans:
            if span["name"] == "tx" and _has_cross_descendant(span, children):
                args.tx = span["attrs"]["rid"]
                break
        if args.tx is None:
            print("no cross-cluster transaction in this trace")
            return 1
    printed = False
    if args.tx is not None:
        print(render_waterfall(spans, args.tx))
        printed = True
    if args.aggregate:
        if printed:
            print()
        print("phase                     count   total_ms    mean_ms     max_ms")
        for row in aggregate_phases(spans):
            print(
                f"{row['phase']:<25} {row['count']:>5} "
                f"{row['total_ms']:>10.3f} {row['mean_ms']:>10.3f} "
                f"{row['max_ms']:>10.3f}"
            )
        printed = True
    if not printed:
        print(list_transactions(spans))
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    raise SystemExit(main())
