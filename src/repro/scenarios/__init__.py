"""Declarative scenario engine: topology + workload + fault timeline
+ measurement as one spec (the §5 evaluation matrix as data).

    from repro.scenarios import ScenarioSpec, build, run_scenario

    spec = ScenarioSpec(name="demo", system="Flt-C", ...)
    deployment = build(spec)          # ready Deployment, faults armed
    report = run_scenario(spec)       # per-window throughput/latency

See ``docs/scenarios.md`` for the spec fields, the fault-event
vocabulary, and how to register a named scenario.
"""

from repro.scenarios.build import build, build_workload, pair_scopes
from repro.scenarios.faults import FaultScheduler, JitterOverlay
from repro.scenarios.registry import (
    BENCH_SCENARIOS,
    EXAMPLE_SCENARIOS,
    SMOKE_SCENARIOS,
    bench_scenarios,
    example_scenario,
    register_scenario,
)
from repro.scenarios.runner import (
    launch_workload,
    run_scenario,
    run_scenarios,
    summary_row,
)
from repro.scenarios.shardpar import (
    build_shardpar,
    run_scenario_shardpar,
    shardpar_scenario,
)
from repro.scenarios.spec import (
    FAULT_KINDS,
    ArrivalSpec,
    FaultEvent,
    MeasurementSpec,
    PopulationSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)

__all__ = [
    "ArrivalSpec",
    "BENCH_SCENARIOS",
    "EXAMPLE_SCENARIOS",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultScheduler",
    "JitterOverlay",
    "MeasurementSpec",
    "PopulationSpec",
    "SMOKE_SCENARIOS",
    "ScenarioSpec",
    "TopologySpec",
    "WorkloadSpec",
    "bench_scenarios",
    "build",
    "build_shardpar",
    "build_workload",
    "example_scenario",
    "launch_workload",
    "pair_scopes",
    "register_scenario",
    "run_scenario",
    "run_scenario_shardpar",
    "run_scenarios",
    "shardpar_scenario",
    "summary_row",
]
