"""Build deployments (and their workloads) from scenario specs.

:func:`build` is the single construction entry point: spec in, ready
:class:`~repro.core.deployment.Deployment` out — topology wired,
construction-time crashes applied, fault timeline armed.  The wiring
reproduces, step for step, what the hand-assembled construction sites
did (same config objects, same creation order), so the same seeds
produce bit-identical runs.

:func:`build_workload` adds the §5 SmallBank workload on top: the root
workflow, every pairwise shared collection, the wire-client pool (one
client per enterprise in the paper's setup; a bounded pool when the
spec declares a population), and a ``submit_next`` closure for
open-loop arrivals — plus trace capture/replay plumbing.
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.core.deployment import Deployment
from repro.scenarios.faults import FaultScheduler
from repro.scenarios.spec import ScenarioSpec
from repro.workload.generator import SmallBankWorkload, TxSpec
from repro.workload.population import ReplayCounts, population_from
from repro.workload.trace import TraceEntry, WorkloadTrace

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import DeploymentConfig


def pair_scopes(enterprises: tuple[str, ...]) -> list[frozenset]:
    """Shared collections used by the workload: the root plus every
    pair (private collaborations between two enterprises)."""
    scopes: list[frozenset] = []
    if len(enterprises) > 1:
        scopes.append(frozenset(enterprises))
    members = sorted(enterprises)
    for i, a in enumerate(members):
        for b in members[i + 1:]:
            scopes.append(frozenset((a, b)))
    return scopes


def _wan_latency(spec: ScenarioSpec):
    """The paper's four-AWS-region placement (§5.4): enterprises round-
    robin over regions, clients co-located with their enterprise."""
    from repro.sim.latency import RegionLatency

    regions = ("TY", "SU", "VA", "CA")
    region_of = {}
    for index, enterprise in enumerate(spec.topology.enterprises):
        for shard in range(spec.topology.shards):
            region_of[f"{enterprise}{shard + 1}"] = regions[index % 4]
    for index, enterprise in enumerate(spec.topology.enterprises):
        region_of[f"client-{enterprise}"] = regions[index % 4]
    return RegionLatency(region_of)


def resolve_latency(spec: ScenarioSpec):
    """The latency model a spec implies (explicit beats ``wan``)."""
    if spec.latency is not None:
        return spec.latency
    if spec.topology.wan:
        return _wan_latency(spec)
    return None


def build(spec: ScenarioSpec, config: "DeploymentConfig | None" = None) -> Deployment:
    """Spec in, ready deployment out.

    Builds the :class:`~repro.core.config.DeploymentConfig` (unless a
    pre-built one is passed), wires the cluster topology, and arms the
    fault timeline.  The scheduler is reachable as
    ``deployment.fault_scheduler`` (None when the timeline is empty —
    arming nothing keeps event sequence numbers, and therefore tie-
    breaking, identical to the pre-scenario construction path).
    """
    if config is None:
        config = spec.deployment_config()
    deployment = Deployment(
        config, latency=resolve_latency(spec), cost_model=spec.cost
    )
    deployment.fault_scheduler = None
    if spec.topology.crash_nodes:
        crash_backups(
            deployment, config.enterprises[0], spec.topology.crash_nodes
        )
        if config.use_firewall:
            # Table 3: one exec node and one filter also fail under the
            # privacy firewall.
            info = deployment.directory.at(config.enterprises[0], 0)
            firewall = deployment.firewalls[info.name]
            firewall.execution_nodes[-1].crash()
            firewall.rows[0][-1].crash()
    if spec.faults:
        deployment.fault_scheduler = FaultScheduler(
            deployment, spec.faults
        ).install()
    return deployment


def crash_backups(deployment: Deployment, enterprise: str, count: int):
    """Table 3 fault injection: fail ``count`` non-primary ordering
    nodes of the enterprise's first cluster; returns its info."""
    info = deployment.directory.at(enterprise, 0)
    primary = deployment.primary_of(info.name)
    backups = [m for m in info.members if m != primary]
    for member in backups[:count]:
        deployment.crash_node(member)
    return info


def build_workload(
    spec: ScenarioSpec, deployment: Deployment
) -> Callable[..., None]:
    """Wire the §5 SmallBank workload onto a built deployment.

    Creation order matters for bit-identical replay: root workflow,
    pairwise shared collections, workload generator, then the wire
    clients — one per enterprise (exactly the pre-scenario wiring)
    unless the spec declares a population or fan-out, in which case
    each enterprise gets its bounded pool, created eagerly so actors
    register before any shard-parallel partitioning.

    The returned ``submit_next(hot_shard=None)`` closure draws one
    transaction per call (``hot_shard`` aims a flash-crowd hotspot
    payment at that shard) and carries the run's plumbing as
    attributes: ``workload`` (generated-mix counters), ``population``,
    ``pools``, ``capture`` (a :class:`WorkloadTrace` being recorded, or
    None), ``trace`` (a loaded trace to replay, or None), and
    ``submit_entry`` (the per-entry replay submitter).
    """
    if spec.workload is None:
        raise ValueError(f"scenario {spec.name!r} declares no workload")
    enterprises = spec.topology.enterprises
    shards = spec.topology.shards
    deployment.create_workflow("bench", enterprises, contract="smallbank")
    scopes = pair_scopes(enterprises)
    for scope in scopes:
        if len(scope) < len(enterprises):
            deployment.collections.create(
                scope, contract="smallbank", num_shards=shards
            )
    workload = SmallBankWorkload(
        enterprises, shards, scopes, spec.workload.mix, seed=spec.seed
    )
    population = population_from(spec.workload, enterprises, spec.seed)
    if population is None:
        pools = {e: (deployment.create_client(e),) for e in enterprises}
    else:
        pools = {
            e: tuple(
                deployment.create_client(e) for _ in range(population.pool)
            )
            for e in enterprises
        }
    sim = deployment.sim
    capture = WorkloadTrace() if spec.workload.capture_trace else None

    def submit_spec(tx_spec: TxSpec, rank: int | None) -> None:
        pool = pools[tx_spec.enterprise]
        client = pool[0] if rank is None else pool[rank % len(pool)]
        tx = client.make_transaction(
            tx_spec.scope, tx_spec.operation, keys=tx_spec.keys,
            confidential=False,
        )
        client.submit(tx)

    def submit_next(hot_shard: int | None = None) -> None:
        if hot_shard is None:
            tx_spec = workload.next_spec()
        else:
            tx_spec = workload.hotspot_spec(hot_shard)
        rank = None
        if population is not None:
            rank = population.next_rank(tx_spec.enterprise)
        if capture is not None:
            capture.record(sim.now, tx_spec, rank)
        submit_spec(tx_spec, rank)

    replay = None
    counts = None
    if spec.workload.replay_trace:
        replay = WorkloadTrace.from_jsonl(
            Path(spec.workload.replay_trace).read_text()
        )
        counts = ReplayCounts()

    def submit_entry(entry: TraceEntry) -> None:
        counts.count(entry.spec.kind)
        rank = entry.client
        if population is not None and rank is not None:
            population.observe(entry.spec.enterprise, rank)
        submit_spec(entry.spec, rank)

    submit_next.workload = (  # expose generated-mix counters
        counts if counts is not None else workload
    )
    submit_next.population = population
    submit_next.pools = pools
    submit_next.capture = capture
    submit_next.trace = replay
    submit_next.submit_entry = submit_entry
    submit_next.supports_hotspot = True
    return submit_next
