"""Deterministic fault-timeline replay over a live deployment.

The :class:`FaultScheduler` arms one simulator timer per
:class:`~repro.scenarios.spec.FaultEvent` and, when a timer fires,
resolves the event's selectors against the deployment *at that
instant* (so ``primary:A1`` means the primary after any earlier view
changes) and drives the existing fault primitives:

- ``crash`` / ``recover`` — :meth:`SimNode.crash` / ``recover``;
- ``partition`` / ``heal`` — :meth:`repro.sim.network.Network.partition`
  / ``heal``;
- ``equivocate`` — :func:`repro.core.adversary.subvert` with an
  :class:`~repro.core.adversary.EquivocatingPrimary` forking
  pre-prepares toward ``f`` victims;
- ``wan_jitter`` — temporarily overlays the network's latency model
  with bounded extra uniform delay.

Everything is deterministic: timers fire at the spec's offsets,
selector resolution is order-stable, and the only randomness (jitter
delays) flows through the network's seeded generator.  The scheduler
records an event **trace** — ``(time, kind, resolved details)`` — so
tests can assert that the same spec and seed replay the identical
timeline.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.scenarios.spec import FaultEvent
from repro.sim.latency import LatencyModel

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.deployment import Deployment


class JitterOverlay(LatencyModel):
    """A latency model plus up to ``extra_ms`` of uniform one-way delay
    — a WAN weather event layered over the configured model."""

    def __init__(self, inner: LatencyModel, extra_ms: float):
        self.inner = inner
        self.extra = extra_ms / 1000.0

    def delay(self, src: str, dst: str, rng: random.Random) -> float:
        return self.inner.delay(src, dst, rng) + rng.uniform(0.0, self.extra)

    def sampler(self, src: str, dst: str):
        # Same draw order as delay(): inner model first, then the
        # overlay's own uniform draw (bit-identical to rng.uniform).
        inner = self.inner.sampler(src, dst)
        extra = self.extra
        return lambda rng: inner(rng) + extra * rng.random()

    def min_delay(self, src: str, dst: str) -> float:
        # The overlay only *adds* delay, so the inner floor still
        # holds — a mid-run jitter event can never invalidate the
        # lookahead the shard-parallel engine synchronized on.
        return self.inner.min_delay(src, dst)


#: Fault kinds that mutate network tables (blocked pairs, the latency
#: model) rather than node state.  In shard-parallel mode these fire on
#: *every* kernel — each partition applies them to its own view of the
#: network at the same virtual time — while node-state kinds fire only
#: on the kernel owning the target cluster.
_NETWORK_KINDS = frozenset(("partition", "heal", "wan_jitter"))

#: Selector kinds resolvable from build-time-static structure alone
#: (directory, firewalls, client list).  Network-kind events replicate
#: to every kernel, so their selectors must resolve identically
#: everywhere — ``primary:``/``backup:`` read live consensus state and
#: would diverge.
_STATIC_SELECTOR_KINDS = frozenset(("node", "cluster", "enterprise", "clients"))

#: Elasticity kinds: planned reconfiguration under load.  They mutate
#: global deployment structure (collection registry, directory), which
#: per-partition kernels cannot apply consistently — sequential only.
_ELASTIC_KINDS = frozenset(("create_collection", "swap_member"))


class FaultScheduler:
    """Replays a fault timeline through simulator timers."""

    def __init__(self, deployment: "Deployment", events: tuple[FaultEvent, ...]):
        self.deployment = deployment
        self.events = tuple(events)
        #: Resolved replay log: (virtual time, kind, details).
        self.trace: list[tuple[float, str, str]] = []
        self._subverted: list[object] = []
        self._reconfig = None
        self._armed = False
        # Shard-parallel replication control: a network-kind event
        # fires on every kernel but only the root partition's firing
        # records the trace (see _fire_partitioned).
        self._trace_enabled = True

    # ------------------------------------------------------------------
    # arming
    # ------------------------------------------------------------------
    def install(self, base_time: float | None = None) -> "FaultScheduler":
        """Schedule every event at ``base_time + event.at`` (default:
        now).  Idempotence guard: a scheduler installs once."""
        if self._armed:
            raise ConfigurationError("fault scheduler already installed")
        self._armed = True
        sim = self.deployment.sim
        start = sim.now if base_time is None else base_time
        for event in self.events:
            sim.schedule_at(start + event.at, self._fire, event)
        return self

    def install_partitioned(self, facade, pmap) -> "FaultScheduler":
        """Arm the timeline on per-partition kernels (shard-parallel).

        Node-state events (crash/recover/equivocate) are scheduled only
        on the kernel owning the target's cluster, where selector
        resolution — including live reads like ``primary:A1`` — happens
        against local, current state.  Network-table events
        (partition/heal/wan_jitter) are scheduled on *every* kernel:
        each partition applies them to its own view of the network at
        the same virtual time, and only the root partition's firing
        records the trace entry.
        """
        if self._armed:
            raise ConfigurationError("fault scheduler already installed")
        self._armed = True
        for event in self.events:
            if event.kind in _ELASTIC_KINDS:
                raise ConfigurationError(
                    f"{event.kind} events reconfigure global deployment "
                    "structure (collection registry, directory), which "
                    "per-partition kernels cannot apply consistently; "
                    "run elasticity scenarios with kernel_workers=None"
                )
            if event.kind in _NETWORK_KINDS:
                for group in event.groups:
                    for selector in group:
                        kind = selector.partition(":")[0]
                        if kind not in _STATIC_SELECTOR_KINDS:
                            raise ConfigurationError(
                                f"fault selector {selector!r} resolves "
                                "against live consensus state, which "
                                "shard-parallel network events replaying "
                                "on every kernel cannot read "
                                "consistently; use node:/cluster:/"
                                "enterprise:/clients: selectors or run "
                                "with kernel_workers=None"
                            )
                for pid, kernel in enumerate(facade.kernels):
                    kernel.schedule_at(
                        kernel.now + event.at,
                        self._fire_partitioned,
                        event,
                        pid == 0,
                    )
            else:
                pid = self._owning_pid(event, pmap)
                facade.kernels[pid].schedule_at(
                    facade.kernels[pid].now + event.at,
                    self._fire_partitioned,
                    event,
                    True,
                )
        return self

    def _owning_pid(self, event: FaultEvent, pmap) -> int:
        """The partition whose kernel must fire a node-state event."""
        kind, _, rest = event.target.partition(":")
        if kind == "node":
            return pmap.pid_of_node(rest)
        if kind in ("primary", "backup", "cluster"):
            return pmap.pid_of_cluster(rest.partition(":")[0])
        if kind == "clients":
            # Clients live in the root partition; membership is fixed
            # at build time, so resolution there is worker-invariant.
            return 0
        raise ConfigurationError(
            f"{event.kind} target {event.target!r} spans multiple "
            "partitions; shard-parallel runs route each node-state "
            "fault to one owning cluster kernel — list the clusters "
            "explicitly or run with kernel_workers=None"
        )

    # ------------------------------------------------------------------
    # selector resolution
    # ------------------------------------------------------------------
    def resolve(self, selector: str) -> list[str]:
        """Node ids a selector names *right now* (deterministic order)."""
        deployment = self.deployment
        kind, _, rest = selector.partition(":")
        if kind == "node":
            return [rest]
        if kind == "primary":
            return [deployment.primary_of(rest)]
        if kind == "backup":
            cluster, _, index = rest.partition(":")
            members = deployment.directory.get(cluster).members
            primary = deployment.primary_of(cluster)
            backups = [m for m in members if m != primary]
            return [backups[int(index or 0)]]
        if kind == "cluster":
            return list(deployment.directory.get(rest).members)
        if kind == "enterprise":
            ids: list[str] = []
            for shard in range(deployment.config.shards_per_enterprise):
                info = deployment.directory.at(rest, shard)
                ids.extend(info.members)
                firewall = deployment.firewalls.get(info.name)
                if firewall is not None:
                    ids.extend(e.node_id for e in firewall.execution_nodes)
                    ids.extend(f.node_id for row in firewall.rows for f in row)
            return ids
        if kind == "clients":
            return [
                c.node_id
                for c in deployment.clients
                if c.enterprise == rest
            ]
        raise ConfigurationError(f"unresolvable fault target {selector!r}")

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------
    def _fire(self, event: FaultEvent) -> None:
        handler = getattr(self, f"_on_{event.kind}")
        detail = handler(event)
        # Rounded like every other virtual-time stamp in scenario
        # reports (window edges, obs spans): 9 decimals — nanosecond
        # resolution — so fire times never leak float noise like
        # 0.15000000000000002 into BENCH_scenarios.json.
        self.trace.append(
            (round(self.deployment.sim.now, 9), event.kind, detail)
        )

    def _fire_partitioned(self, event: FaultEvent, record: bool) -> None:
        """One kernel's firing of an event armed by
        :meth:`install_partitioned`: same handlers, but the trace is
        recorded only where ``record`` is set — node-state events on
        their owning kernel, network events on the root partition —
        so the merged per-worker traces hold each entry exactly once."""
        handler = getattr(self, f"_on_{event.kind}")
        previous = self._trace_enabled
        self._trace_enabled = record
        try:
            detail = handler(event)
        finally:
            self._trace_enabled = previous
        if record:
            self.trace.append(
                (round(self.deployment.sim.now, 9), event.kind, detail)
            )

    def _on_crash(self, event: FaultEvent) -> str:
        nodes = self.resolve(event.target)
        for node_id in nodes:
            self.deployment.network.node(node_id).crash()
        return ",".join(nodes)

    def _on_recover(self, event: FaultEvent) -> str:
        nodes = self.resolve(event.target)
        for node_id in nodes:
            self.deployment.network.node(node_id).recover()
        return ",".join(nodes)

    def _on_partition(self, event: FaultEvent) -> str:
        groups = [
            sorted({n for sel in group for n in self.resolve(sel)})
            for group in event.groups
        ]
        self.deployment.network.partition(*groups)
        return "|".join(",".join(g) for g in groups)

    def _on_heal(self, event: FaultEvent) -> str:
        self.deployment.network.heal()
        return "all"

    def _on_equivocate(self, event: FaultEvent) -> str:
        from repro.core.adversary import EquivocatingPrimary, subvert

        (primary_id,) = self.resolve(event.target)
        node = self.deployment.nodes[primary_id]
        members = node.cluster.members
        f = self.deployment.config.f
        victims = [m for m in members if m != primary_id][:f]
        behavior = EquivocatingPrimary(victims)
        subvert(node, behavior)
        self._subverted.append(behavior)
        return f"{primary_id}->" + ",".join(victims)

    def _reconfigurator(self):
        """Lazily built so non-elastic timelines never register the
        ConfigContract — their event streams stay bit-identical to the
        pre-elasticity runner."""
        if self._reconfig is None:
            from repro.core.reconfig import Reconfigurator

            self._reconfig = Reconfigurator(self.deployment)
        return self._reconfig

    def _on_create_collection(self, event: FaultEvent) -> str:
        """Provision a new shared collection under load: an ordered
        ConfigContract transaction submitted by the first client of the
        scope's alphabetically first enterprise."""
        enterprise = sorted(event.scope)[0]
        client = next(
            c for c in self.deployment.clients if c.enterprise == enterprise
        )
        # The returned request id rides a process-wide counter, which
        # varies with how many runs shared this worker process — keep
        # it out of the (byte-compared) trace detail.
        self._reconfigurator().create_collection(
            client, event.scope, contract="smallbank"
        )
        return ",".join(sorted(event.scope))

    def _on_swap_member(self, event: FaultEvent) -> str:
        """Retire the ordering node named by the ``backup:`` selector
        and splice a fresh replica into its membership slot."""
        (old_id,) = self.resolve(event.target)
        cluster = event.target.partition(":")[2].partition(":")[0]
        new_id = self._reconfigurator().swap_member(cluster, old_id)
        return f"{old_id}->{new_id}"

    def _on_wan_jitter(self, event: FaultEvent) -> str:
        network = self.deployment.network
        overlay = JitterOverlay(network.latency, event.jitter_ms)
        network.latency = overlay
        record = self._trace_enabled

        def restore() -> None:
            # Only strip our own overlay; a later jitter event may have
            # replaced the model again.
            if network.latency is overlay:
                network.latency = overlay.inner
            if record:
                self.trace.append(
                    (
                        round(self.deployment.sim.now, 9),
                        "wan_jitter_end",
                        f"{event.jitter_ms}ms",
                    )
                )

        self.deployment.sim.schedule(event.duration, restore)
        return f"+{event.jitter_ms}ms for {event.duration}s"
