"""The named-scenario registry.

Two registries live here:

- :data:`BENCH_SCENARIOS` — factories for the evaluation matrix.  Each
  factory takes a scale object (anything with ``enterprises`` /
  ``shards`` / ``warmup`` / ``measure`` / ``drain`` / ``fixed_rate``
  attributes — :class:`repro.bench.experiments.Scale` fits) and a seed
  and returns a ready :class:`~repro.scenarios.spec.ScenarioSpec`.
  Fault offsets are computed from the scale's windows so the same
  scenario stresses the same protocol phase at every scale.
  ``python -m repro.bench --experiment scenarios`` runs this matrix.

- :data:`EXAMPLE_SCENARIOS` — the static topology specs the
  ``examples/`` scripts are built from (workload-free: examples drive
  their own sessions).

Register your own with :func:`register_scenario` — see
``docs/scenarios.md``.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.scenarios.spec import (
    ArrivalSpec,
    FaultEvent,
    MeasurementSpec,
    PopulationSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.workload.generator import WorkloadMix

ScenarioFactory = Callable[[Any, int], ScenarioSpec]

#: Scenario-name -> factory(scale, seed) for the bench matrix.
BENCH_SCENARIOS: dict[str, ScenarioFactory] = {}

#: Scenarios worth running on every CI push (kept fast and fault-free
#: enough to be stable at smoke scale).
SMOKE_SCENARIOS = (
    "steady-crash-flattened",
    "backup-crash-recover",
    "partition-heal",
)


def register_scenario(name: str, factory: ScenarioFactory) -> ScenarioFactory:
    """Add a named scenario to the bench matrix (idempotent by name)."""
    BENCH_SCENARIOS[name] = factory
    return factory


def _registered(name: str):
    """Decorator form of :func:`register_scenario`."""

    def wrap(factory: ScenarioFactory) -> ScenarioFactory:
        return register_scenario(name, factory)

    return wrap


def bench_scenarios(
    scale: Any, seed: int = 1, names: tuple[str, ...] | None = None
) -> dict[str, ScenarioSpec]:
    """Materialize (part of) the registry at one scale."""
    selected = names if names is not None else tuple(BENCH_SCENARIOS)
    unknown = set(selected) - set(BENCH_SCENARIOS)
    if unknown:
        raise KeyError(
            f"unknown scenarios {sorted(unknown)}; registered: "
            + ", ".join(sorted(BENCH_SCENARIOS))
        )
    return {name: BENCH_SCENARIOS[name](scale, seed) for name in selected}


def _measurement(scale: Any, window: float = 0.0) -> MeasurementSpec:
    return MeasurementSpec(
        warmup=scale.warmup, measure=scale.measure, drain=scale.drain,
        window=window,
    )


def _topology(scale: Any, **overrides: Any) -> TopologySpec:
    base: dict[str, Any] = dict(
        enterprises=scale.enterprises, shards=scale.shards, batch_size=16
    )
    base.update(overrides)
    return TopologySpec(**base)


# ----------------------------------------------------------------------
# fault-free corners of the matrix
# ----------------------------------------------------------------------
@_registered("steady-crash-flattened")
def _steady_crash(scale: Any, seed: int) -> ScenarioSpec:
    """Flt-C at a fixed load, 10% intra-shard cross-enterprise."""
    return ScenarioSpec(
        name="steady-crash-flattened",
        system="Flt-C",
        topology=_topology(scale),
        workload=WorkloadSpec(
            rate=scale.fixed_rate, mix=WorkloadMix(cross=0.10, cross_type="isce")
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


@_registered("byzantine-firewall")
def _byzantine_firewall(scale: Any, seed: int) -> ScenarioSpec:
    """Full Fig 4(d) infrastructure: BFT ordering + privacy firewall."""
    return ScenarioSpec(
        name="byzantine-firewall",
        system="Flt-B(PF)",
        topology=_topology(scale),
        workload=WorkloadSpec(
            rate=scale.fixed_rate / 2,
            mix=WorkloadMix(cross=0.10, cross_type="isce"),
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


@_registered("coordinator-cross-shard")
def _coordinator_cross_shard(scale: Any, seed: int) -> ScenarioSpec:
    """Crd-B with 20% cross-shard intra-enterprise traffic (Fig 8 cell)."""
    return ScenarioSpec(
        name="coordinator-cross-shard",
        system="Crd-B",
        topology=_topology(scale),
        workload=WorkloadSpec(
            rate=scale.fixed_rate / 2,
            mix=WorkloadMix(cross=0.20, cross_type="csie"),
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


@_registered("contended-hotspot")
def _contended_hotspot(scale: Any, seed: int) -> ScenarioSpec:
    """Zipfian skew s=2 over 500 accounts/shard (Fig 11's mechanism)."""
    return ScenarioSpec(
        name="contended-hotspot",
        system="Flt-C",
        topology=_topology(scale),
        workload=WorkloadSpec(
            rate=scale.fixed_rate,
            mix=WorkloadMix(
                cross=0.10, cross_type="isce", zipf_s=2.0,
                accounts_per_shard=500,
            ),
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


@_registered("geo-wan")
def _geo_wan(scale: Any, seed: int) -> ScenarioSpec:
    """Four AWS regions (§5.4), 10% cross-shard cross-enterprise."""
    return ScenarioSpec(
        name="geo-wan",
        system="Flt-B",
        topology=_topology(scale, wan=True),
        workload=WorkloadSpec(
            rate=scale.fixed_rate / 4,
            mix=WorkloadMix(cross=0.10, cross_type="csce"),
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


@_registered("fabric-baseline")
def _fabric_baseline(scale: Any, seed: int) -> ScenarioSpec:
    """Hyperledger Fabric under the steady-state workload — the same
    registry drives the baseline families."""
    return ScenarioSpec(
        name="fabric-baseline",
        system="Fabric",
        topology=_topology(scale),
        workload=WorkloadSpec(
            rate=scale.fixed_rate, mix=WorkloadMix(cross=0.10, cross_type="isce")
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


# ----------------------------------------------------------------------
# fault-timeline scenarios
# ----------------------------------------------------------------------
@_registered("backup-crash-recover")
def _backup_crash_recover(scale: Any, seed: int) -> ScenarioSpec:
    """A backup ordering replica dies a third into the measurement
    window and restarts two thirds in — throughput must not collapse
    (2f+1 masks one crash) and the drain window shows recovery."""
    t0 = scale.warmup + scale.measure / 3
    t1 = scale.warmup + 2 * scale.measure / 3
    cluster = f"{scale.enterprises[0]}1"
    return ScenarioSpec(
        name="backup-crash-recover",
        system="Flt-C",
        topology=_topology(scale),
        workload=WorkloadSpec(
            rate=scale.fixed_rate, mix=WorkloadMix(cross=0.10, cross_type="isce")
        ),
        faults=(
            FaultEvent(at=t0, kind="crash", target=f"backup:{cluster}:0"),
            FaultEvent(at=t1, kind="recover", target=f"backup:{cluster}:0"),
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


@_registered("partition-heal")
def _partition_heal(scale: Any, seed: int) -> ScenarioSpec:
    """The first enterprise (clusters + clients) is cut off from the
    rest a quarter into the measurement window, then healed at the
    midpoint: cross-enterprise commits stall and complete after the
    heal, with no divergent ledgers.  Timeouts are shortened so
    recovery lands inside the drain window."""
    first, rest = scale.enterprises[0], scale.enterprises[1:]
    group_a = (f"enterprise:{first}", f"clients:{first}")
    group_b = tuple(
        sel for e in rest for sel in (f"enterprise:{e}", f"clients:{e}")
    )
    return ScenarioSpec(
        name="partition-heal",
        system="Flt-C",
        topology=_topology(
            scale,
            extras=(
                ("consensus_timeout", 0.05),
                ("cross_timeout", 0.2),
                ("request_timeout", 0.1),
            ),
        ),
        workload=WorkloadSpec(
            rate=scale.fixed_rate / 2,
            mix=WorkloadMix(cross=0.20, cross_type="isce"),
        ),
        faults=(
            FaultEvent(
                at=scale.warmup + scale.measure / 4,
                kind="partition",
                groups=(group_a, group_b),
            ),
            FaultEvent(at=scale.warmup + scale.measure / 2, kind="heal"),
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


@_registered("equivocating-primary")
def _equivocating_primary(scale: Any, seed: int) -> ScenarioSpec:
    """The first cluster's primary starts forking pre-prepares toward
    f victims at the end of warmup (§4.3.5's adversary): agreement must
    hold — every replica that decides decides the same value."""
    cluster = f"{scale.enterprises[0]}1"
    return ScenarioSpec(
        name="equivocating-primary",
        system="Flt-B",
        topology=_topology(scale),
        workload=WorkloadSpec(
            rate=scale.fixed_rate / 2,
            mix=WorkloadMix(cross=0.10, cross_type="isce"),
        ),
        faults=(
            FaultEvent(
                at=scale.warmup, kind="equivocate", target=f"primary:{cluster}"
            ),
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


@_registered("wan-jitter-burst")
def _wan_jitter_burst(scale: Any, seed: int) -> ScenarioSpec:
    """Geo-replicated run with a WAN weather event: +40 ms of uniform
    extra one-way delay for the middle half of the measurement window."""
    return ScenarioSpec(
        name="wan-jitter-burst",
        system="Flt-B",
        topology=_topology(scale, wan=True),
        workload=WorkloadSpec(
            rate=scale.fixed_rate / 4,
            mix=WorkloadMix(cross=0.10, cross_type="isce"),
        ),
        faults=(
            FaultEvent(
                at=scale.warmup + scale.measure / 4,
                kind="wan_jitter",
                duration=scale.measure / 2,
                jitter_ms=40.0,
            ),
        ),
        measurement=_measurement(scale),
        seed=seed,
    )


# ----------------------------------------------------------------------
# population-scale scenario families (flash crowds, elasticity, the
# byzantine matrix) — see docs/scenarios.md
# ----------------------------------------------------------------------
@_registered("flash-crowd-migration")
def _flash_crowd_migration(scale: Any, seed: int) -> ScenarioSpec:
    """A million logical clients per enterprise (Zipf 1.1 activity skew
    over ranks, eight wire clients each); a 3x flash crowd arrives a
    quarter into the measurement window, lasts half of it, and aims 60%
    of its arrivals at a hotspot that migrates across shards every
    eighth of the window.  The per-bucket ``series`` block shows the
    spike hitting and the hotspot walking."""
    return ScenarioSpec(
        name="flash-crowd-migration",
        system="Flt-C",
        topology=_topology(scale),
        workload=WorkloadSpec(
            rate=scale.fixed_rate,
            mix=WorkloadMix(cross=0.10, cross_type="isce"),
            population=PopulationSpec(size=1_000_000, skew=1.1, pool=8),
            arrival=ArrivalSpec(
                profile="flash",
                spike=3.0,
                spike_start=scale.warmup + scale.measure / 4,
                spike_duration=scale.measure / 2,
                hot_fraction=0.6,
                migrate_every=scale.measure / 8,
            ),
        ),
        measurement=_measurement(scale, window=scale.measure / 6),
        seed=seed,
    )


@_registered("elastic-reconfig")
def _elastic_reconfig(scale: Any, seed: int) -> ScenarioSpec:
    """Elasticity under load: while a diurnal wave drives a populated
    workload, the deployment provisions two new three-party shared
    collections through ordered ConfigContract transactions and swaps a
    backup ordering replica for a fresh one mid-run.  Four enterprises
    regardless of scale — triples must be *new* scopes (the builder
    pre-creates the root and every pair), and a 2-enterprise topology
    has no triples.  Checkpointing is on so the spliced-in replica can
    catch up by state transfer."""
    enterprises = ("A", "B", "C", "D")
    t = scale.warmup
    m = scale.measure
    return ScenarioSpec(
        name="elastic-reconfig",
        system="Flt-C",
        topology=_topology(
            scale, enterprises=enterprises, checkpoint_interval=16
        ),
        workload=WorkloadSpec(
            rate=scale.fixed_rate / 2,
            mix=WorkloadMix(cross=0.10, cross_type="isce"),
            population=PopulationSpec(size=100_000, skew=0.9, pool=4),
            arrival=ArrivalSpec(profile="diurnal", period=m, amplitude=0.4),
        ),
        faults=(
            FaultEvent(
                at=t + m / 4, kind="create_collection",
                scope=("A", "B", "C"),
            ),
            FaultEvent(at=t + m / 2, kind="swap_member", target="backup:A1:0"),
            FaultEvent(
                at=t + 3 * m / 4, kind="create_collection",
                scope=("B", "C", "D"),
            ),
        ),
        measurement=_measurement(scale, window=m / 6),
        seed=seed,
    )


def _register_byzantine_matrix() -> None:
    """The byzantine matrix: fault timelines × arrival profiles, each
    cell a BFT run over a populated workload.  Registered
    programmatically so the axes stay visibly orthogonal."""

    def factory(fault_name: str, profile_name: str):
        def build(scale: Any, seed: int) -> ScenarioSpec:
            t = scale.warmup
            m = scale.measure
            cluster = f"{scale.enterprises[0]}1"
            faults = {
                "backup-crash": (
                    FaultEvent(
                        at=t + m / 3, kind="crash",
                        target=f"backup:{cluster}:0",
                    ),
                    FaultEvent(
                        at=t + 2 * m / 3, kind="recover",
                        target=f"backup:{cluster}:0",
                    ),
                ),
                "equivocate": (
                    FaultEvent(
                        at=t, kind="equivocate", target=f"primary:{cluster}"
                    ),
                ),
            }[fault_name]
            arrival = {
                "diurnal": ArrivalSpec(
                    profile="diurnal", period=m, amplitude=0.4
                ),
                "flash": ArrivalSpec(
                    profile="flash",
                    spike=2.0,
                    spike_start=t + m / 4,
                    spike_duration=m / 2,
                ),
            }[profile_name]
            return ScenarioSpec(
                name=f"byz-{fault_name}-{profile_name}",
                system="Flt-B",
                topology=_topology(scale),
                workload=WorkloadSpec(
                    rate=scale.fixed_rate / 2,
                    mix=WorkloadMix(cross=0.10, cross_type="isce"),
                    population=PopulationSpec(size=100_000, skew=1.0, pool=4),
                    arrival=arrival,
                ),
                faults=faults,
                measurement=_measurement(scale, window=m / 6),
                seed=seed,
            )

        return build

    for fault_name in ("backup-crash", "equivocate"):
        for profile_name in ("diurnal", "flash"):
            register_scenario(
                f"byz-{fault_name}-{profile_name}",
                factory(fault_name, profile_name),
            )


_register_byzantine_matrix()


# ----------------------------------------------------------------------
# the examples' topologies, as named specs
# ----------------------------------------------------------------------
#: Topology-only specs (``workload=None``) behind ``examples/``; each
#: example opens one with ``Network.from_scenario`` and drives its own
#: sessions.  Config values mirror the scripts' original hand-built
#: ``DeploymentConfig`` objects exactly.
EXAMPLE_SCENARIOS: dict[str, ScenarioSpec] = {
    "quickstart": ScenarioSpec(
        name="quickstart",
        system="Flt-C",
        topology=TopologySpec(
            enterprises=("A", "B"), shards=1, batch_size=8, batch_wait=0.001
        ),
        workload=None,
    ),
    "confidential-assets": ScenarioSpec(
        name="confidential-assets",
        system="Flt-C",
        topology=TopologySpec(
            enterprises=("A", "B"), shards=1, batch_size=2, batch_wait=0.001
        ),
        workload=None,
    ),
    "cross-workflow-consistency": ScenarioSpec(
        name="cross-workflow-consistency",
        system="Flt-C",
        topology=TopologySpec(
            enterprises=("K", "L", "M", "N"), shards=1, batch_size=4,
            batch_wait=0.001,
        ),
        workload=None,
    ),
    "crowdworking-platform": ScenarioSpec(
        name="crowdworking-platform",
        system="Flt-C",
        topology=TopologySpec(
            enterprises=("X", "Y", "Z"), shards=1, batch_size=2,
            batch_wait=0.001,
        ),
        workload=None,
    ),
    "healthcare-network": ScenarioSpec(
        name="healthcare-network",
        system="Flt-B",
        topology=TopologySpec(
            enterprises=("H", "I", "P"), shards=1, batch_size=2,
            batch_wait=0.001,
        ),
        workload=None,
    ),
    "light-client-audit": ScenarioSpec(
        name="light-client-audit",
        system="Flt-B",
        topology=TopologySpec(
            enterprises=("A", "B"), shards=1, batch_size=4, batch_wait=0.001
        ),
        workload=None,
    ),
    "privacy-firewall": ScenarioSpec(
        name="privacy-firewall",
        system="Flt-B(PF)",
        topology=TopologySpec(
            enterprises=("A", "B"), shards=1, batch_size=4, batch_wait=0.001
        ),
        workload=None,
    ),
    "vaccine-supply-chain": ScenarioSpec(
        name="vaccine-supply-chain",
        system="Crd-B",
        topology=TopologySpec(
            enterprises=("M", "S", "L", "T", "H"), shards=1, batch_size=4,
            batch_wait=0.001,
        ),
        workload=None,
    ),
    "crash-recovery": ScenarioSpec(
        name="crash-recovery",
        system="Flt-C",
        topology=TopologySpec(
            enterprises=("A", "B"), shards=1, batch_size=8, batch_wait=0.001,
            checkpoint_interval=8, storage_backend="wal",
        ),
        workload=None,
    ),
}


def example_scenario(name: str) -> ScenarioSpec:
    """A named example topology (raises with the valid names)."""
    try:
        return EXAMPLE_SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown example scenario {name!r}; available: "
            + ", ".join(sorted(EXAMPLE_SCENARIOS))
        ) from None
