"""Measure one scenario: drive it, observe every window, report.

Unlike :func:`repro.bench.runner.run_point` (one number pair at one
offered load), the scenario runner reports **per-window** results —
throughput, mean latency, completions, and abort rate for each of the
warmup / measure / drain windows — plus the resolved fault trace, so a
scenario with a mid-run crash shows the dip *and* the recovery.

The simulator advance runs under the spec's event budget
(``measurement.max_events``) with ``raise_on_limit``: a protocol bug
that schedules a timer loop surfaces as a
:class:`~repro.errors.SimulationLimitError` naming the virtual time
and queue head instead of an apparent hang.
"""

from __future__ import annotations

import gc
import time
from typing import Any

from repro.scenarios.spec import ScenarioSpec


class paused_gc:
    """Disable the cyclic garbage collector for the duration of one
    bounded simulation run.

    A point run allocates millions of short-lived objects, all freed
    by reference counting; the generational collector just re-scans
    the long-lived deployment graph over and over (measured at ~25%
    of smoke-matrix wall-clock).  Cyclic garbage produced during the
    run is bounded by the run itself and is collected as soon as the
    collector is re-enabled.  No-op when the collector was already
    disabled by the caller.
    """

    def __enter__(self) -> None:
        self._was_enabled = gc.isenabled()
        if self._was_enabled:
            gc.disable()

    def __exit__(self, *exc: Any) -> None:
        if self._was_enabled:
            gc.enable()


def perf_block(
    wall_start: float, counters_before: dict[str, int], events: int
) -> dict[str, Any]:
    """The ``perf`` metadata block every bench point records: wall
    clock since ``wall_start``, simulated ``events`` (+ rate), and the
    hot-path counter deltas since ``counters_before``.  Shared by
    :func:`run_scenario` and :func:`repro.bench.runner.run_point` so
    the two artifact families cannot drift."""
    from repro.crypto import hashing

    wall = time.perf_counter() - wall_start
    counters_after = hashing.counters()
    return {
        "wall_clock_s": round(wall, 6),
        "events": events,
        "events_per_sec": round(events / wall, 1) if wall > 0 else 0.0,
        "digest_calls": (
            counters_after["digest_calls"] - counters_before["digest_calls"]
        ),
        "encode_bytes": (
            counters_after["encode_bytes"] - counters_before["encode_bytes"]
        ),
        "verify_calls": (
            counters_after["verify_calls"] - counters_before["verify_calls"]
        ),
    }


def launch_workload(
    sim: Any, spec: ScenarioSpec, submit: Any, duration: float
) -> None:
    """Schedule the spec's offered load onto a simulator.

    One dispatcher for every execution path (sequential, shard-parallel
    root kernel, bench points): a workload spec with a ``replay_trace``
    walks the loaded trace with the single-cursor scheduler; anything
    else runs open-loop arrivals through
    :func:`repro.workload.population.launch_arrivals`, building the
    rate profile from the spec's :class:`~repro.scenarios.spec.
    ArrivalSpec` (``None`` → the byte-identical constant-rate loop).
    ``submit`` is the builder's closure (``build_workload``'s return),
    which carries the trace/replay plumbing as attributes.
    """
    from repro.workload.population import launch_arrivals

    trace = getattr(submit, "trace", None)
    if trace is not None:
        trace.schedule(sim, submit.submit_entry)
        return
    workload = spec.workload
    profile = None
    if workload.arrival is not None:
        profile = workload.arrival.build_profile(spec.topology.shards)
    launch_arrivals(
        sim, workload.rate, duration, submit, spec.seed,
        profile=profile,
        supports_hotspot=getattr(submit, "supports_hotspot", False),
    )


def write_capture(spec: ScenarioSpec, submit: Any) -> None:
    """Persist a run's captured trace to the spec's ``capture_trace``
    path (JSONL, one entry per submitted transaction)."""
    capture = getattr(submit, "capture", None)
    if capture is None or spec.workload.capture_trace is None:
        return
    from pathlib import Path

    path = Path(spec.workload.capture_trace)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(capture.to_jsonl() + "\n")


def series_report(
    metrics: Any, m: Any
) -> list[dict[str, Any]]:
    """Per-bucket window reports over the measure window: the measure
    interval sliced into ``m.window``-second buckets (last bucket
    clipped at the measure edge)."""
    total = m.warmup + m.measure
    series: list[dict[str, Any]] = []
    start = m.warmup
    while start < total - 1e-12:
        end = min(start + m.window, total)
        series.append(_window_report(metrics, start, end))
        start = end
    return series


def _window_report(metrics: Any, start: float, end: float) -> dict[str, Any]:
    return {
        # Window edges rounded like every other virtual-time stamp in
        # the report (fault-trace fire times, obs spans): 9 decimals.
        "start_s": round(start, 9),
        "end_s": round(end, 9),
        "throughput_tps": metrics.throughput(start, end),
        "mean_latency_ms": metrics.mean_latency(start, end) * 1000.0,
        "p50_latency_ms": metrics.percentile_latency(50, start, end) * 1000.0,
        "p95_latency_ms": metrics.percentile_latency(95, start, end) * 1000.0,
        "p99_latency_ms": metrics.percentile_latency(99, start, end) * 1000.0,
        "completed": metrics.completed_count(start, end),
        "aborted": metrics.aborted_count(start, end),
        "abort_rate": metrics.abort_rate(start, end),
    }


def run_scenario(spec: ScenarioSpec) -> dict[str, Any]:
    """Build the spec's system, replay its timeline, measure every
    window; returns a JSON-ready report.

    The report carries a ``perf`` block — wall-clock seconds,
    simulated events, events/sec, and the hot-path counter deltas from
    :func:`repro.crypto.hashing.counters` — so every
    ``BENCH_scenarios.json`` records a perf trajectory.  ``perf`` is
    metadata, not a result: artifact comparisons exclude it (see
    ``repro.bench.report.strip_perf`` and ``python -m
    repro.bench.compare``).
    """
    from repro import obs
    from repro.bench.drivers import build_driver
    from repro.crypto import hashing

    if spec.kernel_workers is not None:
        from repro.scenarios.shardpar import run_scenario_shardpar

        return run_scenario_shardpar(spec)
    if spec.workload is None:
        raise ValueError(
            f"scenario {spec.name!r} declares no workload; "
            "run_scenario measures workload-driven scenarios"
        )
    m = spec.measurement
    # Observability: a spec with trace=True owns the obs lifecycle for
    # this run (enable before construction — hot objects capture obs
    # state when built — disable in finally); a caller that enabled
    # obs beforehand (bench --trace) keeps ownership.  Either way the
    # tracing-off path below is the seed's single bounded run, bit for
    # bit.
    owned = bool(getattr(spec, "trace", False)) and not obs.enabled()
    if owned:
        obs.enable()
    obs_on = obs.enabled()
    if obs_on:
        # Deployment-scoped obs state (block/instance keys, probe
        # decisions) must not leak between runs sharing one tracer.
        obs.TRACER.new_run()
        if obs.PROBES is not None:
            obs.PROBES.reset()
    counters_before = hashing.counters()
    wall_start = time.perf_counter()
    try:
        with paused_gc():
            driver = build_driver(spec)
        try:
            total = m.warmup + m.measure
            submit = getattr(driver, "_submit", None) or driver.submit_next
            with paused_gc():
                launch_workload(driver.sim, spec, submit, total)
                if obs_on:
                    # Segmented advance: pause at every window edge to
                    # sample gauges.  Back-to-back bounded runs tile
                    # the timeline exactly (the kernel advances the
                    # clock to `until` between calls), so event order
                    # — and every reported number — matches the single
                    # run below.
                    base = driver.sim.now
                    for offset, edge in (
                        (m.warmup, "warmup"),
                        (total, "measure"),
                        (m.total, "drain"),
                    ):
                        driver.sim.run(
                            until=base + offset,
                            max_events=m.max_events,
                            raise_on_limit=True,
                        )
                        obs.sample(driver, edge)
                else:
                    driver.sim.run(
                        until=driver.sim.now + m.total,
                        max_events=m.max_events,
                        raise_on_limit=True,
                    )
            perf = perf_block(
                wall_start, counters_before, driver.sim.events_processed
            )
            metrics = driver.metrics()
            windows = {
                "warmup": _window_report(metrics, 0.0, m.warmup),
                "measure": _window_report(metrics, m.warmup, total),
                "drain": _window_report(metrics, total, m.total),
            }
            scheduler = getattr(driver.system, "fault_scheduler", None)
            trace = (
                [
                    {"t": t, "kind": kind, "detail": detail}
                    for t, kind, detail in scheduler.trace
                ]
                if scheduler is not None
                else []
            )
            workload = getattr(submit, "workload", None)
            generated = dict(workload.generated) if workload is not None else {}
            population = getattr(submit, "population", None)
            population_stats = (
                population.stats() if population is not None else None
            )
            if population_stats is not None:
                perf["client_pool"] = population_stats["wire_clients"]
            series = series_report(metrics, m) if m.window > 0 else None
            write_capture(spec, submit)
            obs_block = _obs_report(driver, owned) if obs_on else None
        finally:
            driver.close()
    finally:
        if owned:
            obs.disable()
    report = {
        "scenario": spec.name,
        "system": spec.system,
        "seed": spec.seed,
        "offered_tps": spec.workload.rate,
        "enterprises": list(spec.topology.enterprises),
        "shards": spec.topology.shards,
        "fault_events": len(spec.faults),
        "fault_trace": trace,
        "generated": generated,
        "windows": windows,
        "perf": perf,
    }
    if population_stats is not None:
        report["population"] = population_stats
    if series is not None:
        report["series"] = series
    if obs_block is not None:
        report["obs"] = obs_block
    return report


def _obs_report(driver: Any, owned: bool) -> dict[str, Any]:
    """The ``obs`` block a traced scenario embeds next to ``perf``:
    schema version, span count, and metric snapshot.  When the run
    *owns* the tracer (``spec.trace=True``), the trace JSONL rides
    along too — that is how process-pool workers and spec-owned runs
    hand the trace back after :func:`repro.obs.disable` tears the
    tracer down.  Under a caller-enabled tracer (``bench --trace``)
    the tracer is cumulative across runs, so the caller exports it.

    Runs the end-of-run invariant probes first — a traced run that
    broke sequence monotonicity or ledger agreement fails loudly here
    rather than reporting plausible numbers.
    """
    from repro import obs
    from repro.obs import TRACE_SCHEMA_VERSION

    system = getattr(driver, "system", driver)
    if obs.PROBES is not None and hasattr(system, "executors_of"):
        obs.PROBES.ledger_agreement(system)
    block: dict[str, Any] = {
        "schema": TRACE_SCHEMA_VERSION,
        "spans": obs.TRACER.span_count if obs.TRACER is not None else 0,
        "metrics": obs.REGISTRY.snapshot() if obs.REGISTRY is not None else {},
    }
    if owned and obs.TRACER is not None:
        block["trace_jsonl"] = obs.TRACER.to_jsonl()
    return block


def run_scenarios(
    specs: dict[str, ScenarioSpec], jobs: int | None = None
) -> dict[str, dict[str, Any]]:
    """Measure several scenarios, optionally in parallel.

    Each scenario is independent (its spec carries everything a worker
    needs), so with ``jobs`` > 1 the matrix fans out over a process
    pool via :mod:`repro.bench.parallel`.  The returned mapping is
    keyed and ordered like ``specs`` regardless of job count or worker
    completion order — the determinism guarantee ``BENCH_scenarios.json``
    is stated over.
    """
    from repro.bench.parallel import PointTask, execute_tasks

    tasks = [
        PointTask(key=(name,), spec=spec, kind="scenario")
        for name, spec in specs.items()
    ]
    raw = execute_tasks(tasks, jobs=jobs)
    return {name: raw[(name,)] for name in specs}


def summary_row(report: dict[str, Any]) -> str:
    """One printable row per scenario (paper-style)."""
    measure = report["windows"]["measure"]
    return (
        f"{report['scenario']:<24} {report['system']:<10} "
        f"offered={report['offered_tps']:>8.0f} tps  "
        f"achieved={measure['throughput_tps']:>8.0f} tps  "
        f"latency={measure['mean_latency_ms']:>7.2f} ms  "
        f"aborts={measure['abort_rate']:>5.1%}  "
        f"faults={report['fault_events']}"
    )
