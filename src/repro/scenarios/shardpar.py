"""Shard-parallel scenario execution (``ScenarioSpec.kernel_workers``).

Builds a deployment whose actors share a
:class:`~repro.sim.partition.PartitionedSimulator` — one event kernel
per cluster plus a root kernel for clients and arrivals — and advances
it with the conservative-lookahead engine
(:class:`~repro.sim.shardpar.ShardParEngine`) over ``kernel_workers``
forked processes.

The determinism contract: :func:`run_scenario_shardpar` produces
byte-identical reports (modulo the ``perf``/``obs`` metadata blocks) at
**any** worker count, because every worker count executes the same
windowed envelope algorithm — ``kernel_workers=1`` is the in-process
reference.  The *plain* sequential kernel (``kernel_workers=None``)
interleaves partitions differently and is a separately valid run of
the same scenario, not a byte-comparison target.

Restrictions (each enforced with a clear error, never a deadlock):
Qanaat topologies only; ``memory`` storage (forked workers cannot
share file handles); a latency model with a positive
:meth:`~repro.sim.latency.LatencyModel.min_delay` across partition
boundaries; fault selectors resolvable by one owning partition
(see :meth:`~repro.scenarios.faults.FaultScheduler.install_partitioned`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import ConfigurationError
from repro.scenarios.spec import (
    MeasurementSpec,
    ScenarioSpec,
    TopologySpec,
    WorkloadSpec,
)
from repro.sim.partition import (
    ROOT_PID,
    PartitionMap,
    PartitionedSimulator,
    boundary_lookahead,
)
from repro.sim.shardpar import ShardParEngine


@dataclass
class ShardParBuild:
    """Everything :func:`run_scenario_shardpar` needs from construction."""

    deployment: Any
    facade: PartitionedSimulator
    pmap: PartitionMap
    submit_next: Callable[[], None]
    lookahead: float


def build_shardpar(spec: ScenarioSpec) -> ShardParBuild:
    """Build a partitioned deployment for a spec (validation included).

    Mirrors the sequential construction path step for step — same
    config, same creation order — so the simulated behavior matches
    what ``build(spec)`` wires; only the scheduling substrate differs.
    """
    from repro.core.deployment import Deployment
    from repro.scenarios.build import (
        build_workload,
        crash_backups,
        resolve_latency,
    )
    from repro.scenarios.faults import FaultScheduler
    from repro.sim.costs import CalibratedCost

    if spec.workload is None:
        raise ValueError(
            f"scenario {spec.name!r} declares no workload; "
            "run_scenario measures workload-driven scenarios"
        )
    if spec.topology.storage_backend != "memory":
        raise ConfigurationError(
            f"kernel_workers requires storage_backend='memory' "
            f"(got {spec.topology.storage_backend!r}): forked workers "
            "cannot share WAL/SQLite file handles"
        )
    # Raises for baseline families / unknown labels — the shard-
    # parallel builder only wires Qanaat topologies.
    spec.system_options()
    if spec.cost is None:
        import dataclasses

        spec = dataclasses.replace(spec, cost=CalibratedCost())

    config = spec.deployment_config()
    cluster_names = [
        f"{enterprise}{shard + 1}"
        for enterprise in config.enterprises
        for shard in range(config.shards_per_enterprise)
    ]
    pmap = PartitionMap(cluster_names)
    facade = PartitionedSimulator(pmap)
    deployment = Deployment(
        config,
        latency=resolve_latency(spec),
        cost_model=spec.cost,
        sim=facade,
        static_primaries=True,
    )
    deployment.fault_scheduler = None
    if spec.topology.crash_nodes:
        crash_backups(
            deployment, config.enterprises[0], spec.topology.crash_nodes
        )
        if config.use_firewall:
            info = deployment.directory.at(config.enterprises[0], 0)
            firewall = deployment.firewalls[info.name]
            firewall.execution_nodes[-1].crash()
            firewall.rows[0][-1].crash()
    submit_next = build_workload(spec, deployment)
    # Lookahead needs every node registered (clients included) and the
    # plain latency property, so it runs right before partitioning
    # flips transmission over to envelopes.
    lookahead = boundary_lookahead(
        deployment.network.latency, pmap, deployment.network.node_ids()
    )
    deployment.network.enable_partitioning(pmap, facade)
    if spec.faults:
        deployment.fault_scheduler = FaultScheduler(
            deployment, spec.faults
        ).install_partitioned(facade, pmap)
    return ShardParBuild(deployment, facade, pmap, submit_next, lookahead)


def run_scenario_shardpar(spec: ScenarioSpec) -> dict[str, Any]:
    """The shard-parallel :func:`~repro.scenarios.runner.run_scenario`.

    Reports carry the same keys plus a deterministic ``kernel`` block
    (partition count, lookahead, window count — all invariant under
    worker count) and a ``perf`` block extended with ``kernel_workers``
    and per-worker counters.  The event budget is enforced at window
    barriers (window granularity) rather than per event.
    """
    from repro import obs
    from repro.core.deployment import Metrics
    from repro.crypto import hashing
    from repro.scenarios.runner import (
        _window_report,
        launch_workload,
        paused_gc,
        series_report,
    )

    workers = spec.kernel_workers
    if workers is None:
        raise ValueError("spec.kernel_workers is not set")
    m = spec.measurement
    owned_obs = bool(spec.trace) and not obs.enabled()
    if owned_obs:
        obs.enable()
    obs_on = obs.enabled()
    if obs_on:
        obs.TRACER.new_run()
        if obs.PROBES is not None:
            obs.PROBES.reset()
    counters_start = hashing.counters()
    wall_start = time.perf_counter()
    try:
        with paused_gc():
            built = build_shardpar(spec)
        deployment = built.deployment
        facade = built.facade
        scheduler = deployment.fault_scheduler
        workload = built.submit_next.workload
        population = getattr(built.submit_next, "population", None)
        capture = getattr(built.submit_next, "capture", None)
        metrics = deployment.metrics
        network = deployment.network
        # Per-worker counter deltas are taken against the counters at
        # fork time (build work happened once, in the parent, and is
        # inherited by every child's absolute counters).
        counters_built = hashing.counters()

        def collect(owned_pids: list[int]) -> dict[str, Any]:
            # Runs inside each worker process after the final barrier:
            # whatever a report needs from forked memory crosses back
            # here, picklable and partition-owned.
            payload: dict[str, Any] = {
                "events": sum(
                    facade.kernels[pid].events_processed
                    for pid in owned_pids
                ),
                "messages_sent": network.messages_sent,
                "messages_dropped": network.messages_dropped,
                "counters": hashing.counters(),
                "fault_trace": list(scheduler.trace)
                if scheduler is not None
                else [],
                "generated": None,
                "metrics": None,
            }
            if ROOT_PID in owned_pids:
                payload["generated"] = dict(workload.generated)
                payload["metrics"] = (
                    metrics.completions,
                    metrics._done_at,
                    metrics._abort_at,
                )
                # Population stats and the captured trace live on the
                # root kernel (clients and arrivals run there); they
                # cross back as plain data for the parent to report.
                payload["population"] = (
                    population.stats() if population is not None else None
                )
                payload["capture_jsonl"] = (
                    capture.to_jsonl() if capture is not None else None
                )
            if obs.enabled():
                payload["obs"] = {
                    "spans": obs.TRACER.span_count,
                    "metrics": obs.REGISTRY.snapshot(),
                    "trace_jsonl": obs.TRACER.to_jsonl(),
                }
            return payload

        with paused_gc():
            with facade.activate(ROOT_PID):
                launch_workload(
                    facade, spec, built.submit_next, m.warmup + m.measure
                )
            engine = ShardParEngine(
                facade, network, built.lookahead, workers
            )
            payloads = engine.run(
                m.total, max_events=m.max_events, collect=collect
            )
        deployment.close()
    finally:
        if owned_obs:
            obs.disable()

    root = payloads[0]
    merged = Metrics()
    completions, done_at, abort_at = root["metrics"]
    merged.completions = completions
    merged._done_at = done_at
    merged._abort_at = abort_at
    total = m.warmup + m.measure
    events_total = sum(p["events"] for p in payloads)
    trace = sorted(tuple(entry) for p in payloads for entry in p["fault_trace"])
    wall = time.perf_counter() - wall_start
    perf = {
        "wall_clock_s": round(wall, 6),
        "events": events_total,
        "events_per_sec": round(events_total / wall, 1) if wall > 0 else 0.0,
        "digest_calls": (
            counters_built["digest_calls"] - counters_start["digest_calls"]
        )
        + sum(
            p["counters"]["digest_calls"] - counters_built["digest_calls"]
            for p in payloads
        ),
        "encode_bytes": (
            counters_built["encode_bytes"] - counters_start["encode_bytes"]
        )
        + sum(
            p["counters"]["encode_bytes"] - counters_built["encode_bytes"]
            for p in payloads
        ),
        "verify_calls": (
            counters_built["verify_calls"] - counters_start["verify_calls"]
        )
        + sum(
            p["counters"]["verify_calls"] - counters_built["verify_calls"]
            for p in payloads
        ),
        "kernel_workers": engine.workers,
        "workers": [
            {
                "events": p["events"],
                "messages_sent": p["messages_sent"],
                "messages_dropped": p["messages_dropped"],
                "digest_calls": (
                    p["counters"]["digest_calls"]
                    - counters_built["digest_calls"]
                ),
                "encode_bytes": (
                    p["counters"]["encode_bytes"]
                    - counters_built["encode_bytes"]
                ),
                "verify_calls": (
                    p["counters"]["verify_calls"]
                    - counters_built["verify_calls"]
                ),
            }
            for p in payloads
        ],
    }
    report: dict[str, Any] = {
        "scenario": spec.name,
        "system": spec.system,
        "seed": spec.seed,
        "offered_tps": spec.workload.rate,
        "enterprises": list(spec.topology.enterprises),
        "shards": spec.topology.shards,
        "fault_events": len(spec.faults),
        "fault_trace": [
            {"t": t, "kind": kind, "detail": detail} for t, kind, detail in trace
        ],
        "generated": root["generated"] or {},
        # Deterministic facts about the partitioned kernel itself —
        # invariant under worker count, hence part of the comparable
        # results rather than perf metadata.
        "kernel": {
            "partitions": len(built.pmap),
            "lookahead_s": round(built.lookahead, 9),
            "windows": engine.windows_run,
        },
        "windows": {
            "warmup": _window_report(merged, 0.0, m.warmup),
            "measure": _window_report(merged, m.warmup, total),
            "drain": _window_report(merged, total, m.total),
        },
        "perf": perf,
    }
    if root.get("population") is not None:
        report["population"] = root["population"]
        perf["client_pool"] = root["population"]["wire_clients"]
    if m.window > 0:
        report["series"] = series_report(merged, m)
    if root.get("capture_jsonl") is not None and spec.workload.capture_trace:
        from pathlib import Path

        path = Path(spec.workload.capture_trace)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(root["capture_jsonl"] + "\n")
    if obs_on:
        from repro.obs.metrics import MetricRegistry
        from repro.obs.trace import TRACE_SCHEMA_VERSION, merge_jsonl

        shards = [p["obs"] for p in payloads if p.get("obs") is not None]
        # The cross-cluster ledger-agreement probe needs live executor
        # state from every partition at once; per-worker copies of
        # foreign clusters are stale by design, so it is skipped here
        # (the inline per-node sequence probes still ran everywhere).
        report["obs"] = {
            "schema": TRACE_SCHEMA_VERSION,
            "spans": sum(shard["spans"] for shard in shards),
            "metrics": MetricRegistry.merge_snapshots(
                [shard["metrics"] for shard in shards]
            ),
            "trace_jsonl": merge_jsonl(
                [shard["trace_jsonl"] for shard in shards]
            ),
        }
    return report


def shardpar_scenario(
    shards: int = 4,
    seed: int = 1,
    enterprises: tuple[str, ...] = ("A", "B"),
    system: str = "Flt-C",
    rate_per_cluster: float = 250.0,
    warmup: float = 0.1,
    measure: float = 0.3,
    drain: float = 0.15,
    kernel_workers: int | None = None,
) -> ScenarioSpec:
    """A canonical shard-scaling scenario: offered load grows with the
    cluster count, so wider topologies keep per-cluster pressure — the
    shape the ``--experiment shardpar`` sweep and the CI smoke use."""
    from repro.workload.generator import WorkloadMix

    return ScenarioSpec(
        name=f"shardpar-{len(enterprises)}x{shards}",
        system=system,
        topology=TopologySpec(enterprises=enterprises, shards=shards),
        workload=WorkloadSpec(
            rate=rate_per_cluster * shards * len(enterprises),
            mix=WorkloadMix(cross=0.2),
        ),
        measurement=MeasurementSpec(warmup=warmup, measure=measure, drain=drain),
        seed=seed,
        kernel_workers=kernel_workers,
    )
