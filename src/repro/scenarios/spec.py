"""Declarative scenario specifications.

The paper's evaluation (§5) is a matrix of scenarios — enterprises ×
shards × crash/Byzantine clusters × workload mixes × injected faults.
A :class:`ScenarioSpec` captures one cell of that matrix as data:

- **topology** — who runs (:class:`TopologySpec`): enterprises, shards
  per enterprise, fault model / firewall (usually via the bench system
  label, e.g. ``"Flt-B(PF)"``), batching, storage;
- **workload** — what is offered (:class:`WorkloadSpec`): a
  :class:`~repro.workload.generator.WorkloadMix`, an open-loop Poisson
  arrival rate, clients — optionally a :class:`PopulationSpec` of
  logical clients multiplexed onto a wire pool, an :class:`ArrivalSpec`
  rate profile (diurnal wave, flash crowd), and trace capture/replay;
- **faults** — what goes wrong (:class:`FaultEvent` timeline): an
  ordered list of ``crash`` / ``recover`` / ``partition`` / ``heal`` /
  ``equivocate`` / ``wan_jitter`` events at virtual-time offsets,
  replayed deterministically by
  :class:`~repro.scenarios.faults.FaultScheduler`;
- **measurement** — how it is observed (:class:`MeasurementSpec`):
  warmup / measure / drain windows and an event budget.

``repro.scenarios.build(spec)`` turns a spec into a ready
:class:`~repro.core.deployment.Deployment`;
``repro.scenarios.run_scenario(spec)`` measures it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError
from repro.workload.generator import WorkloadMix

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.config import DeploymentConfig
    from repro.sim.costs import CostModel
    from repro.sim.latency import LatencyModel

#: The fault-event vocabulary (docs/scenarios.md documents each kind).
#: The last two are *elasticity* events — planned reconfiguration under
#: load rather than failures — replayed through
#: :class:`~repro.core.reconfig.Reconfigurator`.
FAULT_KINDS = (
    "crash",
    "recover",
    "partition",
    "heal",
    "equivocate",
    "wan_jitter",
    "create_collection",
    "swap_member",
)

#: Selector prefixes resolvable by the fault scheduler.
SELECTOR_PREFIXES = ("node", "primary", "backup", "cluster", "enterprise", "clients")


@dataclass(frozen=True)
class TopologySpec:
    """Who runs: the deployment side of a scenario.

    The fault model / cross-cluster protocol / firewall usually come
    from the scenario's *system label* (``ScenarioSpec.system``, e.g.
    ``"Crd-B(PF)"`` — the §5 configuration names); the explicit fields
    here override the label for topologies outside the bench matrix.
    ``extras`` is the declarative escape hatch: raw
    :class:`~repro.core.config.DeploymentConfig` keyword overrides
    (e.g. shortened protocol timeouts for fault tests), applied last.
    """

    enterprises: tuple[str, ...] = ("A", "B", "C", "D")
    shards: int = 4
    failure_model: str | None = None
    cross_protocol: str | None = None
    use_firewall: bool | None = None
    execution_model: str | None = None
    filter_model: str | None = None
    f: int | None = None
    batch_size: int = 64
    batch_wait: float = 0.002
    #: Adaptive sealing + pipelined instance windows (PR 10): with
    #: ``batch_adaptive`` on, ``batch_size`` becomes the *cap* a batch
    #: grows toward while the ``max_inflight`` window is full; with the
    #: defaults (off / None) batching is byte-identical to the seed.
    batch_adaptive: bool = False
    max_inflight: int | None = None
    checkpoint_interval: int = 0
    #: Table-3-style construction-time crashes: fail this many backup
    #: ordering nodes of the first enterprise's first cluster before
    #: the run starts.  Timed crashes belong in the fault timeline.
    crash_nodes: int = 0
    storage_backend: str = "memory"
    storage_dir: str | None = None
    #: Geo-distribute clusters over the paper's four AWS regions
    #: (§5.4) instead of a single datacenter.
    wan: bool = False
    extras: tuple[tuple[str, Any], ...] = ()


@dataclass(frozen=True)
class PopulationSpec:
    """A synthetic population of logical clients per enterprise.

    ``size`` logical ranks with Zipf activity skew ``skew`` are
    multiplexed onto ``pool`` wire-level ``Client`` actors (rank ``r``
    rides slot ``r % pool``), so a million-user declaration costs
    O(pool) actors.  See :class:`repro.workload.population.PopulationModel`.
    """

    size: int = 1
    skew: float = 0.0
    pool: int = 1

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ConfigurationError("population size must be >= 1")
        if self.pool < 1:
            raise ConfigurationError("wire-client pool must be >= 1")
        if self.skew < 0:
            raise ConfigurationError("population skew must be non-negative")


@dataclass(frozen=True)
class ArrivalSpec:
    """The arrival-rate profile of an open-loop run.

    ``constant`` is the classic homogeneous Poisson process (and the
    byte-identical default when no ArrivalSpec is given); ``diurnal``
    modulates the base rate by ``1 + amplitude·sin(2πt/period)``;
    ``flash`` multiplies it by ``spike`` inside ``[spike_start,
    spike_start + spike_duration)``, aiming ``hot_fraction`` of the
    spike's arrivals at a hotspot that migrates to the next shard every
    ``migrate_every`` seconds.  Offsets are virtual-time seconds from
    the run start, like fault offsets.
    """

    profile: str = "constant"
    period: float = 0.0
    amplitude: float = 0.0
    spike: float = 1.0
    spike_start: float = 0.0
    spike_duration: float = 0.0
    hot_fraction: float = 0.0
    migrate_every: float = 0.0

    def __post_init__(self) -> None:
        if self.profile not in ("constant", "diurnal", "flash"):
            raise ConfigurationError(
                f"unknown arrival profile {self.profile!r}; valid: "
                "constant, diurnal, flash"
            )
        if self.profile == "diurnal" and (
            self.period <= 0 or not 0 <= self.amplitude < 1
        ):
            raise ConfigurationError(
                "diurnal profiles need period > 0 and 0 <= amplitude < 1"
            )
        if self.profile == "flash" and (
            self.spike < 1.0 or self.spike_duration <= 0
        ):
            raise ConfigurationError(
                "flash profiles need spike >= 1 and spike_duration > 0"
            )
        if not 0 <= self.hot_fraction <= 1:
            raise ConfigurationError("hot_fraction must be in [0, 1]")

    def build_profile(self, num_shards: int = 1):
        """The runtime profile object the arrival engine consumes."""
        from repro.workload.population import (
            ConstantRate,
            DiurnalRate,
            FlashCrowdRate,
        )

        if self.profile == "constant":
            return ConstantRate()
        if self.profile == "diurnal":
            return DiurnalRate(period=self.period, amplitude=self.amplitude)
        return FlashCrowdRate(
            spike=self.spike,
            spike_start=self.spike_start,
            spike_duration=self.spike_duration,
            hot_fraction=self.hot_fraction,
            migrate_every=self.migrate_every,
            num_shards=num_shards,
        )


@dataclass(frozen=True)
class WorkloadSpec:
    """What is offered: the SmallBank workload side of a scenario."""

    rate: float = 4_000.0
    mix: WorkloadMix = field(default_factory=WorkloadMix)
    #: Wire-level client fan-out.  1 is the paper's setup (§5); larger
    #: values create that many clients per enterprise and spread
    #: submissions uniformly across them.  For skewed, population-scale
    #: multiplexing use ``population`` instead (the two are exclusive).
    clients_per_enterprise: int = 1
    #: Millions-of-logical-clients declaration (Zipf activity skew over
    #: ranks, bounded wire pool); ``None`` keeps the legacy wiring.
    population: PopulationSpec | None = None
    #: Arrival-rate profile; ``None`` is the classic constant-rate
    #: Poisson process, bit-identical to pre-profile runs.
    arrival: ArrivalSpec | None = None
    #: Write the run's exact transaction stream (arrival time, spec,
    #: logical rank) as JSONL to this path after the run.
    capture_trace: str | None = None
    #: Read a captured JSONL stream and replay it instead of generating
    #: arrivals — the replayed report is byte-identical (modulo
    #: perf/obs) to the captured run's.
    replay_trace: str | None = None

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigurationError("workload rate must be positive")
        if self.clients_per_enterprise < 1:
            raise ConfigurationError("clients_per_enterprise must be >= 1")
        if self.population is not None and self.clients_per_enterprise != 1:
            raise ConfigurationError(
                "population and clients_per_enterprise are exclusive: a "
                "population declares its own wire pool"
            )
        if self.capture_trace is not None and self.replay_trace is not None:
            raise ConfigurationError(
                "capture_trace and replay_trace are exclusive"
            )


@dataclass(frozen=True)
class FaultEvent:
    """One timed fault: *at* seconds of virtual time, do *kind*.

    Targets are **selectors**, resolved against the live deployment
    when the event fires (so "the current primary" means the primary
    *then*, after any earlier view changes):

    - ``node:A1.o2`` — one node by id;
    - ``primary:A1`` — the current primary of cluster A1;
    - ``backup:A1:0`` — the i-th non-primary ordering node of A1;
    - ``cluster:A1`` — every ordering node of A1;
    - ``enterprise:A`` — every ordering node of every A cluster;
    - ``clients:A`` — enterprise A's clients.

    ``partition`` uses ``groups`` (tuples of selectors; traffic between
    groups is cut); ``wan_jitter`` adds up to ``jitter_ms`` of uniform
    extra one-way delay to every link for ``duration`` seconds.

    Elasticity events reconfigure under load: ``create_collection``
    provisions a new shared collection over ``scope`` (>= 2 enterprise
    names) through an ordered ConfigContract transaction;
    ``swap_member`` retires the ordering node named by a ``backup:``
    selector and splices a fresh replica into its cluster.
    """

    at: float
    kind: str
    target: str | None = None
    groups: tuple[tuple[str, ...], ...] = ()
    duration: float = 0.0
    jitter_ms: float = 0.0
    #: Enterprise names for ``create_collection`` events.
    scope: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ConfigurationError("fault offsets must be >= 0")
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; valid: "
                + ", ".join(FAULT_KINDS)
            )
        if self.kind in ("crash", "recover", "equivocate") and not self.target:
            raise ConfigurationError(f"{self.kind} events need a target")
        if self.kind == "partition" and len(self.groups) < 2:
            raise ConfigurationError("partition events need >= 2 groups")
        if self.kind == "wan_jitter" and (
            self.duration <= 0 or self.jitter_ms <= 0
        ):
            raise ConfigurationError(
                "wan_jitter events need a positive duration and jitter_ms"
            )
        if self.kind == "create_collection" and len(self.scope) < 2:
            raise ConfigurationError(
                "create_collection events need a scope of >= 2 enterprises"
            )
        if self.kind == "swap_member" and not (
            self.target and self.target.startswith("backup:")
        ):
            raise ConfigurationError(
                "swap_member events need a backup:<cluster>:<i> target"
            )
        if self.target is not None:
            _check_selector(self.target)
        for group in self.groups:
            for selector in group:
                _check_selector(selector)


def _check_selector(selector: str) -> None:
    prefix = selector.split(":", 1)[0]
    if ":" not in selector or prefix not in SELECTOR_PREFIXES:
        raise ConfigurationError(
            f"bad fault target {selector!r}; selectors look like "
            + ", ".join(f"{p}:..." for p in SELECTOR_PREFIXES)
        )


@dataclass(frozen=True)
class MeasurementSpec:
    """How the run is observed: §5's warmup/measure/drain windows."""

    warmup: float = 0.2
    measure: float = 0.4
    drain: float = 0.2
    #: Event budget for one run; the scenario runner turns exhaustion
    #: into a :class:`~repro.errors.SimulationLimitError` diagnostic
    #: instead of spinning forever on a timer loop.
    max_events: int = 20_000_000
    #: Per-window time series: > 0 slices the measure window into
    #: buckets of this many seconds and embeds a ``series`` block in the
    #: report (throughput/latency per bucket — how flash crowds and
    #: reconfigurations read).  0 (the default) keeps reports unchanged.
    window: float = 0.0

    def __post_init__(self) -> None:
        if min(self.warmup, self.measure, self.drain) < 0 or self.measure == 0:
            raise ConfigurationError("measurement windows must be positive")
        if self.window < 0:
            raise ConfigurationError("series window must be >= 0")

    @property
    def total(self) -> float:
        return self.warmup + self.measure + self.drain


@dataclass(frozen=True)
class ScenarioSpec:
    """One named cell of the evaluation matrix, as data."""

    name: str
    system: str = "Flt-C"
    topology: TopologySpec = field(default_factory=TopologySpec)
    workload: WorkloadSpec | None = field(default_factory=WorkloadSpec)
    faults: tuple[FaultEvent, ...] = ()
    measurement: MeasurementSpec = field(default_factory=MeasurementSpec)
    seed: int = 0
    #: Runtime objects (latency/cost models) are injectable for the
    #: legacy run_point path; declarative specs use ``topology.wan``.
    latency: "LatencyModel | None" = None
    cost: "CostModel | None" = None
    #: Enable the :mod:`repro.obs` causal tracer / metric registry for
    #: this run.  Off (the default) costs nothing and leaves reports
    #: byte-identical; on, the runner embeds an ``obs`` block in the
    #: report and the trace can be exported as JSONL.
    trace: bool = False
    #: Shard-parallel simulation: run one event kernel per cluster,
    #: spread over this many worker processes with conservative
    #: lookahead at the network boundary (``None`` — the default —
    #: keeps the plain sequential kernel).  Reports are byte-identical
    #: (modulo ``perf``/``obs``) at any worker count; see
    #: docs/performance.md.
    kernel_workers: int | None = None

    def __post_init__(self) -> None:
        faults = tuple(self.faults)
        if list(faults) != sorted(faults, key=lambda e: e.at):
            raise ConfigurationError(
                "fault timelines must be ordered by offset"
            )
        object.__setattr__(self, "faults", faults)
        if self.kernel_workers is not None and self.kernel_workers < 1:
            raise ConfigurationError(
                f"kernel_workers must be >= 1 (or None for the "
                f"sequential kernel): {self.kernel_workers}"
            )

    # ------------------------------------------------------------------
    # derived configuration
    # ------------------------------------------------------------------
    def system_options(self) -> dict[str, Any]:
        """The §5 protocol options encoded by the system label.

        Only Qanaat configuration labels describe a deployment topology;
        a typo'd or baseline label raises instead of silently falling
        back to a default crash/flattened deployment with plausible but
        wrong numbers.
        """
        from repro.bench.drivers import known_systems
        from repro.bench.runner import FIG4_CONFIGS, QANAAT_PROTOCOLS

        if self.system in QANAAT_PROTOCOLS:
            return dict(QANAAT_PROTOCOLS[self.system])
        if self.system in FIG4_CONFIGS:
            return dict(FIG4_CONFIGS[self.system])
        if self.system in known_systems():
            raise ConfigurationError(
                f"system {self.system!r} is a baseline family, not a "
                "Qanaat topology; measure it through repro.bench "
                "(run_scenario/run_point), which builds its own deployment"
            )
        raise ConfigurationError(
            f"unknown system label {self.system!r}; valid: "
            + ", ".join(sorted(known_systems()))
        )

    def deployment_config(self) -> "DeploymentConfig":
        """The :class:`~repro.core.config.DeploymentConfig` this spec
        describes (Qanaat topologies only — baseline families build
        their own deployments from the same fields)."""
        from repro.core.config import DeploymentConfig

        topology = self.topology
        kwargs: dict[str, Any] = dict(
            enterprises=topology.enterprises,
            shards_per_enterprise=topology.shards,
            batch_size=topology.batch_size,
            batch_wait=topology.batch_wait,
            batch_adaptive=topology.batch_adaptive,
            max_inflight=topology.max_inflight,
            seed=self.seed,
            checkpoint_interval=topology.checkpoint_interval,
        )
        kwargs.update(self.system_options())
        for name in (
            "failure_model",
            "cross_protocol",
            "use_firewall",
            "execution_model",
            "filter_model",
            "f",
        ):
            value = getattr(topology, name)
            if value is not None:
                kwargs[name] = value
        if topology.storage_backend != "memory":
            kwargs["storage_backend"] = topology.storage_backend
            kwargs["storage_dir"] = topology.storage_dir
        kwargs.update(dict(topology.extras))
        return DeploymentConfig(**kwargs)

    # ------------------------------------------------------------------
    # spec surgery (specs are frozen; these return modified copies)
    # ------------------------------------------------------------------
    def with_seed(self, seed: int) -> "ScenarioSpec":
        return dataclasses.replace(self, seed=seed)

    def with_kernel_workers(self, workers: int | None) -> "ScenarioSpec":
        return dataclasses.replace(self, kernel_workers=workers)

    def configured(self, **config_overrides: Any) -> "ScenarioSpec":
        """A copy with extra :class:`DeploymentConfig` overrides merged
        into ``topology.extras`` (runtime knobs like ``storage_dir``)."""
        merged = dict(self.topology.extras)
        merged.update(config_overrides)
        topology = dataclasses.replace(
            self.topology, extras=tuple(sorted(merged.items()))
        )
        return dataclasses.replace(self, topology=topology)
