"""Discrete-event simulation substrate.

The paper evaluates a Java prototype on AWS EC2.  This package replaces
that testbed with a deterministic discrete-event simulator: a virtual
clock (:class:`Simulator`), a message-passing network with pluggable
latency models (:class:`Network`), and node actors whose handlers are
charged CPU time through a calibrated :class:`CostModel`.  Protocol code
runs unmodified on top of it, so correctness tests and performance
benchmarks exercise the same state machines.
"""

from repro.sim.costs import CalibratedCost, CostModel, ZeroCost
from repro.sim.kernel import Event, Simulator
from repro.sim.latency import (
    AWS_REGION_RTT_MS,
    LatencyModel,
    RegionLatency,
    UniformLatency,
)
from repro.sim.network import Network
from repro.sim.node import Actor, SimNode

__all__ = [
    "Simulator",
    "Event",
    "Network",
    "LatencyModel",
    "UniformLatency",
    "RegionLatency",
    "AWS_REGION_RTT_MS",
    "CostModel",
    "ZeroCost",
    "CalibratedCost",
    "Actor",
    "SimNode",
]
