"""CPU cost model for simulated nodes.

In the paper's testbed, throughput saturates when some node's CPU does:
the primary verifying client signatures and building batches, execution
nodes running transactions, Fabric's orderer hashing everything.  The
simulator reproduces that by charging each message handler a processing
time on a serial per-node CPU queue.

Messages advertise two hints:

- ``CPU_WEIGHT`` (class attribute, default 1.0): relative handler cost;
- ``tx_count()`` (method, default 1): how many transactions the message
  carries, for batch messages whose cost scales with the batch.

Calibration targets the paper's absolute numbers loosely (§5: c4.2xlarge,
Flt-C ≈ 110 ktps over 16 clusters); shapes come from the protocols.
"""

from __future__ import annotations

from typing import Any


class CostModel:
    """Interface: seconds of CPU to process ``msg`` at ``node``."""

    def processing_time(self, node: Any, msg: Any) -> float:
        raise NotImplementedError

    def execution_time(self, tx_count: int) -> float:
        """CPU seconds to execute ``tx_count`` transactions locally."""
        return 0.0

    def journal_time(self, record_count: int) -> float:
        """CPU+I/O seconds to journal ``record_count`` committed
        transactions to a durable storage backend (repro.storage).
        The simulation charges this instead of performing real I/O on
        the event loop, keeping the kernel deterministic."""
        return 0.0


class ZeroCost(CostModel):
    """Free CPU — used by correctness tests to keep schedules simple."""

    def processing_time(self, node: Any, msg: Any) -> float:
        return 0.0


class CalibratedCost(CostModel):
    """Per-message base cost plus per-transaction marginal cost.

    ``base_us`` covers deserialization and one signature verification;
    ``per_tx_us`` covers per-transaction hashing/MAC work in batch
    messages; ``execute_us`` is charged per executed transaction.
    ``byzantine_factor`` models the heavier cryptographic work of BFT
    message handling (certificate assembly, extra verifications) —
    applied when the receiving node belongs to a Byzantine cluster.

    Defaults are calibrated against §5's c4.2xlarge numbers: a
    crash-only cluster saturates near ~6.5-7 ktps (Flt-C reaches
    ~110 ktps over 16 clusters in Figure 7a).
    """

    def __init__(
        self,
        base_us: float = 100.0,
        per_tx_us: float = 30.0,
        execute_us: float = 25.0,
        byzantine_factor: float = 1.35,
        journal_us: float = 12.0,
    ):
        self.base = base_us / 1e6
        self.per_tx = per_tx_us / 1e6
        self.execute = execute_us / 1e6
        self.byzantine_factor = byzantine_factor
        #: Amortized per-transaction WAL append (group-committed
        #: sequential writes, not per-record fsyncs).
        self.journal = journal_us / 1e6
        # Hot-path memos: the weights are class attributes and a node's
        # failure model / CPU discount never change after construction,
        # so both lookups are resolved once, not per message.
        self._msg_weights: dict[type, tuple[float, float, bool]] = {}
        self._node_factors: dict[str, tuple[float, float]] = {}

    def node_entry(
        self, node: Any, cls: type
    ) -> tuple[float, float, float, float, bool]:
        """Per-(node, message-class) constants for the inlined hot path
        in :meth:`repro.sim.node.SimNode.deliver`:
        ``(base*weight, per_tx, execute*exec_weight, discount,
        has_tx_count)``.  Each product is formed exactly as
        :meth:`processing_time` forms it, so the inlined arithmetic is
        bit-identical to calling this model per message.
        """
        weight = getattr(cls, "CPU_WEIGHT", 1.0)
        exec_weight = getattr(cls, "EXEC_WEIGHT", 0.0)
        base = self.base
        config = getattr(node, "config", None)
        if config is not None and config.failure_model == "byzantine":
            base *= self.byzantine_factor
        return (
            base * weight,
            self.per_tx,
            self.execute * exec_weight,
            getattr(node, "CPU_DISCOUNT", 1.0),
            hasattr(cls, "tx_count"),
        )

    def processing_time(self, node: Any, msg: Any) -> float:
        cls = msg.__class__
        weights = self._msg_weights.get(cls)
        if weights is None:
            weights = (
                getattr(cls, "CPU_WEIGHT", 1.0),
                getattr(cls, "EXEC_WEIGHT", 0.0),
                hasattr(cls, "tx_count"),
            )
            self._msg_weights[cls] = weights
        weight, exec_weight, has_tx_count = weights
        node_id = getattr(node, "node_id", None)
        factors = self._node_factors.get(node_id) if node_id is not None else None
        if factors is None:
            base = self.base
            config = getattr(node, "config", None)
            if config is not None and config.failure_model == "byzantine":
                base *= self.byzantine_factor
            factors = (base, getattr(node, "CPU_DISCOUNT", 1.0))
            if node_id is not None:
                self._node_factors[node_id] = factors
        base, discount = factors
        tx_count = msg.tx_count() if has_tx_count else 1
        time = base * weight + self.per_tx * tx_count
        if exec_weight:
            time += self.execute * exec_weight * tx_count
        return time * discount

    def execution_time(self, tx_count: int) -> float:
        return self.execute * tx_count

    def journal_time(self, record_count: int) -> float:
        return self.journal * record_count
