"""Discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a priority queue of
events.  Everything in the reproduction — message delivery, CPU
completion, protocol timers, client arrivals — is an event.  The kernel
is deterministic: ties are broken by insertion order, and all randomness
is injected through explicitly-seeded generators elsewhere.

Two scheduling surfaces exist:

- :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return an
  :class:`Event` handle for callers that may cancel (protocol timers,
  retransmission guards);
- :meth:`Simulator.schedule_fire` / :meth:`Simulator.schedule_at_fire`
  are the flyweight path for fire-and-forget work — message delivery
  and CPU-queue completions, the two hottest call sites — which skips
  the per-call Event allocation entirely.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it fires."""
        if not self.cancelled:
            sim = self._sim
            if sim is not None and sim.foreign:
                # Shard-parallel runs mark every kernel a worker does
                # NOT own as foreign.  Cancelling into one would mutate
                # a stale copy of another worker's heap and live
                # counter — the owning process would never see it, and
                # the two accountings would silently diverge.  Raising
                # makes cross-boundary cancellation impossible by
                # construction; the event stays live (and cancellable
                # by its owner).
                from repro.errors import PartitionError

                raise PartitionError(
                    f"cannot cancel {self!r}: its kernel belongs to "
                    "another shard-parallel worker (cross-boundary "
                    "cancellation would desynchronize the owner's "
                    "live-event accounting)"
                )
            self.cancelled = True
            # Keep the owning simulator's live-event counter exact:
            # a fired event drops its back-reference, so cancelling it
            # afterwards (or twice) cannot decrement again.
            if sim is not None:
                sim._live -= 1
                self._sim = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} {self.fn!r}>"


class Simulator:
    """Virtual clock plus event queue.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    #: Set by the shard-parallel engine on every kernel a worker does
    #: not own.  A class attribute, so the default (sequential) path
    #: pays nothing per instance; :meth:`Event.cancel` refuses to touch
    #: a foreign kernel.
    foreign = False

    def __init__(self) -> None:
        from repro import obs

        self.now: float = 0.0
        # Observability capture: checked once per run() call, not per
        # event, so the hot loops below stay byte-identical when off.
        self._obs_active = obs.REGISTRY is not None
        self.queue_peak = 0
        # The heap holds (time, seq, payload) tuples rather than bare
        # Events: heap sift compares are then C-level float/int tuple
        # comparisons instead of Python ``Event.__lt__`` calls — the
        # single hottest call site of a bench run before this change
        # (~2.1M comparator calls in one smoke matrix).  ``payload`` is
        # an :class:`Event` for cancellable schedules or a plain
        # ``(fn, args)`` pair for the flyweight fire-and-forget path.
        self._queue: list[tuple[float, int, Any]] = []
        self._seq = 0
        self._events_processed = 0
        self._live = 0

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        # Inlined schedule_at (one call per simulated message makes the
        # extra frame measurable); delay >= 0 implies time >= now.
        time = self.now + delay
        seq = self._seq
        event = Event(time, seq, fn, args, self)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        event = Event(time, seq, fn, args, self)
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (time, seq, event))
        return event

    def schedule_fire(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Fire-and-forget :meth:`schedule`: no Event handle, so no way
        to cancel — and no per-call Event allocation.  Used by the
        network delivery path, which never cancels."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (self.now + delay, seq, (fn, args)))

    def schedule_at_fire(
        self, time: float, fn: Callable[..., Any], *args: Any
    ) -> None:
        """Fire-and-forget :meth:`schedule_at` (CPU-queue completions)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        seq = self._seq
        self._seq = seq + 1
        self._live += 1
        heapq.heappush(self._queue, (time, seq, (fn, args)))

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        raise_on_limit: bool = False,
    ) -> None:
        """Process events in time order.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` events (a runaway guard for
        tests).  When the queue was drained up to ``until``, the clock
        is advanced to ``until`` so back-to-back ``run`` calls tile the
        timeline.  When the ``max_events`` budget stopped the run with
        events still queued before ``until``, the clock stays at the
        last fired event — jumping it to ``until`` would make the next
        ``run`` fire those leftovers with time moving backwards.

        With ``raise_on_limit`` the ``max_events`` budget is treated as
        a diagnostic tripwire: exhausting it raises
        :class:`~repro.errors.SimulationLimitError` naming the current
        virtual time and the queue head, instead of returning silently
        — a protocol bug that schedules a timer loop surfaces as a
        clear error rather than an apparent hang.
        """
        if self._obs_active:
            # Same semantics as the loops below, plus queue-peak
            # tracking; kept separate so the untraced path pays nothing.
            self._run_instrumented(until, max_events, raise_on_limit)
            return
        queue = self._queue
        pop = heapq.heappop
        event_cls = Event
        if until is None and max_events is None:
            # Cheap path for the common unbounded drain: no per-event
            # limit checks, attribute lookups hoisted to locals.
            while queue:
                time, _, payload = pop(queue)
                if payload.__class__ is event_cls:
                    if payload.cancelled:
                        continue
                    payload._sim = None
                    fn = payload.fn
                    args = payload.args
                else:
                    fn, args = payload
                self._live -= 1
                self.now = time
                fn(*args)
                self._events_processed += 1
            return
        processed = 0
        budget_exhausted = False
        while queue:
            time, _, payload = queue[0]
            if until is not None and time > until:
                break
            if payload.__class__ is event_cls:
                if payload.cancelled:
                    pop(queue)
                    continue
            if max_events is not None and processed >= max_events:
                budget_exhausted = True
                if raise_on_limit:
                    from repro.errors import SimulationLimitError

                    raise SimulationLimitError(
                        f"simulation exceeded {max_events} events without "
                        f"finishing: now={self.now:.6f}, "
                        f"pending={self.pending()}, queue head={payload!r}"
                    )
                break
            pop(queue)
            if payload.__class__ is event_cls:
                payload._sim = None
                fn = payload.fn
                args = payload.args
            else:
                fn, args = payload
            self._live -= 1
            self.now = time
            fn(*args)
            processed += 1
            self._events_processed += 1
        if until is not None and self.now < until and not budget_exhausted:
            self.now = until

    def _run_instrumented(
        self,
        until: float | None,
        max_events: int | None,
        raise_on_limit: bool,
    ) -> None:
        """The :meth:`run` loop with queue-peak tracking.

        Event selection, clock updates, and accounting mirror the
        untraced loops exactly — observability must replay the same
        event sequence — the only addition is reading ``len(queue)``.
        """
        queue = self._queue
        pop = heapq.heappop
        event_cls = Event
        processed = 0
        budget_exhausted = False
        peak = self.queue_peak
        while queue:
            depth = len(queue)
            if depth > peak:
                peak = depth
            time, _, payload = queue[0]
            if until is not None and time > until:
                break
            if payload.__class__ is event_cls:
                if payload.cancelled:
                    pop(queue)
                    continue
            if max_events is not None and processed >= max_events:
                budget_exhausted = True
                if raise_on_limit:
                    self.queue_peak = peak
                    from repro.errors import SimulationLimitError

                    raise SimulationLimitError(
                        f"simulation exceeded {max_events} events without "
                        f"finishing: now={self.now:.6f}, "
                        f"pending={self.pending()}, queue head={payload!r}"
                    )
                break
            pop(queue)
            if payload.__class__ is event_cls:
                payload._sim = None
                fn = payload.fn
                args = payload.args
            else:
                fn, args = payload
            self._live -= 1
            self.now = time
            fn(*args)
            processed += 1
            self._events_processed += 1
        self.queue_peak = peak
        if until is not None and self.now < until and not budget_exhausted:
            self.now = until

    def run_horizon(self, until: float, inclusive: bool = False) -> int:
        """Fire events strictly before ``until`` — the shard-parallel
        window primitive — then advance the clock to ``until``.

        Conservative-lookahead execution advances each partition's
        kernel one safe window at a time: events *at* the horizon may
        still gain earlier-timestamped peers from another partition's
        boundary envelopes, so they must wait for the next window.
        With ``inclusive`` (the final window only) events landing
        exactly on the horizon fire too, matching what a sequential
        ``run(until)`` would have fired by end of run.

        Unlike :meth:`run`, the clock always lands on ``until`` —
        windows must tile exactly or two kernels would disagree about
        which window an envelope belongs to.  Event budgets are
        enforced *between* windows by the engine (window granularity),
        not here.  Returns the number of events fired.
        """
        if until < self.now:
            raise ValueError(
                f"horizon in the past: {until} < {self.now}"
            )
        queue = self._queue
        pop = heapq.heappop
        event_cls = Event
        fired = 0
        obs_active = self._obs_active
        peak = self.queue_peak
        while queue:
            time = queue[0][0]
            if time > until or (time == until and not inclusive):
                break
            if obs_active:
                depth = len(queue)
                if depth > peak:
                    peak = depth
            _, _, payload = pop(queue)
            if payload.__class__ is event_cls:
                if payload.cancelled:
                    continue
                payload._sim = None
                fn = payload.fn
                args = payload.args
            else:
                fn, args = payload
            self._live -= 1
            self.now = time
            fn(*args)
            fired += 1
            self._events_processed += 1
        if obs_active:
            self.queue_peak = peak
        if self.now < until:
            self.now = until
        return fired

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live
