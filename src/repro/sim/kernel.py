"""Discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and a priority queue of
events.  Everything in the reproduction — message delivery, CPU
completion, protocol timers, client arrivals — is an event.  The kernel
is deterministic: ties are broken by insertion order, and all randomness
is injected through explicitly-seeded generators elsewhere.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class Event:
    """A scheduled callback.  Cancel with :meth:`cancel`."""

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        fn: Callable[..., Any],
        args: tuple,
        sim: "Simulator | None" = None,
    ):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when it fires."""
        if not self.cancelled:
            self.cancelled = True
            # Keep the owning simulator's live-event counter exact:
            # a fired event drops its back-reference, so cancelling it
            # afterwards (or twice) cannot decrement again.
            if self._sim is not None:
                self._sim._live -= 1
                self._sim = None

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time:.6f} seq={self.seq}{state} {self.fn!r}>"


class Simulator:
    """Virtual clock plus event queue.

    >>> sim = Simulator()
    >>> out = []
    >>> _ = sim.schedule(1.0, out.append, "a")
    >>> _ = sim.schedule(0.5, out.append, "b")
    >>> sim.run()
    >>> out
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: float = 0.0
        self._queue: list[Event] = []
        self._seq = 0
        self._events_processed = 0
        self._live = 0

    @property
    def events_processed(self) -> int:
        """Number of events fired so far (cancelled events excluded)."""
        return self._events_processed

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self.now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at an absolute virtual time."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < {self.now}")
        event = Event(time, self._seq, fn, args, self)
        self._seq += 1
        self._live += 1
        heapq.heappush(self._queue, event)
        return event

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        raise_on_limit: bool = False,
    ) -> None:
        """Process events in time order.

        Stops when the queue is empty, when virtual time would pass
        ``until``, or after ``max_events`` events (a runaway guard for
        tests).  When the queue was drained up to ``until``, the clock
        is advanced to ``until`` so back-to-back ``run`` calls tile the
        timeline.  When the ``max_events`` budget stopped the run with
        events still queued before ``until``, the clock stays at the
        last fired event — jumping it to ``until`` would make the next
        ``run`` fire those leftovers with time moving backwards.

        With ``raise_on_limit`` the ``max_events`` budget is treated as
        a diagnostic tripwire: exhausting it raises
        :class:`~repro.errors.SimulationLimitError` naming the current
        virtual time and the queue head, instead of returning silently
        — a protocol bug that schedules a timer loop surfaces as a
        clear error rather than an apparent hang.
        """
        processed = 0
        budget_exhausted = False
        while self._queue:
            event = self._queue[0]
            if until is not None and event.time > until:
                break
            if event.cancelled:
                heapq.heappop(self._queue)
                continue
            if max_events is not None and processed >= max_events:
                budget_exhausted = True
                if raise_on_limit:
                    from repro.errors import SimulationLimitError

                    raise SimulationLimitError(
                        f"simulation exceeded {max_events} events without "
                        f"finishing: now={self.now:.6f}, "
                        f"pending={self.pending()}, queue head={event!r}"
                    )
                break
            heapq.heappop(self._queue)
            self._live -= 1
            event._sim = None
            self.now = event.time
            event.fn(*event.args)
            processed += 1
            self._events_processed += 1
        if until is not None and self.now < until and not budget_exhausted:
            self.now = until

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued (O(1))."""
        return self._live
