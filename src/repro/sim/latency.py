"""Network latency models.

Two models cover the paper's two deployments: a single data center
(< 1 ms ping, §5) and four AWS regions (§5.4) with the round-trip times
the paper reports.  Latencies are one-way, in seconds.
"""

from __future__ import annotations

import random
from typing import Callable

#: Round-trip times between the paper's regions (§5.4), in milliseconds.
#: TY=Tokyo, SU=Seoul, VA=Virginia, CA=California.
AWS_REGION_RTT_MS: dict[frozenset[str], float] = {
    frozenset(("TY", "SU")): 33.0,
    frozenset(("TY", "VA")): 148.0,
    frozenset(("TY", "CA")): 107.0,
    frozenset(("SU", "VA")): 175.0,
    frozenset(("SU", "CA")): 135.0,
    frozenset(("VA", "CA")): 62.0,
}


class LatencyModel:
    """Interface: one-way delay from ``src`` to ``dst`` node ids."""

    def delay(self, src: str, dst: str, rng: random.Random) -> float:
        raise NotImplementedError

    def sampler(self, src: str, dst: str) -> Callable[[random.Random], float]:
        """A pre-resolved per-pair sampler: ``sampler(rng)`` must draw
        exactly like ``delay(src, dst, rng)`` (same distribution *and*
        the same sequence of rng calls, so cached samplers keep runs
        bit-identical).  The network caches one sampler per (src, dst)
        pair; models whose per-pair resolution is expensive (region
        lookups) override this to hoist it out of the per-send path.
        """
        return lambda rng: self.delay(src, dst, rng)

    def min_delay(self, src: str, dst: str) -> float:
        """A hard lower bound on :meth:`delay` for this pair, in
        seconds — the conservative lookahead the shard-parallel kernel
        synchronizes on (no message from ``src`` can reach ``dst``
        sooner).  Models without a provable bound must override this
        or stay sequential."""
        raise NotImplementedError(
            f"{type(self).__name__} declares no minimum delay; "
            "shard-parallel execution needs min_delay() for its "
            "conservative lookahead — run with kernel_workers=None"
        )


class UniformLatency(LatencyModel):
    """Single-datacenter latency: a base delay plus uniform jitter.

    Defaults model the paper's < 1 ms intra-datacenter ping.
    """

    def __init__(self, base_ms: float = 0.25, jitter_ms: float = 0.1):
        if base_ms < 0 or jitter_ms < 0:
            raise ValueError("latency parameters must be non-negative")
        self.base = base_ms / 1000.0
        self.jitter = jitter_ms / 1000.0

    def delay(self, src: str, dst: str, rng: random.Random) -> float:
        return self.base + rng.uniform(0.0, self.jitter)

    def sampler(self, src: str, dst: str) -> Callable[[random.Random], float]:
        # ``jitter * rng.random()`` is bit-identical to
        # ``rng.uniform(0.0, jitter)`` (one draw, ``0.0 + (j-0)*r``)
        # without the Python-level ``uniform`` frame.
        base, jitter = self.base, self.jitter
        return lambda rng: base + jitter * rng.random()

    def min_delay(self, src: str, dst: str) -> float:
        # Jitter is additive and non-negative: the base is the floor.
        return self.base


class RegionLatency(LatencyModel):
    """Wide-area latency driven by a region RTT matrix.

    ``region_of`` maps node-id prefixes (or full ids) to region names.
    Intra-region traffic uses the ``local`` model; inter-region traffic
    adds half the RTT (one-way) plus jitter proportional to it.
    """

    def __init__(
        self,
        region_of: dict[str, str],
        rtt_ms: dict[frozenset[str], float] | None = None,
        local: LatencyModel | None = None,
        jitter_fraction: float = 0.05,
    ):
        self.region_of = dict(region_of)
        self.rtt_ms = dict(rtt_ms if rtt_ms is not None else AWS_REGION_RTT_MS)
        self.local = local if local is not None else UniformLatency()
        self.jitter_fraction = jitter_fraction

    def _region(self, node_id: str) -> str:
        if node_id in self.region_of:
            return self.region_of[node_id]
        # Longest-prefix match lets callers register "A1" once for all
        # of cluster A1's nodes ("A1.o0", "A1.e2", ...).
        best = ""
        best_region = ""
        for prefix, region in self.region_of.items():
            if node_id.startswith(prefix) and len(prefix) > len(best):
                best, best_region = prefix, region
        if not best:
            raise KeyError(f"no region registered for node {node_id!r}")
        return best_region

    def delay(self, src: str, dst: str, rng: random.Random) -> float:
        src_region = self._region(src)
        dst_region = self._region(dst)
        if src_region == dst_region:
            return self.local.delay(src, dst, rng)
        key = frozenset((src_region, dst_region))
        if key not in self.rtt_ms:
            raise KeyError(f"no RTT between regions {src_region} and {dst_region}")
        one_way = self.rtt_ms[key] / 2.0 / 1000.0
        return one_way * (1.0 + rng.uniform(0.0, self.jitter_fraction))

    def sampler(self, src: str, dst: str) -> Callable[[random.Random], float]:
        # Hoist the (longest-prefix) region resolution and RTT lookup
        # out of the per-send path; the jitter draw stays identical.
        src_region = self._region(src)
        dst_region = self._region(dst)
        if src_region == dst_region:
            return self.local.sampler(src, dst)
        key = frozenset((src_region, dst_region))
        if key not in self.rtt_ms:
            raise KeyError(f"no RTT between regions {src_region} and {dst_region}")
        one_way = self.rtt_ms[key] / 2.0 / 1000.0
        fraction = self.jitter_fraction
        return lambda rng: one_way * (1.0 + fraction * rng.random())

    def min_delay(self, src: str, dst: str) -> float:
        # Jitter is multiplicative (>= 1.0x): half the RTT is the
        # inter-region floor; intra-region defers to the local model.
        src_region = self._region(src)
        dst_region = self._region(dst)
        if src_region == dst_region:
            return self.local.min_delay(src, dst)
        key = frozenset((src_region, dst_region))
        if key not in self.rtt_ms:
            raise KeyError(
                f"no RTT between regions {src_region} and {dst_region}"
            )
        return self.rtt_ms[key] / 2.0 / 1000.0
