"""Message-passing network over the simulation kernel.

Supports the paper's assumptions: an unreliable network that may drop or
delay messages (partial synchrony), pairwise channels, and — for the
privacy firewall (§3.4) — *physically restricted* links: a node with a
link restriction can only exchange messages with its allowed peers, the
way filter rows are wired only to the rows above and below.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import ConfigurationError
from repro.sim.latency import LatencyModel, UniformLatency

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.sim.node import Actor


class Network:
    """Delivers messages between registered actors with modeled latency."""

    def __init__(
        self,
        sim: "Simulator",
        latency: LatencyModel | None = None,
        seed: int = 0,
        drop_probability: float = 0.0,
    ):
        self.sim = sim
        self._latency = latency if latency is not None else UniformLatency()
        self.rng = random.Random(seed)
        self.drop_probability = drop_probability
        self._nodes: dict[str, "Actor"] = {}
        self._deliver: dict[str, Any] = {}
        self._blocked: set[frozenset[str]] = set()
        self._allowed_links: dict[str, frozenset[str]] = {}
        # Fast-path flag: True while no partitions and no link
        # restrictions exist (the common case), letting ``send`` skip
        # the per-message ``_routable`` checks entirely.  ``block`` /
        # ``restrict_links`` dirty it; ``unblock`` / ``heal`` restore
        # it once both tables are empty again.
        self._unrestricted = True
        # One resolved latency sampler per (src, dst) pair; invalidated
        # whenever the latency model is swapped (wan-jitter overlays).
        self._samplers: dict[tuple[str, str], Any] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        # Observability capture at construction: None when off, so the
        # send hot path pays one ``is not None`` check and nothing else.
        from repro import obs

        self._obs_registry = obs.REGISTRY

    @property
    def latency(self) -> LatencyModel:
        return self._latency

    @latency.setter
    def latency(self, model: LatencyModel) -> None:
        self._latency = model
        self._samplers.clear()

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def register(self, node: "Actor") -> None:
        if node.node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        # Bind the delivery callback once: creating a bound method per
        # send is measurable at ~80k sends per smoke run.
        self._deliver[node.node_id] = node.deliver

    def node(self, node_id: str) -> "Actor":
        return self._nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node_ids(self) -> list[str]:
        return list(self._nodes)

    def restrict_links(self, node_id: str, allowed_peers: Iterable[str]) -> None:
        """Physically wire ``node_id`` to ``allowed_peers`` only.

        Models the firewall requirement that each filter has a physical
        connection only to the rows above and below (§3.4).  Traffic to
        or from any other node is silently impossible — not dropped
        probabilistically, simply unroutable.
        """
        self._allowed_links[node_id] = frozenset(allowed_peers)
        self._unrestricted = False

    def allowed_peers(self, node_id: str) -> frozenset[str] | None:
        """The restriction set for a node, or None if unrestricted."""
        return self._allowed_links.get(node_id)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def block(self, a: str, b: str) -> None:
        """Partition the pair: messages between a and b are dropped."""
        self._blocked.add(frozenset((a, b)))
        self._unrestricted = False

    def unblock(self, a: str, b: str) -> None:
        self._blocked.discard(frozenset((a, b)))
        self._unrestricted = not self._blocked and not self._allowed_links

    def heal(self) -> None:
        """Remove all pairwise partitions."""
        self._blocked.clear()
        self._unrestricted = not self._allowed_links

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the named nodes into isolated groups.

        Traffic *between* groups is blocked; traffic within a group,
        and to/from nodes not named in any group, is unaffected.
        Compose with :meth:`heal` for partition-and-recover scenarios.
        """
        named = [set(group) for group in groups]
        for index, group_a in enumerate(named):
            for group_b in named[index + 1:]:
                for a in group_a:
                    for b in group_b:
                        self.block(a, b)

    def isolate(self, node_id: str, others: Iterable[str]) -> None:
        """Cut one node off from each of ``others``."""
        for other in others:
            self.block(node_id, other)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _routable(self, src: str, dst: str) -> bool:
        if frozenset((src, dst)) in self._blocked:
            return False
        src_allowed = self._allowed_links.get(src)
        if src_allowed is not None and dst not in src_allowed:
            return False
        dst_allowed = self._allowed_links.get(dst)
        if dst_allowed is not None and src not in dst_allowed:
            return False
        return True

    def send(self, src: str, dst: str, msg: Any) -> bool:
        """Send ``msg`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still
        be dropped by the unreliable-network model), False if no
        physical route exists.  Local delivery (src == dst) bypasses
        the wire but still goes through the destination's CPU queue.

        This is the hottest call in the simulation (one per message
        per destination), so the common case is kept lean: with no
        partitions or link restrictions the ``_routable`` checks are
        skipped outright, and the per-pair latency sampler is resolved
        once and cached.  The rng draw sequence is identical to the
        slow path, keeping runs bit-identical.
        """
        deliver = self._deliver.get(dst)
        if deliver is None:
            raise ConfigurationError(f"unknown destination {dst!r}")
        if not self._unrestricted and not self._routable(src, dst):
            return False
        self.messages_sent += 1
        registry = self._obs_registry
        if registry is not None:
            registry.counter(
                "messages_sent", kind=msg.__class__.__name__
            ).inc()
        if src != dst:
            rng = self.rng
            if self.drop_probability > 0.0 and rng.random() < self.drop_probability:
                self.messages_dropped += 1
                if registry is not None:
                    registry.counter(
                        "messages_dropped", kind=msg.__class__.__name__
                    ).inc()
                return True
            samplers = self._samplers
            sampler = samplers.get((src, dst))
            if sampler is None:
                sampler = samplers[(src, dst)] = self._latency.sampler(src, dst)
            delay = sampler(rng)
        else:
            delay = 0.0
        self.sim.schedule_fire(delay, deliver, msg, src)
        return True

    def multicast(self, src: str, dsts: Iterable[str], msg: Any) -> int:
        """Send ``msg`` to every destination; returns the routable count."""
        send = self.send
        routed = 0
        for dst in dsts:
            if send(src, dst, msg):
                routed += 1
        return routed
