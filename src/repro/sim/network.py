"""Message-passing network over the simulation kernel.

Supports the paper's assumptions: an unreliable network that may drop or
delay messages (partial synchrony), pairwise channels, and — for the
privacy firewall (§3.4) — *physically restricted* links: a node with a
link restriction can only exchange messages with its allowed peers, the
way filter rows are wired only to the rows above and below.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Any, Iterable

from repro.errors import ConfigurationError, PartitionError
from repro.sim.latency import LatencyModel, UniformLatency

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.sim.node import Actor


class _PartitionNetState:
    """Per-partition view of the network's mutable tables.

    In shard-parallel mode, partitions of one window execute at
    different wall-clock moments (and in different processes at
    different worker counts), so anything a fault event mutates
    mid-run — pairwise blocks, the latency model and its sampler
    cache — must be per-partition: each kernel fires the fault event
    itself, against its own view, at the same *virtual* time.
    """

    __slots__ = ("latency", "samplers", "blocked", "unrestricted")

    def __init__(self, latency: LatencyModel, blocked: set, unrestricted: bool):
        self.latency = latency
        self.samplers: dict[tuple[str, str], Any] = {}
        self.blocked = set(blocked)
        self.unrestricted = unrestricted


class Network:
    """Delivers messages between registered actors with modeled latency."""

    #: Per-partition state table; None in (default) sequential mode,
    #: one :class:`_PartitionNetState` per partition after
    #: :meth:`enable_partitioning`.
    _pstates = None

    def __init__(
        self,
        sim: "Simulator",
        latency: LatencyModel | None = None,
        seed: int = 0,
        drop_probability: float = 0.0,
    ):
        self.sim = sim
        self._latency = latency if latency is not None else UniformLatency()
        self._seed = seed
        self.rng = random.Random(seed)
        self.drop_probability = drop_probability
        self._nodes: dict[str, "Actor"] = {}
        self._deliver: dict[str, Any] = {}
        self._blocked: set[frozenset[str]] = set()
        self._allowed_links: dict[str, frozenset[str]] = {}
        # Fast-path flag: True while no partitions and no link
        # restrictions exist (the common case), letting ``send`` skip
        # the per-message ``_routable`` checks entirely.  ``block`` /
        # ``restrict_links`` dirty it; ``unblock`` / ``heal`` restore
        # it once both tables are empty again.
        self._unrestricted = True
        # One resolved latency sampler per (src, dst) pair; invalidated
        # whenever the latency model is swapped (wan-jitter overlays).
        self._samplers: dict[tuple[str, str], Any] = {}
        self.messages_sent = 0
        self.messages_dropped = 0
        # Observability capture at construction: None when off, so the
        # send hot path pays one ``is not None`` check and nothing else.
        from repro import obs

        self._obs_registry = obs.REGISTRY

    @property
    def latency(self) -> LatencyModel:
        if self._pstates is not None:
            return self._pstates[self._current_pid()].latency
        return self._latency

    @latency.setter
    def latency(self, model: LatencyModel) -> None:
        if self._pstates is not None:
            state = self._pstates[self._current_pid()]
            state.latency = model
            state.samplers.clear()
            return
        self._latency = model
        self._samplers.clear()

    def _current_pid(self) -> int:
        pid = self._facade.current_pid
        if pid is None:
            raise PartitionError(
                "network state touched outside any partition context; "
                "in shard-parallel mode latency/fault tables are "
                "per-partition and only reachable while a kernel runs"
            )
        return pid

    # ------------------------------------------------------------------
    # topology
    # ------------------------------------------------------------------
    def register(self, node: "Actor") -> None:
        if node.node_id in self._nodes:
            raise ConfigurationError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        # Bind the delivery callback once: creating a bound method per
        # send is measurable at ~80k sends per smoke run.
        self._deliver[node.node_id] = node.deliver
        if self._pstates is not None:
            self._partition_of[node.node_id] = self._pmap.pid_of_node(
                node.node_id
            )

    def node(self, node_id: str) -> "Actor":
        return self._nodes[node_id]

    def has_node(self, node_id: str) -> bool:
        return node_id in self._nodes

    def node_ids(self) -> list[str]:
        return list(self._nodes)

    def restrict_links(self, node_id: str, allowed_peers: Iterable[str]) -> None:
        """Physically wire ``node_id`` to ``allowed_peers`` only.

        Models the firewall requirement that each filter has a physical
        connection only to the rows above and below (§3.4).  Traffic to
        or from any other node is silently impossible — not dropped
        probabilistically, simply unroutable.
        """
        self._allowed_links[node_id] = frozenset(allowed_peers)
        self._unrestricted = False

    def allowed_peers(self, node_id: str) -> frozenset[str] | None:
        """The restriction set for a node, or None if unrestricted."""
        return self._allowed_links.get(node_id)

    # ------------------------------------------------------------------
    # fault injection
    # ------------------------------------------------------------------
    def block(self, a: str, b: str) -> None:
        """Partition the pair: messages between a and b are dropped."""
        if self._pstates is not None:
            state = self._pstates[self._current_pid()]
            state.blocked.add(frozenset((a, b)))
            state.unrestricted = False
            return
        self._blocked.add(frozenset((a, b)))
        self._unrestricted = False

    def unblock(self, a: str, b: str) -> None:
        if self._pstates is not None:
            state = self._pstates[self._current_pid()]
            state.blocked.discard(frozenset((a, b)))
            state.unrestricted = (
                not state.blocked and not self._allowed_links
            )
            return
        self._blocked.discard(frozenset((a, b)))
        self._unrestricted = not self._blocked and not self._allowed_links

    def heal(self) -> None:
        """Remove all pairwise partitions."""
        if self._pstates is not None:
            state = self._pstates[self._current_pid()]
            state.blocked.clear()
            state.unrestricted = not self._allowed_links
            return
        self._blocked.clear()
        self._unrestricted = not self._allowed_links

    def partition(self, *groups: Iterable[str]) -> None:
        """Split the named nodes into isolated groups.

        Traffic *between* groups is blocked; traffic within a group,
        and to/from nodes not named in any group, is unaffected.
        Compose with :meth:`heal` for partition-and-recover scenarios.
        """
        named = [set(group) for group in groups]
        for index, group_a in enumerate(named):
            for group_b in named[index + 1:]:
                for a in group_a:
                    for b in group_b:
                        self.block(a, b)

    def isolate(self, node_id: str, others: Iterable[str]) -> None:
        """Cut one node off from each of ``others``."""
        for other in others:
            self.block(node_id, other)

    # ------------------------------------------------------------------
    # transmission
    # ------------------------------------------------------------------
    def _routable(self, src: str, dst: str) -> bool:
        if frozenset((src, dst)) in self._blocked:
            return False
        src_allowed = self._allowed_links.get(src)
        if src_allowed is not None and dst not in src_allowed:
            return False
        dst_allowed = self._allowed_links.get(dst)
        if dst_allowed is not None and src not in dst_allowed:
            return False
        return True

    def send(self, src: str, dst: str, msg: Any) -> bool:
        """Send ``msg`` from ``src`` to ``dst``.

        Returns True if the message was put on the wire (it may still
        be dropped by the unreliable-network model), False if no
        physical route exists.  Local delivery (src == dst) bypasses
        the wire but still goes through the destination's CPU queue.

        This is the hottest call in the simulation (one per message
        per destination), so the common case is kept lean: with no
        partitions or link restrictions the ``_routable`` checks are
        skipped outright, and the per-pair latency sampler is resolved
        once and cached.  The rng draw sequence is identical to the
        slow path, keeping runs bit-identical.
        """
        deliver = self._deliver.get(dst)
        if deliver is None:
            raise ConfigurationError(f"unknown destination {dst!r}")
        if not self._unrestricted and not self._routable(src, dst):
            return False
        self.messages_sent += 1
        registry = self._obs_registry
        if registry is not None:
            registry.counter(
                "messages_sent", kind=msg.__class__.__name__
            ).inc()
        if src != dst:
            rng = self.rng
            if self.drop_probability > 0.0 and rng.random() < self.drop_probability:
                self.messages_dropped += 1
                if registry is not None:
                    registry.counter(
                        "messages_dropped", kind=msg.__class__.__name__
                    ).inc()
                return True
            samplers = self._samplers
            sampler = samplers.get((src, dst))
            if sampler is None:
                sampler = samplers[(src, dst)] = self._latency.sampler(src, dst)
            delay = sampler(rng)
        else:
            delay = 0.0
        self.sim.schedule_fire(delay, deliver, msg, src)
        return True

    def multicast(self, src: str, dsts: Iterable[str], msg: Any) -> int:
        """Send ``msg`` to every destination; returns the routable count.

        With no partitions or link restrictions (the dirty flag that
        already guards :meth:`send`) the whole fan-out runs on one fast
        path: the ``_routable`` walk is skipped per destination, and
        the hot lookups — delivery table, rng, sampler cache, the
        ``schedule_fire`` bound method, obs counters — are resolved
        once per multicast instead of once per destination.  Counter
        totals and the rng draw sequence are identical to the per-send
        loop, so runs stay bit-identical.
        """
        if not self._unrestricted:
            send = self.send
            routed = 0
            for dst in dsts:
                if send(src, dst, msg):
                    routed += 1
            return routed
        deliver_map = self._deliver
        registry = self._obs_registry
        sent_counter = dropped_counter = None
        if registry is not None:
            # The dropped-counter series is resolved lazily below:
            # creating it on a drop-free run would register a zero
            # series the per-send path never materializes.
            sent_counter = registry.counter(
                "messages_sent", kind=msg.__class__.__name__
            )
        rng = self.rng
        drop_p = self.drop_probability
        samplers = self._samplers
        latency = self._latency
        schedule_fire = self.sim.schedule_fire
        sent = 0
        dropped = 0
        routed = 0
        for dst in dsts:
            deliver = deliver_map.get(dst)
            if deliver is None:
                raise ConfigurationError(f"unknown destination {dst!r}")
            sent += 1
            if sent_counter is not None:
                sent_counter.inc()
            if src != dst:
                if drop_p > 0.0 and rng.random() < drop_p:
                    dropped += 1
                    if registry is not None:
                        if dropped_counter is None:
                            dropped_counter = registry.counter(
                                "messages_dropped",
                                kind=msg.__class__.__name__,
                            )
                        dropped_counter.inc()
                    routed += 1
                    continue
                sampler = samplers.get((src, dst))
                if sampler is None:
                    sampler = samplers[(src, dst)] = latency.sampler(src, dst)
                delay = sampler(rng)
            else:
                delay = 0.0
            schedule_fire(delay, deliver, msg, src)
            routed += 1
        self.messages_sent += sent
        self.messages_dropped += dropped
        return routed

    # ------------------------------------------------------------------
    # shard-parallel mode
    # ------------------------------------------------------------------
    def enable_partitioning(self, pmap: Any, facade: Any) -> None:
        """Switch transmission to shard-parallel mode.

        From here on, ``send``/``multicast`` (swapped as instance
        attributes, so the sequential class methods — and their byte
        behavior — are untouched) schedule same-partition traffic on
        the currently-executing kernel and turn every cross-partition
        message into a timestamped :class:`~repro.sim.partition.Envelope`
        queued in :attr:`_outbox` for the engine's barrier exchange.

        Determinism replaces the single shared rng with one stream per
        ``(src, dst)`` pair, seeded from the network seed and the pair
        ids via string seeding (SHA-512 based, independent of
        ``PYTHONHASHSEED``): a pair's draw sequence then depends only
        on the sender partition's own event order, which the safe-
        window protocol makes identical at every worker count.
        """
        from repro.sim.partition import Envelope

        if self._pstates is not None:
            raise ConfigurationError("partitioning already enabled")
        self._Envelope = Envelope
        self._pmap = pmap
        self._facade = facade
        self._partition_of = {
            node_id: pmap.pid_of_node(node_id) for node_id in self._nodes
        }
        self._pair_rngs: dict[tuple[str, str], random.Random] = {}
        self._outbox: list[Any] = []
        self._env_seqs = [0] * len(pmap)
        self._pstates = [
            _PartitionNetState(self._latency, self._blocked, self._unrestricted)
            for _ in range(len(pmap))
        ]
        self.send = self._send_partitioned
        self.multicast = self._multicast_partitioned

    def take_outbox(self) -> list:
        """Drain the cross-partition envelopes queued since last call."""
        outbox = self._outbox
        self._outbox = []
        return outbox

    def _routable_p(self, state: "_PartitionNetState", src: str, dst: str) -> bool:
        if frozenset((src, dst)) in state.blocked:
            return False
        src_allowed = self._allowed_links.get(src)
        if src_allowed is not None and dst not in src_allowed:
            return False
        dst_allowed = self._allowed_links.get(dst)
        if dst_allowed is not None and src not in dst_allowed:
            return False
        return True

    def _pair_rng(self, src: str, dst: str) -> random.Random:
        rng = random.Random(f"pair|{self._seed}|{src}|{dst}")
        self._pair_rngs[(src, dst)] = rng
        return rng

    def _send_partitioned(self, src: str, dst: str, msg: Any) -> bool:
        """The shard-parallel ``send``: same wire semantics, but drop
        and latency draws come from the per-pair rng stream, and
        cross-partition messages become envelopes instead of events."""
        deliver = self._deliver.get(dst)
        if deliver is None:
            raise ConfigurationError(f"unknown destination {dst!r}")
        facade = self._facade
        state = self._pstates[facade.current_pid]
        if not state.unrestricted and not self._routable_p(state, src, dst):
            return False
        self.messages_sent += 1
        registry = self._obs_registry
        if registry is not None:
            registry.counter(
                "messages_sent", kind=msg.__class__.__name__
            ).inc()
        if src == dst:
            facade.current.schedule_fire(0.0, deliver, msg, src)
            return True
        pair = (src, dst)
        rng = self._pair_rngs.get(pair)
        if rng is None:
            rng = self._pair_rng(src, dst)
        if self.drop_probability > 0.0 and rng.random() < self.drop_probability:
            self.messages_dropped += 1
            if registry is not None:
                registry.counter(
                    "messages_dropped", kind=msg.__class__.__name__
                ).inc()
            return True
        sampler = state.samplers.get(pair)
        if sampler is None:
            sampler = state.samplers[pair] = state.latency.sampler(src, dst)
        delay = sampler(rng)
        partition_of = self._partition_of
        src_pid = partition_of[src]
        if src_pid == partition_of[dst]:
            facade.current.schedule_fire(delay, deliver, msg, src)
        else:
            seq = self._env_seqs[src_pid]
            self._env_seqs[src_pid] = seq + 1
            self._outbox.append(
                self._Envelope(
                    facade.current.now + delay, src_pid, seq, src, dst, msg
                )
            )
        return True

    def _multicast_partitioned(self, src: str, dsts: Iterable[str], msg: Any) -> int:
        send = self._send_partitioned
        routed = 0
        for dst in dsts:
            if send(src, dst, msg):
                routed += 1
        return routed
