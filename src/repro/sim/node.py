"""Node actors: message handling, CPU queueing, crash injection."""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from repro.sim.costs import CalibratedCost, CostModel, ZeroCost

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Event, Simulator
    from repro.sim.network import Network


class Actor:
    """Anything addressable on the network (nodes, clients)."""

    def __init__(self, node_id: str, sim: "Simulator", network: "Network"):
        self.node_id = node_id
        self.sim = sim
        self.network = network
        network.register(self)

    def deliver(self, msg: Any, src: str) -> None:
        """Called by the network at arrival time."""
        self.on_message(msg, src)

    def on_message(self, msg: Any, src: str) -> None:  # pragma: no cover
        raise NotImplementedError

    def send(self, dst: str, msg: Any) -> bool:
        return self.network.send(self.node_id, dst, msg)

    def multicast(self, dsts: Any, msg: Any) -> int:
        return self.network.multicast(self.node_id, dsts, msg)

    def set_timer(self, delay: float, fn: Any, *args: Any) -> "Event":
        return self.sim.schedule(delay, fn, *args)


class SimNode(Actor):
    """An actor with a serial CPU and a crash switch.

    Arriving messages queue behind the CPU: handling starts at
    ``max(now, busy_until)`` and takes ``cost_model.processing_time``.
    Crashed nodes drop everything; a recovered node resumes handling
    new messages (protocol state is whatever it was at crash time,
    which is what a process restart with durable state looks like).
    """

    def __init__(
        self,
        node_id: str,
        sim: "Simulator",
        network: "Network",
        cost_model: CostModel | None = None,
    ):
        super().__init__(node_id, sim, network)
        self.cost_model = cost_model if cost_model is not None else ZeroCost()
        self.crashed = False
        self._busy_until = 0.0
        self.messages_handled = 0
        self.busy_time = 0.0
        # deliver() inlines the calibrated cost arithmetic (exactly one
        # message per delivery makes the call overhead measurable);
        # subclasses of CalibratedCost and custom models keep the
        # virtual processing_time call.
        self._inline_cost = type(self.cost_model) is CalibratedCost
        self._cost_entries: dict[type, tuple] = {}
        # Observability capture (None when off): one attribute check in
        # deliver(), no global lookup on the hot path.
        from repro import obs

        self._obs_queue_wait = (
            obs.REGISTRY.histogram("cpu_queue_wait_s", node=node_id)
            if obs.REGISTRY is not None
            else None
        )

    def crash(self) -> None:
        """Fail-stop: drop all traffic until :meth:`recover`."""
        self.crashed = True

    def recover(self) -> None:
        self.crashed = False

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds this CPU spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)

    def deliver(self, msg: Any, src: str) -> None:
        if self.crashed:
            return
        if self._inline_cost:
            cls = msg.__class__
            entry = self._cost_entries.get(cls)
            if entry is None:
                entry = self._cost_entries[cls] = self.cost_model.node_entry(
                    self, cls
                )
            base_weight, per_tx, exec_prod, discount, has_tx = entry
            tx_count = msg.tx_count() if has_tx else 1
            cost = base_weight + per_tx * tx_count
            if exec_prod:
                cost += exec_prod * tx_count
            cost *= discount
        else:
            cost = self.cost_model.processing_time(self, msg)
        sim = self.sim
        now = sim.now
        busy = self._busy_until
        finish = (busy if busy > now else now) + cost
        if self._obs_queue_wait is not None:
            self._obs_queue_wait.observe(busy - now if busy > now else 0.0)
        self._busy_until = finish
        self.busy_time += cost
        if finish <= now:
            self._handle(msg, src)
        else:
            sim.schedule_at_fire(finish, self._handle, msg, src)

    def charge(self, seconds: float) -> None:
        """Charge CPU time for work done outside a message handler
        (e.g. transaction execution after a local commit)."""
        if seconds <= 0:
            return
        start = max(self.sim.now, self._busy_until)
        self._busy_until = start + seconds
        self.busy_time += seconds

    def queue_delay(self) -> float:
        """Seconds a message arriving now would wait before handling."""
        return max(0.0, self._busy_until - self.sim.now)

    def _handle(self, msg: Any, src: str) -> None:
        if self.crashed:
            return
        self.messages_handled += 1
        self.on_message(msg, src)
