"""Partitioned simulation state: one event kernel per cluster, behind
a single simulator facade.

The paper's structure — intra-shard traffic dominates, cross-shard and
cross-enterprise messages are the only synchronization edges — is
exactly what conservative parallel discrete-event simulation exploits.
This module holds the *state* side of that design:

- :class:`PartitionMap` assigns every node to a partition: one per
  cluster (``A1.o0``, ``A1.e2``, ``A1.f0.1`` all share cluster ``A1``'s
  partition) plus a **root** partition for clients, open-loop arrivals,
  and anything else not named after a cluster.
- :class:`PartitionedSimulator` is the facade every actor holds as its
  ``sim``: each scheduling call is routed to the kernel of the
  partition *currently executing*, so an actor's self-schedules (CPU
  completions, protocol timers) stay on its own heap.
- :class:`Envelope` is a cross-partition message in flight: stamped
  with the sender partition's id and a per-sender sequence number so
  receivers can merge envelopes from many senders in one deterministic
  ``(time, src_pid, seq)`` order — the same trick
  ``bench.parallel`` uses to merge points, applied per window.
- :func:`boundary_lookahead` computes the conservative lookahead: the
  minimum one-way latency across any partition boundary, from the
  latency model's :meth:`~repro.sim.latency.LatencyModel.min_delay`.

The *execution* side — safe windows, worker processes, barriers —
lives in :mod:`repro.sim.shardpar`.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, NamedTuple

from repro.errors import ConfigurationError, PartitionError
from repro.sim.kernel import Event, Simulator

#: Partition id of the root partition (clients, arrivals, metrics).
ROOT_PID = 0


class Envelope(NamedTuple):
    """A timestamped cross-partition message awaiting injection.

    ``(time, src_pid, seq)`` is the merge key: receivers sort all
    envelopes of a window by it before injecting, so the order in
    which workers handed their outboxes over — a wall-clock accident —
    never leaks into the simulation.
    """

    time: float
    src_pid: int
    seq: int
    src: str
    dst: str
    msg: Any


class PartitionMap:
    """Node-id → partition assignment.

    Cluster nodes map by their id prefix (``A1.o0`` → cluster ``A1``);
    everything else — clients, any future coordinator actors — lands
    in the root partition.  The mapping is static: it is fixed at
    build time and identical in every worker process.
    """

    def __init__(self, cluster_names: Iterable[str]):
        names = tuple(cluster_names)
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate cluster names: {names}")
        self.partitions: tuple[str, ...] = ("root", *names)
        self._cluster_pid = {name: i + 1 for i, name in enumerate(names)}

    def __len__(self) -> int:
        return len(self.partitions)

    def pid_of_cluster(self, cluster_name: str) -> int:
        return self._cluster_pid[cluster_name]

    def pid_of_node(self, node_id: str) -> int:
        """The owning partition (cluster prefix, else root)."""
        return self._cluster_pid.get(node_id.split(".", 1)[0], ROOT_PID)


class PartitionedSimulator:
    """A :class:`~repro.sim.kernel.Simulator` facade over per-partition
    kernels.

    Every actor in a shard-parallel deployment shares this one object
    as its ``sim``; scheduling calls land on whichever kernel is
    *current* — set by the engine around each partition's window run,
    and by :meth:`activate` for explicit phases like driving arrivals
    onto the root partition.  Scheduling with no current kernel raises
    :class:`~repro.errors.PartitionError` loudly: a construction-time
    timer would otherwise land on an arbitrary partition and split the
    determinism guarantee.
    """

    def __init__(self, pmap: PartitionMap):
        self.pmap = pmap
        self.kernels = [Simulator() for _ in pmap.partitions]
        self.current: Simulator | None = None
        self.current_pid: int | None = None

    def use(self, pid: int) -> None:
        """Make partition ``pid`` current (engine window loop)."""
        self.current = self.kernels[pid]
        self.current_pid = pid

    def clear(self) -> None:
        self.current = None
        self.current_pid = None

    # -- routing -------------------------------------------------------
    def _current(self) -> Simulator:
        current = self.current
        if current is None:
            raise PartitionError(
                "scheduling outside any partition context; the shard-"
                "parallel engine sets the current kernel around window "
                "execution — wrap explicit schedules in "
                "PartitionedSimulator.activate(pid)"
            )
        return current

    @property
    def now(self) -> float:
        current = self.current
        if current is None:
            # Between windows every kernel sits on the same barrier
            # time, so any kernel's clock is *the* clock.
            return self.kernels[0].now
        return current.now

    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        return self._current().schedule(delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        return self._current().schedule_at(time, fn, *args)

    def schedule_fire(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        self._current().schedule_fire(delay, fn, *args)

    def schedule_at_fire(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        self._current().schedule_at_fire(time, fn, *args)

    def run(self, *args: Any, **kwargs: Any) -> None:
        raise PartitionError(
            "a partitioned simulator cannot run directly; advance it "
            "through repro.sim.shardpar.ShardParEngine"
        )

    # -- aggregation ---------------------------------------------------
    @property
    def events_processed(self) -> int:
        """Events fired across all kernels *this process* executed.

        In a multiprocess run each worker's copy only counts its own
        partitions; the engine sums per-worker counts for the report.
        """
        return sum(k.events_processed for k in self.kernels)

    def pending(self) -> int:
        return sum(k.pending() for k in self.kernels)

    @property
    def queue_peak(self) -> int:
        return max(k.queue_peak for k in self.kernels)

    # -- explicit contexts ---------------------------------------------
    def activate(self, pid: int) -> "_Activation":
        """Context manager making partition ``pid`` current — for
        setup phases (arming arrivals on the root partition) that run
        outside the engine's window loop."""
        return _Activation(self, pid)


class _Activation:
    def __init__(self, facade: PartitionedSimulator, pid: int):
        self._facade = facade
        self._pid = pid

    def __enter__(self) -> Simulator:
        self._previous = self._facade.current_pid
        self._facade.use(self._pid)
        return self._facade.kernels[self._pid]

    def __exit__(self, *exc: Any) -> None:
        if self._previous is None:
            self._facade.clear()
        else:
            self._facade.use(self._previous)


def boundary_lookahead(
    model: Any, pmap: PartitionMap, node_ids: Iterable[str]
) -> float:
    """The conservative lookahead: minimum one-way latency across any
    partition boundary.

    A kernel at barrier time ``t`` can safely fire every event before
    ``t + lookahead``, because no other partition can deliver anything
    sooner.  Zero lookahead would mean zero-width safe windows — the
    engine could never advance — so it is rejected here with a clear
    error rather than deadlocking later (local delivery inside one
    partition is exempt: it never crosses the boundary).
    """
    nodes = sorted(node_ids)
    pids = {node: pmap.pid_of_node(node) for node in nodes}
    best: float | None = None
    for src in nodes:
        src_pid = pids[src]
        for dst in nodes:
            if src == dst or pids[dst] == src_pid:
                continue
            delay = model.min_delay(src, dst)
            if best is None or delay < best:
                best = delay
    if best is None:
        raise ConfigurationError(
            "no cross-partition links: nothing to synchronize on "
            "(single-cluster topologies run sequentially)"
        )
    if best <= 0.0:
        raise ConfigurationError(
            "zero-latency boundary link: the conservative lookahead "
            "would be 0 and safe windows could never advance; run "
            "sequentially (kernel_workers=None) or give boundary links "
            "a positive minimum latency"
        )
    return best
