"""Conservative-lookahead execution of a partitioned simulation.

The safe-window protocol (a barrier variant of null-message
synchronization): with lookahead ``L`` — the minimum one-way latency
across any partition boundary — no partition can affect another within
``L`` of virtual time.  So the engine advances all kernels in lockstep
windows of width ``L``:

1. **run**: each kernel fires its events strictly before the window
   edge (:meth:`~repro.sim.kernel.Simulator.run_horizon`); cross-
   partition sends become timestamped
   :class:`~repro.sim.partition.Envelope` objects in the network's
   outbox — their delivery times provably fall at or beyond the edge;
2. **exchange**: at the barrier, outboxes are routed to the partitions
   owning their destinations;
3. **inject**: each receiver sorts its envelopes by
   ``(time, src_pid, seq)`` and schedules them, so destination-kernel
   sequence numbers — and therefore all tie-breaking — are assigned in
   an order no wall-clock accident can perturb.

Workers are plain ``os.fork`` children talking length-prefixed pickle
over pipes (no ``multiprocessing``: bench pool workers are daemonic
and may themselves host a shard-parallel run).  The parent doubles as
worker 0 — it owns the root partition (clients, arrivals, metrics) —
and as the envelope router.  Partition state is replicated into every
child by the fork; each child executes only the partitions it owns and
marks every other kernel *foreign* so stray cross-boundary mutations
(event cancellation) fail loudly instead of desynchronizing.

``workers=1`` runs the identical windowed algorithm in-process — the
reference the byte-identity guarantee is stated against: reports are
byte-identical (modulo ``perf``/``obs``) at **any** worker count.
"""

from __future__ import annotations

import math
import os
import pickle
import struct
import traceback
from typing import Any, Callable, Sequence

from repro.errors import ConfigurationError, PartitionError, SimulationLimitError
from repro.sim.partition import PartitionedSimulator


def _write_all(fd: int, data: bytes) -> None:
    view = memoryview(data)
    while view:
        written = os.write(fd, view)
        view = view[written:]


def _read_exact(fd: int, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = os.read(fd, min(remaining, 1 << 20))
        if not chunk:
            raise EOFError("shard-parallel worker pipe closed unexpectedly")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _write_msg(fd: int, obj: Any) -> None:
    data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    _write_all(fd, struct.pack("<Q", len(data)) + data)


def _read_msg(fd: int) -> Any:
    (length,) = struct.unpack("<Q", _read_exact(fd, 8))
    return pickle.loads(_read_exact(fd, length))


class ShardParEngine:
    """Advances a :class:`PartitionedSimulator` through safe windows.

    ``collect`` (passed to :meth:`run`) is called once per worker,
    inside that worker's process, after the final barrier — it is how
    per-worker results (metrics, traces, counters) cross back to the
    parent, since forked memory is otherwise discarded.
    """

    def __init__(
        self,
        facade: PartitionedSimulator,
        network: Any,
        lookahead: float,
        workers: int,
    ):
        if workers < 1:
            raise ConfigurationError(f"kernel_workers must be >= 1: {workers}")
        if lookahead <= 0.0:
            raise ConfigurationError(
                f"lookahead must be positive: {lookahead}"
            )
        self.facade = facade
        self.network = network
        self.lookahead = lookahead
        # More workers than partitions would idle; clamp silently so a
        # small smoke topology accepts the same --kernel-workers as a
        # big one.
        self.workers = min(workers, len(facade.kernels))
        self.windows_run = 0

    # -- window plumbing ------------------------------------------------
    def _edges(self, until: float) -> list[float]:
        """The barrier times tiling ``[now, until]``: every window is
        at most one lookahead wide, and the last edge is exactly
        ``until`` (run inclusively, so events landing on the end time
        fire just as a sequential ``run(until)`` would fire them)."""
        kernels = self.facade.kernels
        start = kernels[0].now
        for kernel in kernels:
            if kernel.now != start:
                raise PartitionError(
                    f"kernels disagree on the barrier time: "
                    f"{kernel.now} != {start}"
                )
        span = until - start
        if span < 0:
            raise ValueError(f"cannot run backwards: {until} < {start}")
        lookahead = self.lookahead
        count = max(1, math.ceil(span / lookahead)) if span > 0 else 1
        # Float-guard: ceil() of an inexact quotient may undershoot by
        # one window; widths above the lookahead would break safety.
        while until - (start + (count - 1) * lookahead) > lookahead:
            count += 1
        edges = [start + (i + 1) * lookahead for i in range(count - 1)]
        edges.append(until)
        return edges

    def _run_window(self, pids: Sequence[int], edge: float, inclusive: bool) -> int:
        facade = self.facade
        kernels = facade.kernels
        fired = 0
        for pid in pids:
            facade.use(pid)
            fired += kernels[pid].run_horizon(edge, inclusive)
        facade.clear()
        return fired

    def _inject(self, envelopes: list) -> None:
        """Schedule received envelopes, smallest ``(time, src_pid,
        seq)`` first — the deterministic merge order (the key is unique
        per envelope, so sorting never compares message payloads)."""
        envelopes.sort(key=lambda env: (env.time, env.src_pid, env.seq))
        deliver = self.network._deliver
        partition_of = self.network._partition_of
        kernels = self.facade.kernels
        for env in envelopes:
            kernels[partition_of[env.dst]].schedule_at_fire(
                env.time, deliver[env.dst], env.msg, env.src
            )

    def _check_budget(self, fired: int, max_events: int | None, edge: float) -> None:
        if max_events is not None and fired > max_events:
            raise SimulationLimitError(
                f"simulation exceeded {max_events} events without "
                f"finishing (checked at window barriers): "
                f"window edge {edge:.6f}, events {fired}"
            )

    # -- entry point ----------------------------------------------------
    def run(
        self,
        until: float,
        max_events: int | None = None,
        collect: Callable[[list[int]], Any] | None = None,
    ) -> list[Any]:
        """Advance every kernel to ``until``; returns the per-worker
        ``collect`` results (worker 0 first).

        The event budget is enforced at barriers — window granularity,
        identical at every worker count — rather than per event.
        """
        edges = self._edges(until)
        self.windows_run += len(edges)
        partitions = len(self.facade.kernels)
        workers = self.workers
        owned = [
            [pid for pid in range(partitions) if pid % workers == w]
            for w in range(workers)
        ]
        if workers == 1:
            return self._run_inline(edges, owned[0], max_events, collect)
        return self._run_forked(edges, owned, max_events, collect)

    # -- single-process reference ---------------------------------------
    def _run_inline(
        self,
        edges: list[float],
        pids: list[int],
        max_events: int | None,
        collect: Callable[[list[int]], Any] | None,
    ) -> list[Any]:
        network = self.network
        fired_total = 0
        last = len(edges) - 1
        for i, edge in enumerate(edges):
            fired_total += self._run_window(pids, edge, i == last)
            self._check_budget(fired_total, max_events, edge)
            self._inject(network.take_outbox())
        return [collect(pids)] if collect is not None else [None]

    # -- forked workers -------------------------------------------------
    def _run_forked(
        self,
        edges: list[float],
        owned: list[list[int]],
        max_events: int | None,
        collect: Callable[[list[int]], Any] | None,
    ) -> list[Any]:
        workers = self.workers
        channels: list[tuple[int, int, int]] = []  # (read_fd, write_fd, pid)
        for w in range(1, workers):
            to_child_r, to_child_w = os.pipe()
            to_parent_r, to_parent_w = os.pipe()
            child = os.fork()
            if child == 0:
                os.close(to_child_w)
                os.close(to_parent_r)
                for read_fd, write_fd, _ in channels:
                    os.close(read_fd)
                    os.close(write_fd)
                status = 0
                try:
                    self._child_main(
                        owned[w], edges, to_child_r, to_parent_w, collect
                    )
                except BaseException:
                    status = 1
                    try:
                        _write_msg(
                            to_parent_w, ("err", traceback.format_exc())
                        )
                    except OSError:
                        pass
                finally:
                    # _exit, not exit: a forked worker must not run the
                    # parent's atexit hooks or flush inherited buffers.
                    os._exit(status)
            os.close(to_child_r)
            os.close(to_parent_w)
            channels.append((to_parent_r, to_child_w, child))

        mine = owned[0]
        for pid, kernel in enumerate(self.facade.kernels):
            if pid % workers != 0:
                kernel.foreign = True
        partition_of = self.network._partition_of
        try:
            fired_total = 0
            last = len(edges) - 1
            for i, edge in enumerate(edges):
                fired = self._run_window(mine, edge, i == last)
                envelopes = self.network.take_outbox()
                for read_fd, _, _ in channels:
                    kind, payload, fired_w = self._expect(
                        _read_msg(read_fd), "win"
                    )
                    envelopes.extend(payload)
                    fired += fired_w
                fired_total += fired
                self._check_budget(fired_total, max_events, edge)
                for w, (_, write_fd, _) in enumerate(channels, start=1):
                    _write_msg(
                        write_fd,
                        (
                            "inbox",
                            [
                                env
                                for env in envelopes
                                if partition_of[env.dst] % workers == w
                            ],
                        ),
                    )
                self._inject(
                    [
                        env
                        for env in envelopes
                        if partition_of[env.dst] % workers == 0
                    ]
                )
            results = [collect(mine) if collect is not None else None]
            for read_fd, _, _ in channels:
                kind, payload = _read_msg(read_fd)
                if kind == "err":
                    raise RuntimeError(
                        f"shard-parallel worker failed:\n{payload}"
                    )
                results.append(payload)
            return results
        except BaseException:
            for _, write_fd, _ in channels:
                try:
                    _write_msg(write_fd, ("abort", None))
                except OSError:
                    pass
            raise
        finally:
            for read_fd, write_fd, child in channels:
                os.close(read_fd)
                os.close(write_fd)
                try:
                    os.waitpid(child, 0)
                except ChildProcessError:
                    pass

    @staticmethod
    def _expect(message: tuple, kind: str) -> tuple:
        if message[0] == "err":
            raise RuntimeError(
                f"shard-parallel worker failed:\n{message[1]}"
            )
        if message[0] != kind:
            raise RuntimeError(
                f"shard-parallel protocol error: expected {kind!r}, "
                f"got {message[0]!r}"
            )
        return message

    def _child_main(
        self,
        pids: list[int],
        edges: list[float],
        read_fd: int,
        write_fd: int,
        collect: Callable[[list[int]], Any] | None,
    ) -> None:
        owned = set(pids)
        for pid, kernel in enumerate(self.facade.kernels):
            if pid not in owned:
                kernel.foreign = True
        last = len(edges) - 1
        for i, edge in enumerate(edges):
            fired = self._run_window(pids, edge, i == last)
            _write_msg(
                write_fd, ("win", self.network.take_outbox(), fired)
            )
            kind, payload = _read_msg(read_fd)
            if kind == "abort":
                return
            if kind != "inbox":  # pragma: no cover - defensive
                raise RuntimeError(
                    f"shard-parallel protocol error in worker: {kind!r}"
                )
            self._inject(payload)
        _write_msg(
            write_fd, ("done", collect(pids) if collect is not None else None)
        )
