"""Durable storage: pluggable WAL + snapshot backends.

``make_backend`` is the one constructor the rest of the stack uses;
``DeploymentConfig.storage_backend`` selects the flavor and
``storage_dir`` the on-disk root (one subtree per node).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import StorageError
from repro.storage.base import (
    KIND_HEAD,
    KIND_MARK,
    KIND_SEGMENT,
    KIND_WRITE,
    LogRecord,
    Namespace,
    RecoveredNamespace,
    Snapshot,
    StorageBackend,
    decode_namespace,
    encode_namespace,
)
from repro.storage.memory import MemoryBackend
from repro.storage.sqlite import SqliteBackend
from repro.storage.wal import WalBackend

BACKENDS = ("memory", "wal", "sqlite")


def make_backend(
    kind: str, storage_dir: str | None = None, node_id: str = "node"
) -> StorageBackend:
    """Build one node's backend from the deployment knobs.

    ``memory`` ignores ``storage_dir``; ``wal`` uses a directory per
    node; ``sqlite`` a database file per node.  Re-opening the same
    (kind, storage_dir, node_id) triple after a crash sees the same
    durable state — that is the recovery path.
    """
    if kind == "memory":
        return MemoryBackend()
    if storage_dir is None:
        raise StorageError(f"storage backend {kind!r} needs a storage_dir")
    root = Path(storage_dir)
    if kind == "wal":
        return WalBackend(root / node_id)
    if kind == "sqlite":
        return SqliteBackend(root / f"{node_id}.sqlite")
    raise StorageError(f"unknown storage backend {kind!r} (choose from {BACKENDS})")


__all__ = [
    "BACKENDS",
    "KIND_HEAD",
    "KIND_MARK",
    "KIND_SEGMENT",
    "KIND_WRITE",
    "LogRecord",
    "MemoryBackend",
    "Namespace",
    "RecoveredNamespace",
    "Snapshot",
    "SqliteBackend",
    "StorageBackend",
    "WalBackend",
    "decode_namespace",
    "encode_namespace",
    "make_backend",
]
