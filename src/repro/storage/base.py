"""The durable storage backend API.

Qanaat's in-memory reproduction keeps every datastore, ledger chain,
and checkpoint in process memory; this module is the durability story
behind it.  A :class:`StorageBackend` journals committed effects per
*namespace* (one ``(label, shard)`` collection-shard chain) and stores
periodic snapshots so a replica can be rebuilt from disk:

- ``append`` journals one :class:`LogRecord` — a store write, a
  version marker, a ledger content-head anchor, or an archive segment
  manifest — strictly in commit order per namespace;
- ``snapshot`` stores a full materialized state for a namespace at a
  version (the *durability frontier*, normally a stable checkpoint);
- ``compact`` discards journaled records the newest snapshot covers;
- ``load`` returns the newest snapshot plus the log suffix behind it,
  exactly what replay needs to reproduce the pre-crash state;
- ``close`` releases file handles / connections.

Backends are intentionally dumb: they know nothing about stores,
ledgers, or consensus.  Recovery semantics live with the callers
(:meth:`repro.datamodel.store.MultiVersionStore.recover`,
:meth:`repro.core.executor.ExecutionUnit.recover`).

Durability frontier invariant: after ``snapshot(ns, v)`` +
``compact(ns, v)``, ``load(ns)`` reproduces state at any version
``>= v`` but nothing older — the same contract PBFT garbage
collection gives the message log at stable checkpoints.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import StorageError

#: A namespace names one collection-shard chain, e.g. ``("AB", 1)``.
Namespace = tuple[str, int]

#: Journal record kinds.
KIND_WRITE = "write"      # one key written at a version
KIND_MARK = "mark"        # version advanced without a write (no-op commit)
KIND_HEAD = "head"        # ledger content-head digest after an append
KIND_SEGMENT = "segment"  # an archived ledger segment manifest


@dataclass(frozen=True)
class LogRecord:
    """One journaled effect on one namespace."""

    version: int
    kind: str = KIND_WRITE
    key: str | None = None
    value: Any = None

    def to_payload(self) -> dict[str, Any]:
        payload: dict[str, Any] = {"v": self.version, "t": self.kind}
        if self.key is not None:
            payload["k"] = self.key
        if self.value is not None:
            payload["x"] = self.value
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, Any]) -> "LogRecord":
        return cls(
            version=payload["v"],
            kind=payload.get("t", KIND_WRITE),
            key=payload.get("k"),
            value=payload.get("x"),
        )


@dataclass(frozen=True)
class Snapshot:
    """Materialized namespace state at one version."""

    version: int
    payload: Any


@dataclass
class RecoveredNamespace:
    """What ``load`` hands back for one namespace."""

    namespace: Namespace
    snapshot: Snapshot | None = None
    records: list[LogRecord] = field(default_factory=list)

    def replay_records(self) -> list[LogRecord]:
        """The log suffix replay must apply: records newer than the
        snapshot (older ones are already folded into it)."""
        if self.snapshot is None:
            return list(self.records)
        return [r for r in self.records if r.version > self.snapshot.version]


# ----------------------------------------------------------------------
# ``head`` record payloads
# ----------------------------------------------------------------------
# A ``head`` record journals the ledger content-head digest after an
# append.  Historically its value was the bare digest string; it now
# carries a compact transaction projection alongside, which is what the
# off-replica analytics engine (:mod:`repro.analytics`) ingests into
# its indexed tables — recovery still reads only the digest.  Both
# forms are accepted on the read side so journals written by either
# version replay identically.


def encode_head_payload(
    head: str,
    *,
    body: str,
    request_id: int,
    client: str,
    timestamp: int,
    keys: tuple[str, ...],
    gamma: tuple[tuple[str, int, int], ...],
) -> dict[str, Any]:
    """The journal value for one ``head`` record.

    ``head``/``body`` are the content-chain and body digests of the
    appended record; ``gamma`` is the transaction ID's dependency
    snapshot as plain ``(label, shard, seq)`` triples.  Everything is
    JSON-serializable by construction.
    """
    return {
        "h": head,
        "b": body,
        "r": request_id,
        "c": client,
        "t": timestamp,
        "k": list(keys),
        "g": [list(entry) for entry in gamma],
    }


def head_digest_of(value: Any) -> str | None:
    """The content-head digest inside a ``head`` record value —
    whichever of the two journal formats it uses."""
    if isinstance(value, dict):
        return value.get("h")
    return value


def decode_head_payload(value: Any) -> dict[str, Any] | None:
    """The transaction projection of a ``head`` record value, or
    ``None`` for legacy bare-digest records (which carry no
    transaction metadata to index)."""
    if not isinstance(value, dict):
        return None
    return {
        "head": value.get("h"),
        "body": value.get("b"),
        "request_id": value.get("r"),
        "client": value.get("c"),
        "timestamp": value.get("t"),
        "keys": tuple(value.get("k", ())),
        "gamma": tuple(
            (entry[0], int(entry[1]), int(entry[2]))
            for entry in value.get("g", ())
        ),
    }


class StorageBackend:
    """Abstract append/snapshot/load/compact/close surface.

    ``durable`` advertises whether a backend survives process loss —
    the cost model charges journaling time only for durable backends.
    """

    durable = True

    def append(self, namespace: Namespace, record: LogRecord) -> None:
        raise NotImplementedError

    def snapshot(self, namespace: Namespace, version: int, payload: Any) -> None:
        raise NotImplementedError

    def load(self, namespace: Namespace) -> RecoveredNamespace:
        raise NotImplementedError

    def compact(self, namespace: Namespace, upto_version: int) -> int:
        """Discard records covered by the newest snapshot; returns how
        many records were dropped."""
        raise NotImplementedError

    def namespaces(self) -> list[Namespace]:
        """Every namespace this backend has data for."""
        raise NotImplementedError

    def close(self) -> None:
        raise NotImplementedError

    # -- shared guards -------------------------------------------------
    def _check_compact(
        self, namespace: Namespace, upto_version: int, snapshot: Snapshot | None
    ) -> None:
        """Compaction must never outrun the newest snapshot: dropping
        records above the snapshot would lose committed effects."""
        covered = snapshot.version if snapshot is not None else 0
        if upto_version > covered:
            raise StorageError(
                f"cannot compact {namespace} to {upto_version}: newest "
                f"snapshot covers only {covered}"
            )


_PASSTHROUGH = frozenset(b"abcdefghijklmnopqrstuvwxyz0123456789")


def encode_namespace(namespace: Namespace) -> str:
    """Injective, filesystem- and SQL-identifier-safe namespace name.

    The label is UTF-8 encoded; lowercase ASCII alphanumeric bytes
    pass through and every other byte (including uppercase letters
    and the escape character itself) becomes ``_xx`` hex, so the
    escaping is fixed-width and injective even under case folding —
    SQLite table names and macOS/Windows file names are
    case-insensitive, so ``AB`` and ``ab`` must not share a journal.
    The shard is appended after ``__``.
    """
    label, shard = namespace
    parts: list[str] = []
    for byte in label.encode("utf-8"):
        if byte in _PASSTHROUGH:
            parts.append(chr(byte))
        else:
            parts.append("_" + format(byte, "02x"))
    return f"{''.join(parts)}__{shard}"


def decode_namespace(encoded: str) -> Namespace:
    """Inverse of :func:`encode_namespace`."""
    name, _, shard = encoded.rpartition("__")
    raw = bytearray()
    i = 0
    while i < len(name):
        if name[i] == "_":
            raw.append(int(name[i + 1:i + 3], 16))
            i += 3
        else:
            raw.append(ord(name[i]))
            i += 1
    return raw.decode("utf-8"), int(shard)
