"""In-memory backend: the storage API without the disk.

Keeps the journal and snapshots in plain dicts.  Nothing survives the
process — ``durable`` is False, so the cost model charges no
journaling time and recovery scenarios refuse it.  Deployments with
``storage_backend="memory"`` attach no backend at all (journaling
into a dict nothing reads would tax every benchmark); this class is
for tests and tools that want to inspect journaled effects or
exercise replay logic without touching disk.
"""

from __future__ import annotations

from typing import Any

from repro.storage.base import (
    LogRecord,
    Namespace,
    RecoveredNamespace,
    Snapshot,
    StorageBackend,
)


class MemoryBackend(StorageBackend):
    """Dict-backed journal + snapshots (process lifetime only)."""

    durable = False

    def __init__(self) -> None:
        self._log: dict[Namespace, list[LogRecord]] = {}
        self._snapshots: dict[Namespace, Snapshot] = {}
        self.closed = False

    def append(self, namespace: Namespace, record: LogRecord) -> None:
        self._log.setdefault(namespace, []).append(record)

    def snapshot(self, namespace: Namespace, version: int, payload: Any) -> None:
        self._snapshots[namespace] = Snapshot(version, payload)

    def load(self, namespace: Namespace) -> RecoveredNamespace:
        return RecoveredNamespace(
            namespace,
            snapshot=self._snapshots.get(namespace),
            records=list(self._log.get(namespace, ())),
        )

    def compact(self, namespace: Namespace, upto_version: int) -> int:
        self._check_compact(
            namespace, upto_version, self._snapshots.get(namespace)
        )
        log = self._log.get(namespace, [])
        kept = [r for r in log if r.version > upto_version]
        dropped = len(log) - len(kept)
        if kept:
            self._log[namespace] = kept
        else:
            self._log.pop(namespace, None)
        return dropped

    def namespaces(self) -> list[Namespace]:
        return sorted(set(self._log) | set(self._snapshots))

    def close(self) -> None:
        self.closed = True
