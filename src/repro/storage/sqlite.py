"""SQLite backend: WAL-mode database, one log table per namespace.

Follows the SQLite idiom from SNIPPETS.md: pragmas applied at
initialization (``journal_mode=WAL`` for concurrent reads,
``synchronous=NORMAL`` to balance safety and performance,
``busy_timeout`` for locked databases, ``foreign_keys=ON``), one table
per collection-shard namespace (``log_<ns>``) plus a shared
``snapshots`` table keyed by namespace.  Record values and snapshot
payloads are stored as JSON text.
"""

from __future__ import annotations

import json
import sqlite3
from pathlib import Path
from typing import Any

from repro.errors import StorageError
from repro.storage.base import (
    LogRecord,
    Namespace,
    RecoveredNamespace,
    Snapshot,
    StorageBackend,
    decode_namespace,
    encode_namespace,
)

_PRAGMAS = (
    ("journal_mode", "WAL"),
    ("synchronous", "NORMAL"),
    ("busy_timeout", "30000"),
    ("foreign_keys", "ON"),
)


class SqliteBackend(StorageBackend):
    """One WAL-mode SQLite database holding every namespace."""

    durable = True

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), isolation_level=None)
        for pragma, value in _PRAGMAS:
            self._conn.execute(f"PRAGMA {pragma}={value}")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS snapshots ("
            " ns TEXT PRIMARY KEY,"
            " version INTEGER NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        self._tables: set[str] = {
            row[0]
            for row in self._conn.execute(
                "SELECT name FROM sqlite_master"
                " WHERE type='table' AND name LIKE 'log_%'"
            )
        }
        self.closed = False

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _table(self, namespace: Namespace, create: bool = False) -> str | None:
        name = "log_" + encode_namespace(namespace)
        if name in self._tables:
            return name
        if not create:
            return None
        self._conn.execute(
            f'CREATE TABLE IF NOT EXISTS "{name}" ('
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " version INTEGER NOT NULL,"
            " kind TEXT NOT NULL,"
            " key TEXT,"
            " value TEXT)"
        )
        self._tables.add(name)
        return name

    @staticmethod
    def _encode_value(namespace: Namespace, value: Any) -> str:
        try:
            return json.dumps(value, separators=(",", ":"))
        except TypeError as exc:
            raise StorageError(
                f"record on {namespace} is not JSON-serializable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # StorageBackend API
    # ------------------------------------------------------------------
    def append(self, namespace: Namespace, record: LogRecord) -> None:
        if self.closed:
            raise StorageError("append on a closed SqliteBackend")
        table = self._table(namespace, create=True)
        self._conn.execute(
            f'INSERT INTO "{table}" (version, kind, key, value)'
            " VALUES (?, ?, ?, ?)",
            (
                record.version,
                record.kind,
                record.key,
                self._encode_value(namespace, record.value),
            ),
        )

    def snapshot(self, namespace: Namespace, version: int, payload: Any) -> None:
        self._conn.execute(
            "INSERT INTO snapshots (ns, version, payload) VALUES (?, ?, ?)"
            " ON CONFLICT(ns) DO UPDATE SET"
            " version=excluded.version, payload=excluded.payload",
            (
                encode_namespace(namespace),
                version,
                self._encode_value(namespace, payload),
            ),
        )

    def _read_snapshot(self, namespace: Namespace) -> Snapshot | None:
        row = self._conn.execute(
            "SELECT version, payload FROM snapshots WHERE ns=?",
            (encode_namespace(namespace),),
        ).fetchone()
        if row is None:
            return None
        return Snapshot(row[0], json.loads(row[1]))

    def load(self, namespace: Namespace) -> RecoveredNamespace:
        table = self._table(namespace)
        records: list[LogRecord] = []
        if table is not None:
            for version, kind, key, value in self._conn.execute(
                f'SELECT version, kind, key, value FROM "{table}" ORDER BY id'
            ):
                records.append(
                    LogRecord(version, kind, key, json.loads(value))
                )
        return RecoveredNamespace(
            namespace,
            snapshot=self._read_snapshot(namespace),
            records=records,
        )

    def compact(self, namespace: Namespace, upto_version: int) -> int:
        self._check_compact(
            namespace, upto_version, self._read_snapshot(namespace)
        )
        table = self._table(namespace)
        if table is None:
            return 0
        cursor = self._conn.execute(
            f'DELETE FROM "{table}" WHERE version <= ?', (upto_version,)
        )
        return cursor.rowcount

    def namespaces(self) -> list[Namespace]:
        seen = {decode_namespace(t[len("log_"):]) for t in self._tables}
        for row in self._conn.execute("SELECT ns FROM snapshots"):
            seen.add(decode_namespace(row[0]))
        return sorted(seen)

    def close(self) -> None:
        if not self.closed:
            self._conn.close()
            self.closed = True
