"""SQLite backend: WAL-mode database, one log table per namespace.

Follows the SQLite idiom from SNIPPETS.md: pragmas applied at
initialization (``journal_mode=WAL`` for concurrent reads,
``synchronous=NORMAL`` to balance safety and performance,
``busy_timeout`` for locked databases, ``foreign_keys=ON``), one table
per collection-shard namespace (``log_<ns>``) plus a shared
``snapshots`` table keyed by namespace.  Record values and snapshot
payloads are stored as JSON text.
"""

from __future__ import annotations

import json
import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.errors import StorageError
from repro.storage.base import (
    LogRecord,
    Namespace,
    RecoveredNamespace,
    Snapshot,
    StorageBackend,
    decode_namespace,
    encode_namespace,
)

_PRAGMAS = (
    ("journal_mode", "WAL"),
    ("synchronous", "NORMAL"),
    ("busy_timeout", "30000"),
    ("foreign_keys", "ON"),
)


class SqliteBackend(StorageBackend):
    """One WAL-mode SQLite database holding every namespace."""

    durable = True

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(str(self.path), isolation_level=None)
        for pragma, value in _PRAGMAS:
            self._conn.execute(f"PRAGMA {pragma}={value}")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS snapshots ("
            " ns TEXT PRIMARY KEY,"
            " version INTEGER NOT NULL,"
            " payload TEXT NOT NULL)"
        )
        self._tables: set[str] = {
            row[0]
            for row in self._conn.execute(
                "SELECT name FROM sqlite_master"
                " WHERE type='table' AND name LIKE 'log_%'"
            )
        }
        self.closed = False

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _table(self, namespace: Namespace, create: bool = False) -> str | None:
        name = "log_" + encode_namespace(namespace)
        if name in self._tables:
            return name
        if not create:
            return None
        self._conn.execute(
            f'CREATE TABLE IF NOT EXISTS "{name}" ('
            " id INTEGER PRIMARY KEY AUTOINCREMENT,"
            " version INTEGER NOT NULL,"
            " kind TEXT NOT NULL,"
            " key TEXT,"
            " value TEXT)"
        )
        self._tables.add(name)
        return name

    @staticmethod
    def _encode_value(namespace: Namespace, value: Any) -> str:
        try:
            return json.dumps(value, separators=(",", ":"))
        except TypeError as exc:
            raise StorageError(
                f"record on {namespace} is not JSON-serializable: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    # StorageBackend API
    # ------------------------------------------------------------------
    def append(self, namespace: Namespace, record: LogRecord) -> None:
        if self.closed:
            raise StorageError("append on a closed SqliteBackend")
        table = self._table(namespace, create=True)
        self._conn.execute(
            f'INSERT INTO "{table}" (version, kind, key, value)'
            " VALUES (?, ?, ?, ?)",
            (
                record.version,
                record.kind,
                record.key,
                self._encode_value(namespace, record.value),
            ),
        )

    def snapshot(self, namespace: Namespace, version: int, payload: Any) -> None:
        self._conn.execute(
            "INSERT INTO snapshots (ns, version, payload) VALUES (?, ?, ?)"
            " ON CONFLICT(ns) DO UPDATE SET"
            " version=excluded.version, payload=excluded.payload",
            (
                encode_namespace(namespace),
                version,
                self._encode_value(namespace, payload),
            ),
        )

    def _read_snapshot(self, namespace: Namespace) -> Snapshot | None:
        row = self._conn.execute(
            "SELECT version, payload FROM snapshots WHERE ns=?",
            (encode_namespace(namespace),),
        ).fetchone()
        if row is None:
            return None
        return Snapshot(row[0], json.loads(row[1]))

    def load(self, namespace: Namespace) -> RecoveredNamespace:
        table = self._table(namespace)
        records: list[LogRecord] = []
        if table is not None:
            for version, kind, key, value in self._conn.execute(
                f'SELECT version, kind, key, value FROM "{table}" ORDER BY id'
            ):
                records.append(
                    LogRecord(version, kind, key, json.loads(value))
                )
        return RecoveredNamespace(
            namespace,
            snapshot=self._read_snapshot(namespace),
            records=records,
        )

    def compact(self, namespace: Namespace, upto_version: int) -> int:
        self._check_compact(
            namespace, upto_version, self._read_snapshot(namespace)
        )
        table = self._table(namespace)
        if table is None:
            return 0
        cursor = self._conn.execute(
            f'DELETE FROM "{table}" WHERE version <= ?', (upto_version,)
        )
        return cursor.rowcount

    def namespaces(self) -> list[Namespace]:
        seen = {decode_namespace(t[len("log_"):]) for t in self._tables}
        for row in self._conn.execute("SELECT ns FROM snapshots"):
            seen.add(decode_namespace(row[0]))
        return sorted(seen)

    def close(self) -> None:
        if not self.closed:
            self._conn.close()
            self.closed = True

    @contextmanager
    def batch(self) -> Iterator[None]:
        """Group many appends into one explicit SQLite transaction.

        The connection runs in autocommit (``isolation_level=None``),
        which is correct for the per-commit replica write path but far
        too slow for bulk loads — the analytics fill journals a million
        records.  Nested use is a no-op (the outer batch owns the
        transaction)."""
        if self._conn.in_transaction:
            yield
            return
        tables_before = set(self._tables)
        self._conn.execute("BEGIN")
        try:
            yield
        except BaseException:
            self._conn.execute("ROLLBACK")
            # Rollback undoes any CREATE TABLE issued inside the batch;
            # the name cache must forget them too.
            self._tables = tables_before
            raise
        self._conn.execute("COMMIT")

    # ------------------------------------------------------------------
    # read-only access (analytics / ad-hoc queries)
    # ------------------------------------------------------------------
    def reader(self) -> sqlite3.Connection:
        """A read-only connection to this backend's database.

        Query traffic (the analytics ingest, ad-hoc CLI reads) must
        never be able to write to — or lock out — the replica journal,
        so readers connect through SQLite's ``mode=ro`` URI: writes
        fail with ``OperationalError`` and WAL readers never block the
        writer."""
        return self.open_reader(self.path)

    @staticmethod
    def open_reader(path: str | Path) -> sqlite3.Connection:
        """Open any journal file read-only (``file:...?mode=ro``).

        Shared by :meth:`reader` and off-replica consumers that only
        have the file path (``python -m repro.analytics``)."""
        path = Path(path)
        if not path.exists():
            raise StorageError(f"no journal database at {path}")
        uri = f"file:{path.as_posix()}?mode=ro"
        conn = sqlite3.connect(uri, uri=True, isolation_level=None)
        conn.execute("PRAGMA busy_timeout=30000")
        return conn
