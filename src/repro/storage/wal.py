"""Write-ahead-log backend: JSON-lines segments + snapshots on disk.

Layout (one directory per backend, normally one per node)::

    <root>/
      <ns>.000001.jsonl      # journal segments, one JSON record per line
      <ns>.000002.jsonl      # the highest-numbered segment is active
      <ns>.snapshot.json     # newest snapshot (atomic tmp+rename)

Appends go to the active segment and are flushed line-by-line, so a
crash loses at most the final partially-written line — ``load``
tolerates a torn tail exactly like SQLite's WAL recovery does.
``snapshot`` writes the materialized state atomically and rotates to a
fresh segment; ``compact`` then deletes segments fully covered by the
snapshot and rewrites any straddling one.  Values must be
JSON-serializable; tuples round-trip as lists, which the digest
canonicalization in :mod:`repro.crypto.hashing` treats as equal.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, TextIO

from repro.errors import StorageError
from repro.storage.base import (
    LogRecord,
    Namespace,
    RecoveredNamespace,
    Snapshot,
    StorageBackend,
    decode_namespace,
    encode_namespace,
)

_SEGMENT_WIDTH = 6


class WalBackend(StorageBackend):
    """Append-only JSON-lines WAL with periodic snapshots."""

    durable = True

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        # A crash between writing `<ns>.*.tmp` and the atomic
        # `tmp.replace(path)` (snapshot or compact rewrite) leaves an
        # orphaned tmp file behind; recovery never reads it, so drop it
        # here rather than letting it accumulate forever.
        for stale in self.root.glob("*.tmp"):
            stale.unlink(missing_ok=True)
        self._active: dict[Namespace, TextIO] = {}
        self.closed = False

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _segment_path(self, namespace: Namespace, segno: int) -> Path:
        return self.root / (
            f"{encode_namespace(namespace)}.{segno:0{_SEGMENT_WIDTH}d}.jsonl"
        )

    def _snapshot_path(self, namespace: Namespace) -> Path:
        return self.root / f"{encode_namespace(namespace)}.snapshot.json"

    def _segments(self, namespace: Namespace) -> list[Path]:
        prefix = encode_namespace(namespace) + "."
        found = []
        for path in self.root.iterdir():
            if not path.name.startswith(prefix):
                continue
            if path.suffix != ".jsonl":
                continue
            found.append(path)
        return sorted(found)

    @staticmethod
    def _segno(path: Path) -> int:
        return int(path.name.rsplit(".", 2)[-2])

    # ------------------------------------------------------------------
    # StorageBackend API
    # ------------------------------------------------------------------
    def append(self, namespace: Namespace, record: LogRecord) -> None:
        if self.closed:
            raise StorageError("append on a closed WalBackend")
        handle = self._active.get(namespace)
        if handle is None:
            # Resuming a namespace (fresh backend instance over existing
            # files): always start a new segment.  Appending to the old
            # one would glue records onto a torn tail left by a crash,
            # and load() would then drop everything after the merge.
            segments = self._segments(namespace)
            segno = (self._segno(segments[-1]) + 1) if segments else 1
            handle = self._segment_path(namespace, segno).open(
                "a", encoding="utf-8"
            )
            self._active[namespace] = handle
        try:
            line = json.dumps(record.to_payload(), separators=(",", ":"))
        except TypeError as exc:
            raise StorageError(
                f"record on {namespace} is not JSON-serializable: {exc}"
            ) from exc
        handle.write(line + "\n")
        handle.flush()

    def snapshot(self, namespace: Namespace, version: int, payload: Any) -> None:
        path = self._snapshot_path(namespace)
        tmp = path.with_suffix(".json.tmp")
        try:
            body = json.dumps(
                {"version": version, "payload": payload},
                separators=(",", ":"),
            )
        except TypeError as exc:
            raise StorageError(
                f"snapshot of {namespace} is not JSON-serializable: {exc}"
            ) from exc
        with tmp.open("w", encoding="utf-8") as handle:
            handle.write(body)
            handle.flush()
            os.fsync(handle.fileno())
        tmp.replace(path)
        self._rotate(namespace)

    def _rotate(self, namespace: Namespace) -> None:
        """Close the active segment and start the next one, so
        compaction works on whole files."""
        handle = self._active.pop(namespace, None)
        if handle is not None:
            handle.close()
        segments = self._segments(namespace)
        next_segno = (self._segno(segments[-1]) + 1) if segments else 1
        path = self._segment_path(namespace, next_segno)
        self._active[namespace] = path.open("a", encoding="utf-8")

    def _read_snapshot(self, namespace: Namespace) -> Snapshot | None:
        path = self._snapshot_path(namespace)
        if not path.exists():
            return None
        data = json.loads(path.read_text(encoding="utf-8"))
        return Snapshot(data["version"], data["payload"])

    def _read_segment(self, path: Path) -> list[LogRecord]:
        records: list[LogRecord] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(LogRecord.from_payload(json.loads(line)))
                except (json.JSONDecodeError, KeyError):
                    break  # torn tail from a crash mid-append
        return records

    def load(self, namespace: Namespace) -> RecoveredNamespace:
        records: list[LogRecord] = []
        for path in self._segments(namespace):
            records.extend(self._read_segment(path))
        return RecoveredNamespace(
            namespace,
            snapshot=self._read_snapshot(namespace),
            records=records,
        )

    def compact(self, namespace: Namespace, upto_version: int) -> int:
        self._check_compact(
            namespace, upto_version, self._read_snapshot(namespace)
        )
        dropped = 0
        active = self._active.get(namespace)
        active_name = Path(active.name).name if active is not None else None
        for path in self._segments(namespace):
            if path.name == active_name:
                continue  # never rewrite the segment we hold open
            records = self._read_segment(path)
            kept = [r for r in records if r.version > upto_version]
            dropped += len(records) - len(kept)
            if not kept:
                path.unlink()
            elif len(kept) < len(records):
                tmp = path.with_suffix(".jsonl.tmp")
                with tmp.open("w", encoding="utf-8") as handle:
                    for record in kept:
                        handle.write(
                            json.dumps(
                                record.to_payload(), separators=(",", ":")
                            )
                            + "\n"
                        )
                    handle.flush()
                    os.fsync(handle.fileno())
                tmp.replace(path)
        return dropped

    def namespaces(self) -> list[Namespace]:
        seen: set[Namespace] = set()
        for path in self.root.iterdir():
            if path.suffix == ".jsonl":
                seen.add(decode_namespace(path.name.rsplit(".", 2)[0]))
            elif path.name.endswith(".snapshot.json"):
                seen.add(decode_namespace(path.name[: -len(".snapshot.json")]))
        return sorted(seen)

    def close(self) -> None:
        for handle in self._active.values():
            handle.close()
        self._active.clear()
        self.closed = True
