"""Workload generation: the modified SmallBank benchmark of §5, plus
the population-scale engine (logical clients, rate profiles, traces)."""

from repro.workload.generator import SmallBankWorkload, TxSpec, WorkloadMix
from repro.workload.population import (
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    PopulationModel,
    launch_arrivals,
)
from repro.workload.trace import TraceEntry, WorkloadTrace
from repro.workload.zipf import ZipfSampler

__all__ = [
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "PopulationModel",
    "SmallBankWorkload",
    "TraceEntry",
    "TxSpec",
    "WorkloadMix",
    "WorkloadTrace",
    "ZipfSampler",
    "launch_arrivals",
]
