"""Workload generation: the modified SmallBank benchmark of §5."""

from repro.workload.generator import SmallBankWorkload, TxSpec, WorkloadMix
from repro.workload.trace import TraceEntry, WorkloadTrace
from repro.workload.zipf import ZipfSampler

__all__ = [
    "SmallBankWorkload",
    "TraceEntry",
    "TxSpec",
    "WorkloadMix",
    "WorkloadTrace",
    "ZipfSampler",
]
