"""SmallBank workload generator (§5).

Produces transaction *specs* — (scope, operation, keys) — so the same
generator drives both Qanaat deployments and the Fabric baselines.  The
controls match the paper's experiments: the percentage of cross-shard /
cross-enterprise transactions, which shared collection they hit, and
Zipfian key skew.  The workload is write-heavy: ``send_payment``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.datamodel.sharding import ShardingSchema
from repro.datamodel.transaction import Operation
from repro.errors import WorkloadError
from repro.workload.zipf import ZipfSampler


@dataclass(frozen=True)
class TxSpec:
    """One transaction to submit: who, where, what."""

    enterprise: str          # the client's enterprise
    scope: frozenset[str]
    operation: Operation
    keys: tuple[str, ...]
    kind: str                # internal | isce | csie | csce


@dataclass
class WorkloadMix:
    """Fractions of transaction types (the figures vary ``cross``)."""

    cross: float = 0.1
    cross_type: str = "isce"  # isce | csie | csce
    zipf_s: float = 0.0
    accounts_per_shard: int = 2000
    payment_amount: int = 1

    def __post_init__(self) -> None:
        if not 0.0 <= self.cross <= 1.0:
            raise WorkloadError("cross fraction must be in [0, 1]")
        if self.cross_type not in ("isce", "csie", "csce"):
            raise WorkloadError(f"unknown cross type {self.cross_type!r}")


class SmallBankWorkload:
    """Stateful generator of :class:`TxSpec` streams."""

    def __init__(
        self,
        enterprises: tuple[str, ...],
        num_shards: int,
        shared_scopes: list[frozenset[str]],
        mix: WorkloadMix,
        seed: int = 0,
    ):
        if not shared_scopes and mix.cross > 0 and mix.cross_type != "csie":
            raise WorkloadError(
                "cross-enterprise transactions need shared collections"
            )
        if num_shards < 2 and mix.cross > 0 and mix.cross_type in ("csie", "csce"):
            raise WorkloadError("cross-shard transactions need >= 2 shards")
        self.enterprises = tuple(enterprises)
        self.num_shards = num_shards
        self.shared_scopes = [frozenset(s) for s in shared_scopes]
        self.mix = mix
        self.rng = random.Random(seed)
        self.schema = ShardingSchema(num_shards)
        self._buckets = self._build_buckets(mix.accounts_per_shard)
        self._samplers = [
            ZipfSampler(len(bucket), mix.zipf_s) for bucket in self._buckets
        ]
        self.generated = {
            "internal": 0, "isce": 0, "csie": 0, "csce": 0, "hotspot": 0,
        }

    def _build_buckets(self, per_shard: int) -> list[list[str]]:
        """Partition synthetic account names by shard."""
        buckets: list[list[str]] = [[] for _ in range(self.num_shards)]
        remaining = per_shard * self.num_shards
        i = 0
        while remaining:
            key = f"a{i}"
            bucket = buckets[self.schema.shard_of(key)]
            if len(bucket) < per_shard:
                bucket.append(key)
                remaining -= 1
            i += 1
        return buckets

    # ------------------------------------------------------------------
    def _account(self, shard: int, exclude: str | None = None) -> str:
        bucket = self._buckets[shard]
        sampler = self._samplers[shard]
        account = bucket[sampler.sample(self.rng)]
        while account == exclude:
            account = bucket[sampler.sample(self.rng)]
        return account

    def _two_shards(self) -> tuple[int, int]:
        first = self.rng.randrange(self.num_shards)
        second = self.rng.randrange(self.num_shards - 1)
        if second >= first:
            second += 1
        return first, second

    def next_spec(self) -> TxSpec:
        """Draw the next transaction spec from the mix."""
        mix = self.mix
        if self.rng.random() < mix.cross:
            kind = mix.cross_type
        else:
            kind = "internal"
        self.generated[kind] += 1
        if kind == "internal":
            enterprise = self.rng.choice(self.enterprises)
            scope = frozenset((enterprise,))
            shard = self.rng.randrange(self.num_shards)
            src = self._account(shard)
            dst = self._account(shard, exclude=src)
        elif kind == "isce":
            scope = self.rng.choice(self.shared_scopes)
            enterprise = self.rng.choice(sorted(scope))
            shard = self.rng.randrange(self.num_shards)
            src = self._account(shard)
            dst = self._account(shard, exclude=src)
        elif kind == "csie":
            enterprise = self.rng.choice(self.enterprises)
            scope = frozenset((enterprise,))
            shard_a, shard_b = self._two_shards()
            src = self._account(shard_a)
            dst = self._account(shard_b)
        else:  # csce
            scope = self.rng.choice(self.shared_scopes)
            enterprise = self.rng.choice(sorted(scope))
            shard_a, shard_b = self._two_shards()
            src = self._account(shard_a)
            dst = self._account(shard_b)
        operation = Operation(
            "smallbank", "send_payment", (src, dst, mix.payment_amount)
        )
        return TxSpec(enterprise, scope, operation, (src, dst), kind)

    def hotspot_spec(self, shard: int, hot_keys: int = 8) -> TxSpec:
        """A flash-crowd transaction: an internal payment concentrated
        on the first ``hot_keys`` accounts of one shard — the migrating
        hotspot of :class:`~repro.workload.population.FlashCrowdRate`.
        Draws ride the same generator rng, so a capture of a flash run
        replays bit-identically."""
        self.generated["hotspot"] += 1
        enterprise = self.rng.choice(self.enterprises)
        scope = frozenset((enterprise,))
        bucket = self._buckets[shard % self.num_shards]
        if len(bucket) < 2:
            raise WorkloadError("hotspot transactions need >= 2 accounts")
        limit = min(hot_keys, len(bucket))
        if limit < 2:
            limit = len(bucket)
        src = bucket[self.rng.randrange(limit)]
        dst = bucket[self.rng.randrange(limit)]
        while dst == src:
            dst = bucket[self.rng.randrange(limit)]
        operation = Operation(
            "smallbank", "send_payment", (src, dst, self.mix.payment_amount)
        )
        return TxSpec(enterprise, scope, operation, (src, dst), "hotspot")

    def specs(self, count: int) -> list[TxSpec]:
        return [self.next_spec() for _ in range(count)]
